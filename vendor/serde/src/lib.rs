//! Minimal in-tree stand-in for the subset of `serde` this workspace
//! uses, so that a fully offline build needs no crates.io access.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! wire-format types as forward-looking API decoration, but nothing in
//! the workspace is generic over these traits — all JSON emission goes
//! through `serde_json::Value` built explicitly. The derives here are
//! therefore no-ops and the traits are empty markers.
//!
//! If the build environment gains network access, this crate can be
//! deleted and the workspace pointed back at the real `serde` without
//! any source changes.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
