//! Minimal in-tree stand-in for the subset of `serde_json` this
//! workspace uses, so that a fully offline build needs no crates.io
//! access: [`Value`], an insertion-ordered [`Map`], the [`json!`] macro,
//! the pretty serializers [`to_string_pretty`] / [`to_vec_pretty`], and
//! a [`from_str`] parser for reading documents this crate (or any
//! standard JSON writer) produced.
//!
//! It serializes only [`Value`] trees built explicitly (or via
//! [`json!`]); it does not serialize arbitrary `Serialize` types, which
//! the workspace never does. If the build environment gains network
//! access, this crate can be deleted and the workspace pointed back at
//! the real `serde_json` without any source changes.

#![deny(missing_docs)]

use std::fmt;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// An unsigned integer (preserves full `u64` precision).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
                    f.write_str("null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` at `key`, replacing and returning any previous
    /// value bound to the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value tree, mirroring `serde_json::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// Returns the number as `f64` if this is any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number as `u64` if it is an unsigned integer (or a
    /// non-negative signed one).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Returns the string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the element vector if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the map if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Looks up `key` if this is an object (`None` otherwise), mirroring
    /// `serde_json::Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Error type for the serializers (this stand-in never fails).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// A parse failure with a byte offset and a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`] — the reader-side counterpart
/// of the serializers, covering standard JSON (objects, arrays, strings
/// with escapes, numbers, booleans, null). Integers without fraction or
/// exponent parse to `U64`/`I64`; everything else numeric to `F64`.
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let b = s.as_bytes();
    let mut p = Parser { b, at: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> ParseError {
        ParseError {
            at: self.at,
            reason,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.at)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.b.get(self.at) == Some(&c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.b.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &[u8], v: Value) -> Result<Value, ParseError> {
        if self.b[self.at..].starts_with(lit) {
            self.at += lit.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.b.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.b.get(self.at) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.b.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .hex4(self.at + 1)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.at += 4;
                            let scalar = if (0xD800..0xDC00).contains(&hex) {
                                // High surrogate: a low surrogate escape
                                // must follow (how standard writers
                                // encode non-BMP characters in ASCII).
                                if self.b.get(self.at + 1..self.at + 3) != Some(&b"\\u"[..]) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self
                                    .hex4(self.at + 3)
                                    .filter(|l| (0xDC00..0xE000).contains(l))
                                    .ok_or_else(|| self.err("unpaired surrogate"))?;
                                self.at += 6;
                                0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                hex
                            };
                            out.push(
                                char::from_u32(scalar).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let start = self.at;
                    self.at += 1;
                    while self.at < self.b.len() && (self.b[self.at] & 0xC0) == 0x80 {
                        self.at += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.at])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    /// Four hex digits starting at byte offset `from`.
    fn hex4(&self, from: usize) -> Option<u32> {
        self.b
            .get(from..from + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.at;
        if self.b.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.b.get(self.at) {
            match c {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.at]).expect("ascii number");
        let num = if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                Number::U64(v)
            } else if let Ok(v) = text.parse::<i64>() {
                Number::I64(v)
            } else {
                Number::F64(text.parse().map_err(|_| self.err("bad number"))?)
            }
        } else {
            Number::F64(text.parse().map_err(|_| self.err("bad number"))?)
        };
        Ok(Value::Number(num))
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::U64(v as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::I64(v as i64))
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Borrow-based conversion into [`Value`], mirroring the real `json!`
/// macro's by-reference serialization (so `json!({ "k": owned })` does
/// not move `owned` out of its binding).
pub trait ToValue {
    /// Converts `self` into a [`Value`] without consuming it.
    fn to_value(&self) -> Value;
}

/// Converts any [`ToValue`] into a [`Value`] by reference.
pub fn to_value<T: ToValue + ?Sized>(v: &T) -> Value {
    v.to_value()
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! to_value_via_copy {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

to_value_via_copy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl ToValue for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue, const N: usize> ToValue for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToValue::to_value)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    const STEP: &str = "  ";
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

/// Prints `value` as a single-line compact JSON string (the JSONL form).
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

/// Pretty-prints `value` as a JSON string (2-space indent).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Pretty-prints `value` as JSON bytes (2-space indent).
pub fn to_vec_pretty(value: &Value) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports object literals with string-literal keys, array literals,
/// `null`/`true`/`false`, and arbitrary expressions convertible into
/// [`Value`] via `From`. Nest literals by nesting `json!` calls
/// explicitly: `json!({ "outer": json!({ "inner": 1 }) })`.
///
/// # Examples
///
/// ```
/// use serde_json::json;
/// let v = json!({ "a": 1, "b": [1.5, 2.5], "c": json!({ "nested": true }) });
/// assert!(serde_json::to_string_pretty(&v).unwrap().contains("nested"));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::to_value(&$val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_shapes_round_trip() {
        let v = json!({
            "name": "rmc1",
            "n": 42u64,
            "f": 2.5f64,
            "list": json!([1u32, 2u32]),
            "nested": json!({ "ok": true }),
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"rmc1\""));
        assert!(s.contains("\"n\": 42"));
        assert!(s.contains("\"ok\": true"));
    }

    #[test]
    fn parse_round_trips_serialized_values() {
        let v = json!({
            "s": "a \"quoted\" string\nwith newline",
            "u": 42u64,
            "neg": -7i64,
            "f": 2.5f64,
            "arr": json!([1u64, json!({"k": false}), Value::Null]),
        });
        let parsed = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
        let parsed = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\": }", "tru", "\"unterminated", "1 2"] {
            assert!(from_str(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_handles_surrogate_pairs_and_rejects_lone_ones() {
        assert_eq!(
            from_str("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
        assert!(from_str("\"\\ud83d\"").is_err());
        assert!(from_str("\"\\ud83d x\"").is_err());
        assert!(from_str("\"\\udc00\"").is_err()); // lone low surrogate
    }

    #[test]
    fn parse_number_types_match_shapes() {
        assert_eq!(from_str("18446744073709551615").unwrap(), json!(u64::MAX));
        assert_eq!(from_str("-3").unwrap(), Value::Number(Number::I64(-3)));
        assert_eq!(
            from_str("1.25e2").unwrap(),
            Value::Number(Number::F64(125.0))
        );
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("k".into(), json!(1u8)).is_none());
        assert_eq!(m.insert("k".into(), json!(2u8)), Some(json!(1u8)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn compact_form_is_single_line() {
        let v = json!({ "a": 1u8, "b": json!([1.5f64, "x"]), "c": Value::Null });
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[1.5,"x"],"c":null}"#);
    }

    #[test]
    fn accessors_match_shapes() {
        let v = json!({ "n": 3u8, "f": 2.5f64, "s": "hi", "xs": json!([1u8]), "t": true });
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("t").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Value::as_bool), None);
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("xs").and_then(Value::as_array).map(Vec::len), Some(1));
        assert!(v.get("missing").is_none());
        assert!(v.as_f64().is_none());
    }

    #[test]
    fn expressions_convert() {
        let xs = vec![1.0f64, 2.0];
        let v = json!(xs);
        assert_eq!(v, Value::Array(vec![json!(1.0f64), json!(2.0f64)]));
    }
}
