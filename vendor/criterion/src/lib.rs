//! Minimal in-tree stand-in for the subset of the `criterion` bench
//! harness this workspace uses, so that a fully offline build needs no
//! crates.io access.
//!
//! Unlike the original fixed-iteration shim, this version mirrors real
//! criterion's *time-based* sampling: each benchmark warms up for
//! `--warm-up-time` seconds, estimates the per-iteration cost, then
//! spreads `--sample-size` timed samples over `--measurement-time`
//! seconds. Besides the human-readable `ns/iter` lines it records every
//! result and, at the end of each bench target, writes
//!
//! * a per-target fragment under `target/bench-parts/<target>.json`, and
//! * the merged machine-readable summary `BENCH_sim.json` at the
//!   workspace root (override the path with the `BENCH_SIM_JSON`
//!   environment variable),
//!
//! which is the artifact PERFORMANCE.md documents and CI uploads. If the
//! build environment gains network access, this crate can be deleted and
//! the workspace pointed back at the real `criterion` without source
//! changes — `BENCH_sim.json` would then need a small post-processing
//! step over criterion's `target/criterion/**/estimates.json` instead.

#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished benchmark: identifier plus timing statistics.
#[derive(Debug, Clone)]
struct BenchRecord {
    id: String,
    mean_ns: f64,
    min_sample_ns: f64,
    max_sample_ns: f64,
    iters: u64,
    samples: usize,
}

/// Results accumulated across every `Criterion` instance in the process
/// (a bench target may declare several `criterion_group!`s, each of
/// which constructs its own `Criterion`).
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    timing: Option<(f64, f64, f64, u64)>,
}

impl Bencher {
    /// Times `f` with criterion-style time-based sampling: warm up,
    /// estimate the per-iteration cost, then record `samples` timed
    /// batches sized to fill the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let budget_ns = self.measurement.as_nanos() as f64;
        let per_sample = ((budget_ns / self.samples as f64 / est_ns).ceil() as u64).max(1);

        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            total_ns += elapsed;
            total_iters += per_sample;
            let sample_mean = elapsed as f64 / per_sample as f64;
            min_ns = min_ns.min(sample_mean);
            max_ns = max_ns.max(sample_mean);
        }
        let mean = total_ns as f64 / total_iters as f64;
        self.timing = Some((mean, min_ns, max_ns, total_iters));
        println!(
            "    {:.1} ns/iter (min {:.1}, max {:.1}; {} iters over {} samples)",
            mean, min_ns, max_ns, total_iters, self.samples
        );
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(500),
            filter: None,
        }
    }
}

impl Criterion {
    /// Parses the benchmark command line. Supported (all optional):
    /// `--warm-up-time <secs>`, `--measurement-time <secs>`,
    /// `--sample-size <n>`, and a positional substring filter. Flags the
    /// real criterion accepts but this shim does not implement (and
    /// cargo's own `--bench`) are ignored rather than fatal.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--warm-up-time" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.warm_up = Duration::from_secs_f64(v.max(0.001));
                    }
                }
                "--measurement-time" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.measurement = Duration::from_secs_f64(v.max(0.001));
                    }
                }
                "--sample-size" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                        self.sample_size = v.max(1);
                    }
                }
                "--bench" | "--nocapture" | "--quiet" => {}
                // Value-taking criterion flags this shim does not
                // implement: consume their value too, so it is not
                // misread as a positional filter (which would silently
                // skip every benchmark).
                "--save-baseline"
                | "--baseline"
                | "--baseline-lenient"
                | "--load-baseline"
                | "--profile-time"
                | "--output-format"
                | "--color"
                | "--colour"
                | "--plotting-backend"
                | "--significance-level"
                | "--noise-threshold"
                | "--confidence-level"
                | "--nresamples"
                | "--format"
                | "--logfile" => {
                    let _ = args.next();
                }
                flag if flag.starts_with('-') => {} // unimplemented valueless flag
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        println!("bench {id}");
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples,
            timing: None,
        };
        f(&mut b);
        if let Some((mean_ns, min_sample_ns, max_sample_ns, iters)) = b.timing {
            RESULTS.lock().expect("results lock").push(BenchRecord {
                id,
                mean_ns,
                min_sample_ns,
                max_sample_ns,
                iters,
                samples,
            });
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        self.run_one(name.as_ref().to_string(), self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            parent: self,
            sample_size: None,
        }
    }

    /// Writes the per-target fragment and re-merges `BENCH_sim.json`
    /// from every fragment present. Called by `criterion_group!`; safe
    /// to call repeatedly (each call rewrites with everything recorded
    /// so far).
    ///
    /// Filtered runs (and runs that recorded nothing) leave the
    /// recorded artifact untouched: a fragment always represents the
    /// target's *complete* bench list, so a partial run must not
    /// overwrite it.
    pub fn final_summary(&mut self) {
        if self.filter.is_some() {
            println!("(filtered run: BENCH_sim.json left unchanged)");
            return;
        }
        let Some(root) = workspace_root() else {
            return;
        };
        let results = RESULTS.lock().expect("results lock");
        if results.is_empty() {
            return;
        }
        let target = bench_target_name();
        let parts_dir = root.join("target").join("bench-parts");
        if std::fs::create_dir_all(&parts_dir).is_err() {
            return;
        }
        let mut frag = String::from("[");
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                frag.push(',');
            }
            frag.push_str(&format!(
                "\n    {{\"id\": \"{}\", \"mean_ns\": {:.2}, \"min_sample_ns\": {:.2}, \
                 \"max_sample_ns\": {:.2}, \"iters\": {}, \"samples\": {}}}",
                escape(&r.id),
                r.mean_ns,
                r.min_sample_ns,
                r.max_sample_ns,
                r.iters,
                r.samples
            ));
        }
        frag.push_str("\n  ]");
        let _ = std::fs::write(parts_dir.join(format!("{target}.json")), &frag);
        merge_bench_json(&root, &parts_dir);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of recorded samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs a named benchmark inside the group (id `group/name`).
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.as_ref());
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(id, samples, f);
        self
    }

    /// Closes the group (no-op here).
    pub fn finish(self) {}
}

/// Escapes the two JSON-special characters bench ids could contain.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The workspace root: the nearest ancestor of the current directory
/// holding a `Cargo.lock` (cargo runs bench binaries from the package
/// directory, whose workspace lock file lives at the root).
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// This bench target's name, recovered from the executable file stem by
/// stripping cargo's trailing `-<hash>` disambiguator.
fn bench_target_name() -> String {
    let exe = std::env::current_exe().unwrap_or_default();
    let stem = exe
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown")
        .to_string();
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem,
    }
}

/// Bench-target names currently declared in the workspace: the file
/// stems of `crates/*/benches/*.rs` (cargo's implicit bench-target
/// discovery). Used to drop `target/bench-parts/` fragments left behind
/// by renamed or deleted bench targets — without this, a stale fragment
/// would be resurrected into `BENCH_sim.json` forever. Returns `None`
/// when the scan finds no bench sources at all (unexpected root, or a
/// partially unreadable tree), in which case the merge keeps every
/// fragment rather than deleting on bad information.
fn known_bench_targets(root: &Path) -> Option<Vec<String>> {
    let crates = root.join("crates");
    let mut names = Vec::new();
    for krate in std::fs::read_dir(crates).ok()?.flatten() {
        let benches = krate.path().join("benches");
        let Ok(entries) = std::fs::read_dir(benches) else {
            continue; // most crates simply have no benches/ dir
        };
        for bench in entries.flatten() {
            let path = bench.path();
            if path.extension().is_some_and(|e| e == "rs") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
    }
    // An empty list means the scan failed to see the bench tree (this
    // workspace always has bench targets); refuse to classify anything
    // as stale on that basis.
    (!names.is_empty()).then_some(names)
}

/// Rebuilds `BENCH_sim.json` by embedding every fragment verbatim. The
/// fragments are this module's own output, so textual embedding yields
/// well-formed JSON without needing a parser. Fragments whose bench
/// target no longer exists in the workspace are deleted, not merged.
fn merge_bench_json(root: &Path, parts_dir: &Path) {
    let known = known_bench_targets(root);
    let mut parts: Vec<(String, String)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(parts_dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "json") {
                if let (Some(stem), Ok(body)) = (
                    path.file_stem().and_then(|s| s.to_str()),
                    std::fs::read_to_string(&path),
                ) {
                    if known
                        .as_ref()
                        .is_some_and(|names| !names.iter().any(|n| n == stem))
                    {
                        // Renamed or removed bench target: retire its
                        // fragment instead of resurrecting it.
                        println!("(dropping stale bench fragment {})", path.display());
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    parts.push((stem.to_string(), body));
                }
            }
        }
    }
    parts.sort();
    let mut out = String::from("{\n  \"schema\": 1,\n  \"unit\": \"ns_per_iter\",\n");
    out.push_str(
        "  \"note\": \"written by the vendored criterion stand-in; \
         one key per bench target, merged from target/bench-parts/\",\n",
    );
    out.push_str("  \"targets\": {");
    for (i, (name, body)) in parts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n  \"{}\": {}", escape(name), body));
    }
    out.push_str("\n  }\n}\n");
    let dest = std::env::var_os("BENCH_SIM_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("BENCH_sim.json"));
    if std::fs::write(&dest, out).is_ok() {
        println!("-> wrote {}", dest.display());
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
