//! Minimal in-tree stand-in for the subset of the `criterion` bench
//! harness this workspace uses, so that a fully offline build needs no
//! crates.io access. It times each benchmark with `std::time::Instant`
//! and prints a mean ns/iter — no statistics, plots, or baselines.
//!
//! If the build environment gains network access, this crate can be
//! deleted and the workspace pointed back at the real `criterion`
//! without any source changes.

#![deny(missing_docs)]

use std::time::Instant;

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations (after one warmup
    /// iteration) and records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed.as_nanos() / self.samples.max(1) as u128;
        println!("    {per_iter} ns/iter ({} iters)", self.samples);
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Parses command-line configuration (accepted and ignored here, so
    /// `cargo bench -- <filter>` does not error out).
    pub fn configure_from_args(mut self) -> Self {
        self.sample_size = 10;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        println!("bench {}", name.as_ref());
        let mut b = Bencher {
            samples: self.sample_size.max(1),
        };
        f(&mut b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }

    /// Final bookkeeping after all groups run (no-op here).
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        println!("  bench {}", name.as_ref());
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(self.parent.sample_size).max(1),
        };
        f(&mut b);
        self
    }

    /// Closes the group (no-op here).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
