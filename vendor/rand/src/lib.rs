//! Minimal in-tree stand-in for the subset of the `rand` crate API this
//! workspace uses, so that a fully offline build needs no crates.io
//! access. Only [`RngCore`] and [`Error`] are provided; all actual
//! random-number generation in the workspace comes from `simkit::DetRng`,
//! which implements this trait.
//!
//! If the build environment gains network access, this crate can be
//! deleted and the workspace pointed back at the real `rand` without any
//! source changes.

#![deny(missing_docs)]

use std::fmt;

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The deterministic generators in this workspace never fail, so this is
/// effectively uninhabited in practice; it exists for API compatibility.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core trait every random-number generator implements, mirroring
/// `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
