//! Minimal in-tree stand-in for the subset of `proptest` this workspace
//! uses, so that a fully offline build needs no crates.io access.
//!
//! The [`proptest!`] macro expands each property into a plain `#[test]`
//! that samples its strategies from a deterministic splitmix64 stream
//! (seeded per-property from the property name) and panics on the first
//! violated assertion. There is no shrinking and no persistence — a
//! failure prints the sampled inputs and stops.
//!
//! If the build environment gains network access, this crate can be
//! deleted and the workspace pointed back at the real `proptest` without
//! any source changes.

#![deny(missing_docs)]

use std::ops::Range;

/// Deterministic splitmix64 generator driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream. The [`proptest!`] macro derives the seed from
    /// the property's name so every run of every property is identical.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of random values of one type, mirroring
/// `proptest::strategy::Strategy` (generation only; no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty strategy range");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        // 24 bits, not 53: a 53-bit numerator rounds up to 2^53 in f32
        // (24-bit mantissa), which would make `unit` exactly 1.0 and
        // sample the excluded upper bound.
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Strategy for any value of a type, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical unconstrained strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            assert!(span > 0, "empty vec-length range");
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the property name: a stable per-property seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts a property-scoped condition, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Skips the current case when its precondition fails, mirroring
/// `prop_assume!`. This stand-in runs each case in a plain loop, so an
/// unmet assumption simply moves on to the next sample via `continue`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts property-scoped equality, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// that samples `config.cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),* ) $body
            )*
        }
    };
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for _case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )*
                    $body
                }
            }
        )*
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}
