//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros backing
//! the in-tree `serde` stand-in. They accept (and ignore) `#[serde(...)]`
//! attributes so annotated types keep compiling unchanged when the real
//! serde is restored.

#![deny(missing_docs)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
