//! Shape-level reproduction assertions: the qualitative results of each
//! figure must hold at test scale. These are the claims DESIGN.md §3
//! commits to, checked in CI rather than by eyeballing plots.

use pifs_rec::prelude::*;
use pifs_rec::{BufferConfig, BufferPolicy, PmConfig, PmStyle, SystemConfig as Cfg};

fn model() -> ModelConfig {
    ModelConfig::rmc2().scaled_down(16)
}

fn trace(batch: u32, seed: u64) -> tracegen::Trace {
    let m = model();
    TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: m.n_tables,
        rows_per_table: m.emb_num,
        batch_size: batch,
        n_batches: 12,
        bag_size: m.bag_size,
        seed,
    }
    .generate()
}

fn warm(mut cfg: Cfg) -> Cfg {
    cfg.warmup_batches = 4;
    cfg
}

#[test]
fn fig12c_more_devices_help_pifs() {
    let t = trace(32, 201);
    let run = |devices: u16| {
        let mut cfg = warm(Cfg::pifs_rec(model()));
        cfg.n_devices = devices;
        SlsSystem::new(cfg).run_trace(&t).total_ns
    };
    let two = run(2);
    let sixteen = run(16);
    assert!(
        sixteen < two,
        "device scaling must help: 2dev={two} 16dev={sixteen}"
    );
}

#[test]
fn fig13c_more_switches_help_large_batches() {
    let m = model();
    let t = trace(64, 203);
    let run = |switches: u16| {
        let mut cfg = warm(Cfg::pifs_rec(m.clone()));
        cfg.n_switches = switches;
        cfg.n_hosts = switches;
        cfg.n_devices = switches.max(8);
        SlsSystem::new(cfg).run_trace(&t).total_ns
    };
    let one = run(1);
    let eight = run(8);
    assert!(
        eight < one,
        "switch scale-out must help: 1sw={one} 8sw={eight}"
    );
}

#[test]
fn fig13d_pifs_cold_age_beats_tpp() {
    let t = trace(32, 207);
    let mut pifs = warm(Cfg::pifs_rec(model()));
    pifs.page_mgmt = Some(PmConfig {
        cold_age_threshold: 0.16,
        ..PmConfig::default()
    });
    let mut tpp = warm(Cfg::pifs_rec(model()));
    tpp.page_mgmt = Some(PmConfig {
        style: PmStyle::Tpp,
        ..PmConfig::default()
    });
    let a = SlsSystem::new(pifs).run_trace(&t).total_ns;
    let b = SlsSystem::new(tpp).run_trace(&t).total_ns;
    assert!(a < b, "cold-age PM ({a}) must beat TPP ({b})");
}

#[test]
fn fig15_buffer_helps_and_htr_wins() {
    // Clean buffer comparison: all rows on CXL, no page management
    // stealing the hot set away from the switch (Fig 15 isolates the
    // buffer the same way by sweeping only cache size/policy).
    let t = trace(32, 211);
    let run = |buffer: Option<BufferConfig>| {
        let mut cfg = warm(Cfg::pifs_rec(model()));
        cfg.placement = pagemgmt::InitialPlacement::AllCxl;
        cfg.page_mgmt = None;
        cfg.buffer = buffer;
        SlsSystem::new(cfg).run_trace(&t)
    };
    let none = run(None);
    let htr = run(Some(BufferConfig {
        policy: BufferPolicy::Htr,
        capacity_bytes: 32 * 1024,
    }));
    let fifo = run(Some(BufferConfig {
        policy: BufferPolicy::Fifo,
        capacity_bytes: 32 * 1024,
    }));
    assert!(htr.total_ns < none.total_ns, "buffer must help");
    assert!(
        htr.buffer_hit_ratio() >= fifo.buffer_hit_ratio(),
        "HTR hit ratio {:.3} must be at least FIFO's {:.3}",
        htr.buffer_hit_ratio(),
        fifo.buffer_hit_ratio()
    );
}

#[test]
fn fig13a_cache_line_migration_is_cheaper_than_page_block() {
    let t = trace(32, 213);
    let run = |granularity| {
        let mut cfg = warm(Cfg::pifs_rec(model()));
        cfg.page_mgmt = Some(PmConfig {
            granularity,
            ..PmConfig::default()
        });
        SlsSystem::new(cfg).run_trace(&t)
    };
    let cl = run(pagemgmt::MigrationGranularity::CacheLineBlock);
    let pb = run(pagemgmt::MigrationGranularity::PageBlock);
    assert!(
        cl.migration_ns < pb.migration_ns / 3,
        "cache-line {} vs page-block {}",
        cl.migration_ns,
        pb.migration_ns
    );
    assert!(cl.total_ns < pb.total_ns);
}

#[test]
fn fig14_multi_host_scales_throughput() {
    // Work scales with host count (each host serves its own request
    // stream); the figure's metric is throughput.
    let m = model();
    let run = |hosts: u16| {
        let t = TraceSpec {
            distribution: Distribution::MetaLike {
                reuse_frac: 0.35,
                s: 1.05,
            },
            n_tables: m.n_tables,
            rows_per_table: m.emb_num,
            batch_size: 64,
            n_batches: 6 * hosts as u32,
            bag_size: m.bag_size,
            seed: 217,
        }
        .generate();
        let mut cfg = warm(Cfg::pifs_rec(m.clone()));
        cfg.n_hosts = hosts;
        let met = SlsSystem::new(cfg).run_trace(&t);
        met.lookups as f64 / met.total_ns as f64
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four > one * 1.5,
        "4 hosts should raise throughput well beyond 1.5x: one={one:.4} four={four:.4}"
    );
}

#[test]
fn fig12b_uniform_is_the_friendliest_distribution() {
    let m = model();
    let run = |dist| {
        let t = TraceSpec {
            distribution: dist,
            n_tables: m.n_tables,
            rows_per_table: m.emb_num,
            batch_size: 32,
            n_batches: 12,
            bag_size: m.bag_size,
            seed: 219,
        }
        .generate();
        SlsSystem::new(warm(Cfg::pifs_rec(m.clone())))
            .run_trace(&t)
            .total_ns
    };
    let uniform = run(Distribution::Uniform);
    let zipf = run(Distribution::Zipfian { s: 1.05 });
    // Uniform spreads load perfectly across devices; Zipf concentrates
    // it (the buffer claws some back, but Fig 12(b) still ranks uniform
    // fastest).
    assert!(
        uniform < zipf * 2,
        "uniform {uniform} should not be dramatically slower than zipf {zipf}"
    );
}

#[test]
fn energy_and_hardware_claims_hold() {
    let e = tco::EnergyModel::default();
    let avg: f64 = dlrm::ModelConfig::all()
        .iter()
        .map(|m| e.saving_frac(m))
        .sum::<f64>()
        / 4.0;
    assert!(avg > 0.08, "energy saving {avg:.3}");
    let hw = tco::HardwareOverheads::default();
    assert!(hw.power_ratio_vs_recnmp() > 2.0);
    assert!(hw.area_ratio_vs_recnmp() > 1.5);
}
