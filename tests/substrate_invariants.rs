//! Property-based invariants spanning crates: the DDR model never
//! violates its timing floor, traces always stay in range, page
//! migration conserves pages, and the full system accounts for every
//! lookup under arbitrary (small) workloads.

use proptest::prelude::*;

use pifs_rec::prelude::*;
use pifs_rec::SystemConfig as Cfg;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DDR accesses can never complete faster than the zero-load floor
    /// (activate + CAS + one burst).
    #[test]
    fn dram_never_beats_physics(addrs in proptest::collection::vec(0u64..(1 << 30), 1..64)) {
        use memsim::{DramConfig, DramDevice, MemOp};
        use simkit::SimTime;
        let cfg = DramConfig::ddr5_4800_local();
        let floor = cfg.timings.act_to_data() + cfg.timings.burst_time();
        let mut dev = DramDevice::new(cfg);
        for addr in addrs {
            let done = dev.access(SimTime::ZERO, addr, MemOp::Read);
            prop_assert!(done.as_ns() >= floor.as_ns() - 1,
                "completion {done} beats the physical floor {floor}");
        }
    }

    /// Generated traces never index out of the configured row space and
    /// always carry exactly the promised number of lookups.
    #[test]
    fn traces_stay_in_bounds(
        rows in 1u64..10_000,
        tables in 1u32..6,
        batch in 1u32..16,
        bag in 1u32..8,
        seed in any::<u64>(),
    ) {
        let t = TraceSpec {
            distribution: Distribution::Zipfian { s: 0.9 },
            n_tables: tables,
            rows_per_table: rows,
            batch_size: batch,
            n_batches: 2,
            bag_size: bag,
            seed,
        }.generate();
        prop_assert_eq!(t.total_lookups(), 2 * batch as u64 * tables as u64 * bag as u64);
        for (_, table, _, row) in t.iter_lookups() {
            prop_assert!(table < tables);
            prop_assert!(row < rows);
        }
    }

    /// Page migration conserves pages: whatever the rebalancer does, the
    /// total page population is unchanged and capacities are respected.
    #[test]
    fn rebalance_conserves_pages(
        counts in proptest::collection::vec(
            proptest::collection::vec(0u64..50, 0..12), 2..5),
    ) {
        use pagemgmt::{rebalance, DeviceLoad, PageId, SpreadConfig};
        let mut next_page = 0u64;
        let mut devices: Vec<DeviceLoad> = counts.iter().map(|per_dev| DeviceLoad {
            pages: per_dev.iter().map(|&c| {
                next_page += 1;
                (PageId(next_page), c)
            }).collect(),
            capacity: 32,
        }).collect();
        let before: usize = devices.iter().map(|d| d.pages.len()).sum();
        rebalance(&mut devices, &SpreadConfig::default());
        let after: usize = devices.iter().map(|d| d.pages.len()).sum();
        prop_assert_eq!(before, after, "pages must be conserved");
        for d in &devices {
            prop_assert!(d.pages.len() as u64 <= d.capacity);
        }
    }

    /// The full system accounts for every lookup across tiers, and its
    /// makespan is positive, for arbitrary small workloads.
    #[test]
    fn system_accounts_for_all_lookups(
        batch in 1u32..8,
        batches in 1u32..4,
        seed in 0u64..1000,
    ) {
        let model = ModelConfig::rmc1().scaled_down(32);
        let trace = TraceSpec {
            distribution: Distribution::Random,
            n_tables: model.n_tables,
            rows_per_table: model.emb_num,
            batch_size: batch,
            n_batches: batches,
            bag_size: model.bag_size,
            seed,
        }.generate();
        let m = SlsSystem::new(Cfg::pifs_rec(model)).run_trace(&trace);
        prop_assert_eq!(m.lookups, trace.total_lookups());
        prop_assert_eq!(m.lookups, m.local_lookups + m.remote_lookups + m.cxl_lookups);
        prop_assert!(m.total_ns > 0);
        prop_assert!(m.checksum.is_finite());
    }

    /// The instruction codec round-trips through the fabric-switch
    /// repacking path without losing the fields the IIR matches on.
    #[test]
    fn repacking_preserves_iir_keys(
        addr in 0u64..(1 << 47),
        sum_tag in 0u16..512,
        chunks in 1u8..9,
        spid in 0u16..4096,
    ) {
        use cxlsim::M2sReq;
        let orig = M2sReq::data_fetch(addr, sum_tag, chunks, spid);
        let wire = M2sReq::decode(orig.encode()).unwrap();
        let repacked = wire.repack_for_device(1000, 3);
        prop_assert_eq!(repacked.address, orig.address);
        prop_assert_eq!(repacked.sum_tag, orig.sum_tag);
        prop_assert_eq!(repacked.vector_bytes(), orig.vector_bytes());
    }
}
