//! Cross-crate integration tests: every compute placement and topology
//! must produce the same functional SLS results, and the performance
//! ordering the paper reports must hold end to end.

use pifs_rec::prelude::*;
use pifs_rec::{ComputeSite, SystemConfig as Cfg};

fn model() -> ModelConfig {
    ModelConfig::rmc1().scaled_down(8)
}

fn trace(batches: u32, batch: u32, seed: u64) -> tracegen::Trace {
    let m = model();
    TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: m.n_tables,
        rows_per_table: m.emb_num,
        batch_size: batch,
        n_batches: batches,
        bag_size: m.bag_size,
        seed,
    }
    .generate()
}

fn checksums_close(a: f64, b: f64) {
    let tol = (a.abs() + b.abs()) * 1e-5 + 1e-6;
    assert!((a - b).abs() <= tol, "checksums differ: {a} vs {b}");
}

#[test]
fn all_five_schemes_compute_identical_sls_results() {
    let t = trace(4, 16, 101);
    let mut checks = Vec::new();
    for scheme in Scheme::all() {
        let m = SlsSystem::new(scheme.config(model())).run_trace(&t);
        checks.push((scheme.label(), m.checksum));
    }
    for w in checks.windows(2) {
        checksums_close(w[0].1, w[1].1);
    }
}

#[test]
fn paper_ordering_holds_end_to_end() {
    let t = trace(12, 32, 103);
    let run = |s: Scheme| SlsSystem::new(s.config(model())).run_trace(&t).total_ns;
    let pond = run(Scheme::Pond);
    let beacon = run(Scheme::Beacon);
    let pifs = run(Scheme::PifsRec);
    assert!(pifs < beacon, "pifs={pifs} beacon={beacon}");
    assert!(beacon < pond, "beacon={beacon} pond={pond}");
    let ratio = pond as f64 / pifs as f64;
    assert!(
        (2.0..8.0).contains(&ratio),
        "Pond/PIFS ratio {ratio:.2} should be in the paper's neighbourhood (3.89x)"
    );
}

#[test]
fn multi_switch_topology_preserves_results() {
    let t = trace(3, 8, 107);
    let single = SlsSystem::new(Cfg::pifs_rec(model())).run_trace(&t);
    let mut cfg = Cfg::pifs_rec(model());
    cfg.n_switches = 4;
    cfg.n_hosts = 4;
    let multi = SlsSystem::new(cfg).run_trace(&t);
    checksums_close(single.checksum, multi.checksum);
}

#[test]
fn threading_modes_cover_the_same_work() {
    let t = trace(3, 16, 109);
    let mut a = Cfg::pifs_rec(model());
    a.threading = dlrm::ThreadingMode::Batch;
    let mut b = Cfg::pifs_rec(model());
    b.threading = dlrm::ThreadingMode::Table;
    let ra = SlsSystem::new(a).run_trace(&t);
    let rb = SlsSystem::new(b).run_trace(&t);
    assert_eq!(ra.lookups, rb.lookups);
    checksums_close(ra.checksum, rb.checksum);
}

#[test]
fn warmup_excludes_transients_but_not_correctness() {
    let t = trace(8, 16, 113);
    let cold = SlsSystem::new(Cfg::pifs_rec(model())).run_trace(&t);
    let mut warm_cfg = Cfg::pifs_rec(model());
    warm_cfg.warmup_batches = 4;
    let warm = SlsSystem::new(warm_cfg).run_trace(&t);
    // The warm measurement covers half the batches…
    assert_eq!(warm.bags * 2, cold.bags);
    // …and excludes the PM convergence transient, so its per-bag time is
    // lower.
    let cold_per_bag = cold.total_ns as f64 / cold.bags as f64;
    let warm_per_bag = warm.total_ns as f64 / warm.bags as f64;
    assert!(
        warm_per_bag < cold_per_bag,
        "warm {warm_per_bag:.0} vs cold {cold_per_bag:.0}"
    );
}

#[test]
fn compute_sites_are_exercised() {
    for scheme in Scheme::all() {
        let cfg = scheme.config(model());
        match scheme {
            Scheme::Pond | Scheme::PondPm => assert_eq!(cfg.compute, ComputeSite::Host),
            Scheme::Beacon | Scheme::PifsRec => assert_eq!(cfg.compute, ComputeSite::Switch),
            Scheme::RecNmp => assert_eq!(cfg.compute, ComputeSite::Dimm),
        }
    }
}

#[test]
fn determinism_across_full_stack() {
    let t = trace(4, 16, 127);
    let a = SlsSystem::new(Cfg::pifs_rec(model())).run_trace(&t);
    let b = SlsSystem::new(Cfg::pifs_rec(model())).run_trace(&t);
    assert_eq!(a.total_ns, b.total_ns);
    assert_eq!(a.device_accesses, b.device_accesses);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn cnv_fallback_preserves_results_and_costs_bandwidth() {
    // §IV-C2: a remote switch without a process core streams raw rows to
    // the local switch, which computes on its behalf. Results must be
    // identical; latency must not improve.
    let t = trace(4, 16, 131);
    let build = || {
        let mut cfg = Cfg::pifs_rec(model());
        cfg.n_switches = 4;
        cfg.n_hosts = 1;
        cfg
    };
    let with_pc = SlsSystem::new(build()).run_trace(&t);
    let mut crippled = SlsSystem::new(build());
    for idx in 1..4 {
        crippled.disable_process_core(idx);
    }
    let without_pc = crippled.run_trace(&t);
    checksums_close(with_pc.checksum, without_pc.checksum);
    assert!(
        without_pc.total_ns >= with_pc.total_ns,
        "losing remote process cores cannot speed things up: {} vs {}",
        without_pc.total_ns,
        with_pc.total_ns
    );
}
