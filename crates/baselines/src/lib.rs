//! `baselines` — the comparison systems of §VI-B.
//!
//! Pond, Pond+PM, BEACON-S and RecNMP are configurations of the shared
//! [`pifs_core::system::SlsSystem`] (same substrates, different compute
//! placement and management), exposed here as a [`Scheme`] registry so
//! harnesses can sweep them uniformly. The GPU parameter-server used in
//! Fig 16/17 is an analytical roofline model in [`gpu`].

#![warn(missing_docs)]

pub mod gpu;
pub mod schemes;

pub use gpu::GpuParameterServer;
pub use schemes::Scheme;
