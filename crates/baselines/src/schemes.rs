//! The scheme registry: one entry per system in Fig 12's legend.

use dlrm::ModelConfig;
use pifs_core::system::SystemConfig;

/// A named evaluation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// CXL pooling, host compute, no management (the Fig 12 baseline).
    Pond,
    /// Pond plus this paper's page management.
    PondPm,
    /// BEACON adapted to SLS (in-switch compute, CXL-only, in-order).
    Beacon,
    /// DIMM-side near-memory processing with a fixed local pool.
    RecNmp,
    /// The paper's full system.
    PifsRec,
}

impl Scheme {
    /// Every scheme in the paper's plotting order.
    pub fn all() -> [Scheme; 5] {
        [
            Scheme::Pond,
            Scheme::PondPm,
            Scheme::Beacon,
            Scheme::RecNmp,
            Scheme::PifsRec,
        ]
    }

    /// Display label matching the figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Pond => "Pond",
            Scheme::PondPm => "Pond+PM",
            Scheme::Beacon => "BEACON",
            Scheme::RecNmp => "RecNMP",
            Scheme::PifsRec => "PIFS-Rec",
        }
    }

    /// Builds the system configuration for `model`.
    ///
    /// RecNMP's fixed 128 GB local pool covers a model-dependent share of
    /// the working set (the paper's larger models outgrow it); the scaled
    /// fractions keep that relationship.
    pub fn config(self, model: ModelConfig) -> SystemConfig {
        match self {
            Scheme::Pond => SystemConfig::pond(model),
            Scheme::PondPm => SystemConfig::pond_pm(model),
            Scheme::Beacon => SystemConfig::beacon(model),
            Scheme::RecNmp => {
                let frac = Self::recnmp_local_frac(&model);
                SystemConfig::recnmp(model, frac)
            }
            Scheme::PifsRec => SystemConfig::pifs_rec(model),
        }
    }

    /// Scaled equivalent of "a fixed amount of 128 GB local DRAM"
    /// (§VI-B): small models fit almost entirely; RMC4 spills hardest.
    pub fn recnmp_local_frac(model: &ModelConfig) -> f64 {
        match model.name.as_str() {
            "RMC1" => 0.80,
            "RMC2" => 0.75,
            "RMC3" => 0.70,
            "RMC4" => 0.67,
            _ => 0.72,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pifs_core::system::ComputeSite;

    #[test]
    fn registry_covers_all_five_schemes() {
        let labels: Vec<&str> = Scheme::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["Pond", "Pond+PM", "BEACON", "RecNMP", "PIFS-Rec"]);
    }

    #[test]
    fn configs_differ_where_the_paper_says_they_do() {
        let m = ModelConfig::rmc1().scaled_down(16);
        let pond = Scheme::Pond.config(m.clone());
        let beacon = Scheme::Beacon.config(m.clone());
        let pifs = Scheme::PifsRec.config(m.clone());
        let recnmp = Scheme::RecNmp.config(m.clone());

        assert_eq!(pond.compute, ComputeSite::Host);
        assert_eq!(beacon.compute, ComputeSite::Switch);
        assert_eq!(recnmp.compute, ComputeSite::Dimm);
        assert_eq!(pifs.compute, ComputeSite::Switch);

        assert!(pond.page_mgmt.is_none());
        assert!(pifs.page_mgmt.is_some());
        assert!(beacon.buffer.is_none());
        assert!(pifs.buffer.is_some());
        assert!(!beacon.ooo);
        assert!(pifs.ooo);
        assert!(beacon.translation_ns > 0);
        assert_eq!(pifs.translation_ns, 0);
    }

    #[test]
    fn recnmp_local_share_shrinks_with_model_size() {
        let fracs: Vec<f64> = ModelConfig::all()
            .iter()
            .map(Scheme::recnmp_local_frac)
            .collect();
        for w in fracs.windows(2) {
            assert!(w[1] <= w[0], "local share must not grow: {fracs:?}");
        }
    }
}
