//! The GPU parameter-server baseline of §VI-E (Fig 16/17).
//!
//! The paper's comparison system is up to four A100 GPUs with a CPU
//! parameter server. Two regimes matter:
//!
//! * **HBM-resident** — small deployments fit the embedding tables in
//!   GPU memory, so SLS runs at HBM bandwidth and "for smaller models
//!   (RMC1), GPU provides better throughput";
//! * **parameter-server** — once the deployment outgrows aggregate HBM
//!   (the paper's production context replicates Table I's tables many
//!   hundreds of times), every sample's rows are gathered on the CPU
//!   parameter server, whose memory bandwidth saturates — "when memory
//!   bandwidth on the parameter server becomes the bottleneck throughput
//!   drops".

use dlrm::ModelConfig;

/// How many Table I table-sets a production deployment carries
/// (industrial DLRMs serve hundreds of tables; Table I lists one
/// representative set of 8).
pub const DEPLOYMENT_REPLICATION: u64 = 256;

/// Usable HBM per A100 after activations/overheads, bytes.
const HBM_USABLE: u64 = 76 * (1 << 30);

/// An analytical GPU + parameter-server deployment.
#[derive(Debug, Clone)]
pub struct GpuParameterServer {
    /// Number of A100 GPUs.
    pub n_gpus: u32,
    /// Parameter-server effective gather bandwidth, GB/s.
    pub ps_gather_gbps: f64,
    /// Per-GPU effective HBM bandwidth for sparse gathers, GB/s.
    pub hbm_gather_gbps: f64,
}

impl GpuParameterServer {
    /// A deployment with `n_gpus` A100s behind one EPYC parameter
    /// server.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus` is zero.
    pub fn new(n_gpus: u32) -> Self {
        assert!(n_gpus > 0, "need at least one GPU");
        GpuParameterServer {
            n_gpus,
            // 12 channels DDR5 ≈ 460 GB/s peak; random row gathers plus
            // the NIC/RDMA handoff to the GPUs land near a quarter of
            // peak.
            ps_gather_gbps: 460.0 * 0.25,
            // HBM2e ≈ 1935 GB/s peak; sparse gathers reach about half.
            hbm_gather_gbps: 1935.0 * 0.5,
        }
    }

    /// Full deployment footprint of `model`'s embeddings, bytes.
    pub fn deployment_bytes(model: &ModelConfig) -> u64 {
        model.embedding_bytes() * DEPLOYMENT_REPLICATION
    }

    /// `true` when the deployment fits in this cluster's aggregate HBM
    /// (tables sharded across GPUs).
    pub fn hbm_resident(&self, model: &ModelConfig) -> bool {
        Self::deployment_bytes(model) <= self.n_gpus as u64 * HBM_USABLE
    }

    /// Sustained embedding-serving throughput in samples per
    /// microsecond. §VI-E evaluates "the performance of the parameter
    /// server", i.e. the SLS-serving stage — the dense stages run
    /// pipelined on separate hardware in both systems.
    pub fn throughput_samples_per_us(&self, model: &ModelConfig) -> f64 {
        let sls_bytes = model.sls_bytes_per_sample() as f64;
        let sls_rate = if self.hbm_resident(model) {
            self.n_gpus as f64 * self.hbm_gather_gbps / sls_bytes
        } else {
            // Every sample's rows funnel through the one parameter
            // server regardless of GPU count.
            self.ps_gather_gbps / sls_bytes
        };
        sls_rate * 1000.0
    }

    /// Total board power in watts (Table III: 300 W per A100 plus the
    /// 360 W server CPU).
    pub fn power_w(&self) -> f64 {
        360.0 + 300.0 * self.n_gpus as f64
    }
}

/// PIFS-Rec's embedding-serving throughput for the same workload: SLS
/// at the fabric's effective rate.
pub fn pifs_throughput_samples_per_us(model: &ModelConfig, sls_gbps: f64) -> f64 {
    sls_gbps / model.sls_bytes_per_sample() as f64 * 1000.0
}

/// Effective SLS bandwidth of the default 8-device PIFS-Rec fabric:
/// bounded by aggregate DDR4 expander bandwidth less fabric overheads,
/// with the hot fraction served from local DRAM.
pub const PIFS_EFFECTIVE_SLS_GBPS: f64 = 190.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_models_are_hbm_resident_large_are_not() {
        let four = GpuParameterServer::new(4);
        assert!(four.hbm_resident(&ModelConfig::rmc1()));
        assert!(four.hbm_resident(&ModelConfig::rmc2()));
        assert!(!four.hbm_resident(&ModelConfig::rmc3()));
        assert!(!four.hbm_resident(&ModelConfig::rmc4()));
    }

    #[test]
    fn gpu_wins_small_models() {
        let m = ModelConfig::rmc1();
        let gpu = GpuParameterServer::new(4).throughput_samples_per_us(&m);
        let pifs = pifs_throughput_samples_per_us(&m, PIFS_EFFECTIVE_SLS_GBPS);
        assert!(gpu > pifs * 2.0, "gpu={gpu:.1} pifs={pifs:.1}");
    }

    #[test]
    fn pifs_wins_the_largest_model() {
        // Fig 17: PIFS-Rec "outperforms a 4-GPU cluster by 1.6×" on the
        // biggest model, where the parameter server is bandwidth-bound.
        let m = ModelConfig::rmc4();
        let gpu = GpuParameterServer::new(4).throughput_samples_per_us(&m);
        let pifs = pifs_throughput_samples_per_us(&m, PIFS_EFFECTIVE_SLS_GBPS);
        let ratio = pifs / gpu;
        assert!(ratio > 1.2, "ratio={ratio:.2}");
        assert!(
            ratio < 2.5,
            "ratio={ratio:.2} should stay near the paper's 1.6×"
        );
    }

    #[test]
    fn more_gpus_help_until_the_ps_saturates() {
        let m = ModelConfig::rmc4();
        let t1 = GpuParameterServer::new(1).throughput_samples_per_us(&m);
        let t4 = GpuParameterServer::new(4).throughput_samples_per_us(&m);
        // RMC4 is PS-bound: extra GPUs buy nothing.
        assert!((t4 - t1).abs() < 1e-9, "t1={t1} t4={t4}");
        // RMC1 is HBM-resident: extra GPUs scale throughput.
        let s = ModelConfig::rmc1();
        let s1 = GpuParameterServer::new(1).throughput_samples_per_us(&s);
        let s4 = GpuParameterServer::new(4).throughput_samples_per_us(&s);
        assert!(s4 > s1 * 2.0, "s1={s1} s4={s4}");
    }

    #[test]
    fn power_scales_with_gpu_count() {
        assert_eq!(GpuParameterServer::new(1).power_w(), 660.0);
        assert_eq!(GpuParameterServer::new(4).power_w(), 1560.0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        let _ = GpuParameterServer::new(0);
    }
}
