//! Page identity, memory tiers, and the placement table.

use simkit::hash::FastMap;

use serde::{Deserialize, Serialize};

/// Size of one OS page. §IV-B1 settles on 4 KB page-granular management
/// ("page-granular metadata management and migration is supported and
/// compatible with the current OS").
pub const PAGE_BYTES: u64 = 4096;

/// Identifies one 4 KB page of the unified address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u64);

impl PageId {
    /// Page containing byte address `addr`.
    pub fn of_addr(addr: u64) -> PageId {
        PageId(addr / PAGE_BYTES)
    }

    /// First byte address of the page.
    pub fn base_addr(self) -> u64 {
        self.0 * PAGE_BYTES
    }
}

/// A memory tier in the §III hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// CPU-attached local DRAM (lowest latency).
    Local,
    /// A remote CPU socket's DRAM, reached over the inter-socket link.
    Remote,
    /// CXL Type 3 device `n`, reached through the fabric switch.
    Cxl(u16),
}

/// Capacity of each tier in pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierCapacities {
    /// Local DRAM pages.
    pub local_pages: u64,
    /// Remote-socket pages.
    pub remote_pages: u64,
    /// Number of CXL devices.
    pub n_cxl: u16,
    /// Pages per CXL device.
    pub cxl_pages_per_dev: u64,
}

impl TierCapacities {
    /// Creates a capacity description.
    pub fn new(local_pages: u64, remote_pages: u64, n_cxl: u16, cxl_pages_per_dev: u64) -> Self {
        TierCapacities {
            local_pages,
            remote_pages,
            n_cxl,
            cxl_pages_per_dev,
        }
    }

    /// Capacity of `tier` in pages.
    pub fn of(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Local => self.local_pages,
            Tier::Remote => self.remote_pages,
            Tier::Cxl(_) => self.cxl_pages_per_dev,
        }
    }

    /// Total capacity in pages across every tier.
    pub fn total(&self) -> u64 {
        self.local_pages + self.remote_pages + self.n_cxl as u64 * self.cxl_pages_per_dev
    }
}

/// Error returned when a placement would exceed a tier's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// The tier that was full.
    pub tier: Tier,
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tier {:?} is at capacity", self.tier)
    }
}

impl std::error::Error for CapacityError {}

/// The placement table: which tier each page lives on.
///
/// # Examples
///
/// ```
/// use pagemgmt::{PageId, PageTable, Tier, TierCapacities};
///
/// let mut pt = PageTable::new(TierCapacities::new(2, 0, 1, 2));
/// pt.place(PageId(0), Tier::Local).unwrap();
/// pt.move_page(PageId(0), Tier::Cxl(0)).unwrap();
/// assert_eq!(pt.tier_of(PageId(0)), Some(Tier::Cxl(0)));
/// assert_eq!(pt.migrations(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    caps: TierCapacities,
    map: FastMap<PageId, Tier>,
    occupancy: FastMap<Tier, u64>,
    migrations: u64,
}

impl PageTable {
    /// Creates an empty table with the given capacities.
    pub fn new(caps: TierCapacities) -> Self {
        PageTable {
            caps,
            map: FastMap::default(),
            occupancy: FastMap::default(),
            migrations: 0,
        }
    }

    /// Tier currently holding `page`, if placed.
    pub fn tier_of(&self, page: PageId) -> Option<Tier> {
        self.map.get(&page).copied()
    }

    /// Places a previously unplaced page.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the tier is full.
    ///
    /// # Panics
    ///
    /// Panics if the page is already placed (use [`PageTable::move_page`]).
    pub fn place(&mut self, page: PageId, tier: Tier) -> Result<(), CapacityError> {
        assert!(
            !self.map.contains_key(&page),
            "page {page:?} already placed; use move_page"
        );
        if self.occupancy(tier) >= self.caps.of(tier) {
            return Err(CapacityError { tier });
        }
        self.map.insert(page, tier);
        *self.occupancy.entry(tier).or_insert(0) += 1;
        Ok(())
    }

    /// Moves a placed page to another tier, counting one migration.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the destination is full.
    ///
    /// # Panics
    ///
    /// Panics if the page was never placed.
    pub fn move_page(&mut self, page: PageId, to: Tier) -> Result<(), CapacityError> {
        let from = self
            .tier_of(page)
            .unwrap_or_else(|| panic!("page {page:?} not placed"));
        if from == to {
            return Ok(());
        }
        if self.occupancy(to) >= self.caps.of(to) {
            return Err(CapacityError { tier: to });
        }
        *self.occupancy.entry(from).or_insert(1) -= 1;
        *self.occupancy.entry(to).or_insert(0) += 1;
        self.map.insert(page, to);
        self.migrations += 1;
        Ok(())
    }

    /// Swaps the tiers of two placed pages (the "Claim & Swap" of
    /// Fig 10(a)) without capacity churn.
    ///
    /// # Panics
    ///
    /// Panics if either page is unplaced.
    pub fn swap(&mut self, a: PageId, b: PageId) {
        let ta = self.tier_of(a).expect("page a not placed");
        let tb = self.tier_of(b).expect("page b not placed");
        if ta == tb {
            return;
        }
        self.map.insert(a, tb);
        self.map.insert(b, ta);
        self.migrations += 2;
    }

    /// Pages currently resident on `tier`.
    pub fn occupancy(&self, tier: Tier) -> u64 {
        self.occupancy.get(&tier).copied().unwrap_or(0)
    }

    /// Total pages placed.
    pub fn placed(&self) -> u64 {
        self.map.len() as u64
    }

    /// Total page migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Capacity description.
    pub fn capacities(&self) -> &TierCapacities {
        &self.caps
    }

    /// Iterates over all placements.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, Tier)> + '_ {
        self.map.iter().map(|(&p, &t)| (p, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> TierCapacities {
        TierCapacities::new(2, 1, 2, 2)
    }

    #[test]
    fn page_id_maps_addresses() {
        assert_eq!(PageId::of_addr(0), PageId(0));
        assert_eq!(PageId::of_addr(4095), PageId(0));
        assert_eq!(PageId::of_addr(4096), PageId(1));
        assert_eq!(PageId(3).base_addr(), 3 * 4096);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut pt = PageTable::new(caps());
        pt.place(PageId(0), Tier::Local).unwrap();
        pt.place(PageId(1), Tier::Local).unwrap();
        assert_eq!(
            pt.place(PageId(2), Tier::Local),
            Err(CapacityError { tier: Tier::Local })
        );
        assert_eq!(pt.occupancy(Tier::Local), 2);
    }

    #[test]
    fn cxl_devices_have_independent_capacity() {
        let mut pt = PageTable::new(caps());
        pt.place(PageId(0), Tier::Cxl(0)).unwrap();
        pt.place(PageId(1), Tier::Cxl(0)).unwrap();
        assert!(pt.place(PageId(2), Tier::Cxl(0)).is_err());
        assert!(pt.place(PageId(2), Tier::Cxl(1)).is_ok());
    }

    #[test]
    fn moves_update_occupancy_and_count() {
        let mut pt = PageTable::new(caps());
        pt.place(PageId(0), Tier::Local).unwrap();
        pt.move_page(PageId(0), Tier::Cxl(1)).unwrap();
        assert_eq!(pt.occupancy(Tier::Local), 0);
        assert_eq!(pt.occupancy(Tier::Cxl(1)), 1);
        assert_eq!(pt.migrations(), 1);
        // A no-op move costs nothing.
        pt.move_page(PageId(0), Tier::Cxl(1)).unwrap();
        assert_eq!(pt.migrations(), 1);
    }

    #[test]
    fn swap_preserves_occupancy() {
        let mut pt = PageTable::new(caps());
        pt.place(PageId(0), Tier::Local).unwrap();
        pt.place(PageId(1), Tier::Cxl(0)).unwrap();
        pt.swap(PageId(0), PageId(1));
        assert_eq!(pt.tier_of(PageId(0)), Some(Tier::Cxl(0)));
        assert_eq!(pt.tier_of(PageId(1)), Some(Tier::Local));
        assert_eq!(pt.occupancy(Tier::Local), 1);
        assert_eq!(pt.occupancy(Tier::Cxl(0)), 1);
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_place_panics() {
        let mut pt = PageTable::new(caps());
        pt.place(PageId(0), Tier::Local).unwrap();
        let _ = pt.place(PageId(0), Tier::Remote);
    }

    #[test]
    fn totals_add_up() {
        let c = caps();
        assert_eq!(c.total(), 2 + 1 + 2 * 2);
        assert_eq!(c.of(Tier::Cxl(7)), 2);
    }
}
