//! Access-frequency tracking and global hot/cold classification (§IV-B2).
//!
//! Each host tracks per-page access frequency. Merging the per-host
//! heatmaps yields a *global* temperature, from which the hottest pages
//! are claimed into each host's Private Hot Region (local DRAM) and the
//! rest form the Public Cold Region shared over CXL. A page already
//! claimed by one host is skipped by others, which claim their next
//! hottest candidate instead.

use simkit::hash::FastMap;

use crate::table::PageId;

/// The ranking order shared by every hotness query: hottest first,
/// page-id ascending on ties — a total order (ids are unique).
fn hotter_first(a: &(PageId, u64), b: &(PageId, u64)) -> std::cmp::Ordering {
    b.1.cmp(&a.1).then(a.0.cmp(&b.0))
}

/// Per-host page-access frequency tracker.
///
/// # Examples
///
/// ```
/// use pagemgmt::{HotnessTracker, PageId};
///
/// let mut t = HotnessTracker::new();
/// t.record(PageId(1));
/// t.record(PageId(1));
/// t.record(PageId(2));
/// assert_eq!(t.count(PageId(1)), 2);
/// assert_eq!(t.hottest(1), vec![PageId(1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HotnessTracker {
    counts: FastMap<PageId, u64>,
}

impl HotnessTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access to `page`.
    pub fn record(&mut self, page: PageId) {
        *self.counts.entry(page).or_insert(0) += 1;
    }

    /// Access count of `page` this epoch.
    pub fn count(&self, page: PageId) -> u64 {
        self.counts.get(&page).copied().unwrap_or(0)
    }

    /// The `k` most-accessed pages, hottest first (ties broken by page id
    /// for determinism).
    ///
    /// `(count, id)` is a total order, so partitioning the top `k` with a
    /// quickselect before sorting only that prefix returns exactly what
    /// a full sort followed by `take(k)` would — at O(n + k log k)
    /// instead of O(n log n), which matters because the page manager
    /// calls this on every epoch boundary.
    pub fn hottest(&self, k: usize) -> Vec<PageId> {
        if k == 0 {
            return Vec::new();
        }
        let mut v = self.ranked_entries();
        if k < v.len() {
            v.select_nth_unstable_by(k, hotter_first);
            v.truncate(k);
        }
        v.sort_unstable_by(hotter_first);
        v.into_iter().map(|(p, _)| p).collect()
    }

    /// All `(page, count)` entries, unordered — the input both ranking
    /// entry points ([`Self::hottest`], [`Self::hottest_floor`]) feed
    /// through [`hotter_first`], so the two stay ordering-consistent by
    /// construction.
    fn ranked_entries(&self) -> Vec<(PageId, u64)> {
        self.counts.iter().map(|(&p, &c)| (p, c)).collect()
    }

    /// Access count of the `k`-th hottest page (the coldest page
    /// [`Self::hottest`]`(k)` would return), or 0 when nothing is
    /// tracked. Exactly `hottest(k).last()`'s count — the demotion
    /// cutoff — but via a quickselect alone, skipping the top-`k` sort
    /// a full ranking pays.
    pub fn hottest_floor(&self, k: usize) -> u64 {
        if k == 0 || self.counts.is_empty() {
            return 0;
        }
        let mut v = self.ranked_entries();
        if k < v.len() {
            let (_, kth, _) = v.select_nth_unstable_by(k - 1, hotter_first);
            kth.1
        } else {
            // Fewer pages than k: the floor is the coldest tracked page.
            v.iter()
                .min_by(|a, b| hotter_first(b, a))
                .expect("non-empty")
                .1
        }
    }

    /// Exponentially decays all counts (epoch boundary), dropping pages
    /// that reach zero.
    pub fn decay(&mut self) {
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
    }

    /// Number of distinct pages seen.
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(page, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, u64)> + '_ {
        self.counts.iter().map(|(&p, &c)| (p, c))
    }
}

/// Classification of one page after global hotness detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageClass {
    /// Claimed into host `h`'s Private Hot Region (local DRAM).
    PrivateHot(u16),
    /// Lives in the shared Public Cold Region (CXL pool).
    PublicCold,
}

/// Merges per-host heatmaps and produces the private/public split.
#[derive(Debug, Clone, Default)]
pub struct GlobalHotness {
    hosts: Vec<HotnessTracker>,
}

impl GlobalHotness {
    /// Creates a detector for `n_hosts` hosts.
    pub fn new(n_hosts: usize) -> Self {
        GlobalHotness {
            hosts: (0..n_hosts).map(|_| HotnessTracker::new()).collect(),
        }
    }

    /// The tracker of host `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn host_mut(&mut self, h: usize) -> &mut HotnessTracker {
        &mut self.hosts[h]
    }

    /// Read-only view of host `h`'s tracker.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn host(&self, h: usize) -> &HotnessTracker {
        &self.hosts[h]
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Claims up to `hot_capacity` pages per host into Private Hot
    /// Regions, hottest-first by each host's own heatmap; pages already
    /// claimed by an earlier host are skipped and the host claims its
    /// next candidate ("if a host identifies a page already designated as
    /// a private hot page by another host, it selects its next most
    /// frequently accessed page").
    pub fn classify(&self, hot_capacity: usize) -> FastMap<PageId, PageClass> {
        let mut out: FastMap<PageId, PageClass> = FastMap::default();
        for (h, tracker) in self.hosts.iter().enumerate() {
            let mut claimed = 0;
            // The claim loop consumes at most `hot_capacity` fresh pages
            // plus one skip per page an earlier host already claimed, so
            // ranking that many candidates is exactly equivalent to
            // ranking the host's whole heatmap.
            for page in tracker.hottest(hot_capacity + out.len()) {
                if claimed >= hot_capacity {
                    break;
                }
                if out.contains_key(&page) {
                    continue; // another host got here first
                }
                out.insert(page, PageClass::PrivateHot(h as u16));
                claimed += 1;
            }
        }
        // Everything observed but unclaimed is public cold.
        for tracker in &self.hosts {
            for (page, _) in tracker.iter() {
                out.entry(page).or_insert(PageClass::PublicCold);
            }
        }
        out
    }

    /// Cold-age reclassification (§IV-B2): returns the private-hot pages
    /// of `current` whose access frequency has dropped more than
    /// `cold_age_threshold` (e.g. 0.2) below the least-accessed page that
    /// *would* be claimed now. Those pages should be demoted to the
    /// Public Cold Region.
    pub fn demotions(
        &self,
        current: &FastMap<PageId, PageClass>,
        hot_capacity: usize,
        cold_age_threshold: f64,
    ) -> Vec<PageId> {
        let mut demote = Vec::new();
        for (h, tracker) in self.hosts.iter().enumerate() {
            let floor = tracker.hottest_floor(hot_capacity);
            let cutoff = (floor as f64 * (1.0 - cold_age_threshold)).floor() as u64;
            for (&page, &class) in current.iter() {
                if class == PageClass::PrivateHot(h as u16) && tracker.count(page) < cutoff {
                    demote.push(page);
                }
            }
        }
        demote.sort_unstable();
        demote
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_n(t: &mut HotnessTracker, page: u64, n: u64) {
        for _ in 0..n {
            t.record(PageId(page));
        }
    }

    #[test]
    fn hottest_orders_by_frequency_then_id() {
        let mut t = HotnessTracker::new();
        record_n(&mut t, 1, 5);
        record_n(&mut t, 2, 5);
        record_n(&mut t, 3, 9);
        assert_eq!(t.hottest(3), vec![PageId(3), PageId(1), PageId(2)]);
    }

    #[test]
    fn decay_halves_and_prunes() {
        let mut t = HotnessTracker::new();
        record_n(&mut t, 1, 4);
        record_n(&mut t, 2, 1);
        t.decay();
        assert_eq!(t.count(PageId(1)), 2);
        assert_eq!(t.count(PageId(2)), 0);
        assert_eq!(t.tracked(), 1);
    }

    #[test]
    fn classify_gives_first_host_priority_and_second_its_next_pick() {
        let mut g = GlobalHotness::new(2);
        // Both hosts love page 10; host 1 also likes page 20.
        record_n(g.host_mut(0), 10, 9);
        record_n(g.host_mut(1), 10, 8);
        record_n(g.host_mut(1), 20, 5);
        let classes = g.classify(1);
        assert_eq!(classes[&PageId(10)], PageClass::PrivateHot(0));
        assert_eq!(classes[&PageId(20)], PageClass::PrivateHot(1));
    }

    #[test]
    fn unclaimed_pages_are_public_cold() {
        let mut g = GlobalHotness::new(1);
        record_n(g.host_mut(0), 1, 9);
        record_n(g.host_mut(0), 2, 1);
        let classes = g.classify(1);
        assert_eq!(classes[&PageId(1)], PageClass::PrivateHot(0));
        assert_eq!(classes[&PageId(2)], PageClass::PublicCold);
    }

    #[test]
    fn demotions_fire_below_the_cold_age_cutoff() {
        let mut g = GlobalHotness::new(1);
        record_n(g.host_mut(0), 1, 100);
        record_n(g.host_mut(0), 2, 100);
        let current = g.classify(2);
        // Page 2 cools off dramatically relative to the new floor.
        record_n(g.host_mut(0), 1, 100);
        record_n(g.host_mut(0), 3, 150);
        let demote = g.demotions(&current, 2, 0.2);
        assert_eq!(demote, vec![PageId(2)]);
    }

    #[test]
    fn no_demotions_when_everything_stays_hot() {
        let mut g = GlobalHotness::new(1);
        record_n(g.host_mut(0), 1, 50);
        record_n(g.host_mut(0), 2, 50);
        let current = g.classify(2);
        assert!(g.demotions(&current, 2, 0.2).is_empty());
    }
}
