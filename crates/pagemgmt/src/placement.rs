//! Static initial-placement policies from the characterization study.
//!
//! Fig 5 compares: everything local, a fraction on a remote socket,
//! a fraction on CXL, and software interleaving (the empirically best
//! 4:1 local:CXL split — "when we allocate 20% of the total working set
//! size to CXL memory and the remaining 80% to local DRAM … we get a
//! significant performance improvement").

use serde::{Deserialize, Serialize};

use crate::table::{PageId, PageTable, Tier};

/// How pages are laid out before any dynamic management runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitialPlacement {
    /// Everything in local DRAM (the Fig 5 baseline).
    AllLocal,
    /// Everything on CXL devices, round-robin (BEACON's placement).
    AllCxl,
    /// Everything on CXL devices in contiguous blocks (device 0 gets the
    /// first pages, device 1 the next…). Concentrates whatever spatial
    /// hotspot the workload has onto few devices — the Fig 10(b)/13(b)
    /// "worst case" the spreading strategy repairs.
    AllCxlBlocked {
        /// Total pages that will be placed (needed to size the blocks).
        total_pages: u64,
    },
    /// `remote_frac` of pages on the remote socket, rest local.
    RemoteFraction {
        /// Fraction (0–1) of the working set on the remote socket.
        remote_frac: f64,
    },
    /// `cxl_frac` of pages on CXL (round-robin over devices), rest local.
    /// `cxl_frac = 0.2` is the paper's 4:1 interleave.
    CxlFraction {
        /// Fraction (0–1) of the working set on CXL.
        cxl_frac: f64,
    },
}

impl InitialPlacement {
    /// Places pages `0..n_pages`, spilling to CXL round-robin whenever the
    /// preferred tier is full (mirrors the paper's "memory addresses
    /// exceeding [local capacity] will be mapped into CXL regions").
    ///
    /// # Panics
    ///
    /// Panics if a fraction is outside `[0, 1]`, if a policy needs CXL
    /// devices and none exist, or if total capacity is insufficient.
    pub fn apply(self, pt: &mut PageTable, n_pages: u64) {
        let n_cxl = pt.capacities().n_cxl;
        let pick = |i: u64| -> Tier {
            match self {
                InitialPlacement::AllLocal => Tier::Local,
                InitialPlacement::AllCxl => {
                    assert!(n_cxl > 0, "AllCxl placement requires CXL devices");
                    Tier::Cxl((i % n_cxl as u64) as u16)
                }
                InitialPlacement::AllCxlBlocked { total_pages } => {
                    assert!(n_cxl > 0, "AllCxlBlocked placement requires CXL devices");
                    let block = total_pages.max(1).div_ceil(n_cxl as u64);
                    Tier::Cxl(((i / block).min(n_cxl as u64 - 1)) as u16)
                }
                InitialPlacement::RemoteFraction { remote_frac } => {
                    assert!((0.0..=1.0).contains(&remote_frac), "fraction out of range");
                    // Interleave so the remote share is spread through the
                    // address space rather than clustered at the end.
                    if frac_hit(i, remote_frac) {
                        Tier::Remote
                    } else {
                        Tier::Local
                    }
                }
                InitialPlacement::CxlFraction { cxl_frac } => {
                    assert!((0.0..=1.0).contains(&cxl_frac), "fraction out of range");
                    assert!(n_cxl > 0, "CxlFraction placement requires CXL devices");
                    if frac_hit(i, cxl_frac) {
                        Tier::Cxl((i % n_cxl as u64) as u16)
                    } else {
                        Tier::Local
                    }
                }
            }
        };
        let mut spill = 0u64;
        for i in 0..n_pages {
            let page = PageId(i);
            let preferred = pick(i);
            if pt.place(page, preferred).is_ok() {
                continue;
            }
            // Preferred tier full: spill to CXL devices round-robin, then
            // remote, then local.
            let mut placed = false;
            for k in 0..n_cxl as u64 {
                let t = Tier::Cxl(((spill + k) % n_cxl as u64) as u16);
                if pt.place(page, t).is_ok() {
                    spill += 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                let fallbacks = [Tier::Remote, Tier::Local];
                let ok = fallbacks.iter().any(|&t| pt.place(page, t).is_ok());
                assert!(ok, "total memory capacity insufficient for {n_pages} pages");
            }
        }
    }
}

/// Deterministically marks ~`frac` of indices, spread evenly (index `i`
/// hits when the fractional accumulator crosses 1).
fn frac_hit(i: u64, frac: f64) -> bool {
    if frac <= 0.0 {
        return false;
    }
    if frac >= 1.0 {
        return true;
    }
    // i-th hit when floor((i+1)·f) > floor(i·f).
    (((i + 1) as f64 * frac) as u64) > ((i as f64 * frac) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TierCapacities;

    fn table(local: u64, remote: u64, n_cxl: u16, per_dev: u64) -> PageTable {
        PageTable::new(TierCapacities::new(local, remote, n_cxl, per_dev))
    }

    #[test]
    fn all_local_fills_local() {
        let mut pt = table(100, 0, 2, 10);
        InitialPlacement::AllLocal.apply(&mut pt, 50);
        assert_eq!(pt.occupancy(Tier::Local), 50);
    }

    #[test]
    fn blocked_placement_fills_devices_in_order() {
        let mut pt = table(0, 0, 4, 100);
        InitialPlacement::AllCxlBlocked { total_pages: 40 }.apply(&mut pt, 40);
        for d in 0..4 {
            assert_eq!(pt.occupancy(Tier::Cxl(d)), 10, "device {d}");
        }
        // First block entirely on device 0.
        assert_eq!(pt.tier_of(PageId(0)), Some(Tier::Cxl(0)));
        assert_eq!(pt.tier_of(PageId(9)), Some(Tier::Cxl(0)));
        assert_eq!(pt.tier_of(PageId(10)), Some(Tier::Cxl(1)));
    }

    #[test]
    fn all_cxl_round_robins_devices() {
        let mut pt = table(0, 0, 4, 100);
        InitialPlacement::AllCxl.apply(&mut pt, 40);
        for d in 0..4 {
            assert_eq!(pt.occupancy(Tier::Cxl(d)), 10);
        }
    }

    #[test]
    fn cxl_fraction_splits_4_to_1() {
        let mut pt = table(1000, 0, 2, 1000);
        InitialPlacement::CxlFraction { cxl_frac: 0.2 }.apply(&mut pt, 100);
        assert_eq!(pt.occupancy(Tier::Local), 80);
        assert_eq!(pt.occupancy(Tier::Cxl(0)) + pt.occupancy(Tier::Cxl(1)), 20);
    }

    #[test]
    fn remote_fraction_spreads_through_address_space() {
        let mut pt = table(1000, 1000, 0, 0);
        InitialPlacement::RemoteFraction { remote_frac: 0.5 }.apply(&mut pt, 10);
        assert_eq!(pt.occupancy(Tier::Remote), 5);
        // Alternating, not clustered: page 1 remote, page 0 local.
        assert_eq!(pt.tier_of(PageId(0)), Some(Tier::Local));
        assert_eq!(pt.tier_of(PageId(1)), Some(Tier::Remote));
    }

    #[test]
    fn local_overflow_spills_to_cxl() {
        let mut pt = table(10, 0, 2, 100);
        InitialPlacement::AllLocal.apply(&mut pt, 30);
        assert_eq!(pt.occupancy(Tier::Local), 10);
        assert_eq!(pt.occupancy(Tier::Cxl(0)) + pt.occupancy(Tier::Cxl(1)), 20);
    }

    #[test]
    #[should_panic(expected = "insufficient")]
    fn impossible_placement_panics() {
        let mut pt = table(1, 0, 0, 0);
        InitialPlacement::AllLocal.apply(&mut pt, 5);
    }
}
