//! Embedding spreading for bandwidth optimization (§IV-B3).
//!
//! When one CXL device absorbs a disproportionate share of accesses
//! (Fig 10(b)'s "worst case"), total bandwidth collapses to that one
//! device's link. The adaptive page-migration strategy redistributes hot
//! pages from over-burdened devices to under-used ones until access
//! frequency balances, raising aggregate I/O parallelism — the effect
//! quantified in Fig 13(a)/(b).

use serde::{Deserialize, Serialize};

use crate::table::PageId;

/// Tuning for the spreading strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpreadConfig {
    /// A device rebalances when its access count exceeds the average of
    /// the others by this fraction. The paper's default is 35 %
    /// ("exceeds the average access count for other nodes by
    /// '1 − migrate threshold' (by default, 35 %)").
    pub migrate_threshold: f64,
    /// Safety cap on rebalancing iterations.
    pub max_rounds: usize,
}

impl Default for SpreadConfig {
    fn default() -> Self {
        SpreadConfig {
            migrate_threshold: 0.35,
            max_rounds: 64,
        }
    }
}

/// One page move produced by the rebalancer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The page to move.
    pub page: PageId,
    /// Source device index.
    pub from: u16,
    /// Destination device index.
    pub to: u16,
}

/// Per-device state fed to the rebalancer: resident pages with their
/// access counts, plus the device's page capacity.
#[derive(Debug, Clone)]
pub struct DeviceLoad {
    /// Resident pages and their access counts.
    pub pages: Vec<(PageId, u64)>,
    /// Device capacity in pages.
    pub capacity: u64,
}

impl DeviceLoad {
    fn total(&self) -> u64 {
        self.pages.iter().map(|&(_, c)| c).sum()
    }
}

/// Rebalances access load across CXL devices.
///
/// Repeatedly finds the most over-burdened device (per the migrate
/// threshold), moves its hottest page to the least-accessed device, and —
/// if the destination is at capacity — swaps that device's coldest page
/// back (§IV-B3's two-way move). Stops when balanced or after
/// `cfg.max_rounds`.
///
/// Returns the migrations in execution order; `devices` is updated in
/// place so callers can inspect the final distribution.
pub fn rebalance(devices: &mut [DeviceLoad], cfg: &SpreadConfig) -> Vec<Migration> {
    let mut moves = Vec::new();
    if devices.len() < 2 {
        return moves;
    }
    for _ in 0..cfg.max_rounds {
        let totals: Vec<u64> = devices.iter().map(DeviceLoad::total).collect();
        let n = totals.len();
        // Hottest device and the average of the *other* devices.
        let (hot_idx, &hot_total) = totals
            .iter()
            .enumerate()
            .max_by_key(|&(i, &t)| (t, usize::MAX - i))
            .expect("at least two devices");
        let others_avg: f64 = (totals.iter().sum::<u64>() - hot_total) as f64 / (n as f64 - 1.0);
        if (hot_total as f64) <= others_avg * (1.0 + cfg.migrate_threshold) || hot_total == 0 {
            break; // balanced enough
        }
        let (cold_idx, &cold_total) = totals
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != hot_idx)
            .min_by_key(|&(i, &t)| (t, i))
            .expect("at least two devices");

        // Pick the page whose count best matches the ideal transfer
        // (half the hot/cold gap): moving the raw hottest page can
        // overshoot and oscillate, which the paper's "most accessed
        // pages" heuristic implicitly avoids by moving several smaller
        // pages.
        let gap = hot_total - cold_total;
        let ideal = gap / 2;
        let Some(page_pos) = best_transfer(&devices[hot_idx].pages, ideal, gap) else {
            break;
        };
        let (page, count) = devices[hot_idx].pages.remove(page_pos);
        moves.push(Migration {
            page,
            from: hot_idx as u16,
            to: cold_idx as u16,
        });

        // Destination full? Swap its coldest page back (the paper: "we
        // also move the coldest page of that device to the overburdened
        // memory node").
        if devices[cold_idx].pages.len() as u64 >= devices[cold_idx].capacity {
            if let Some(cold_page_pos) = argmin_count(&devices[cold_idx].pages) {
                let (cold_page, cold_count) = devices[cold_idx].pages.remove(cold_page_pos);
                moves.push(Migration {
                    page: cold_page,
                    from: cold_idx as u16,
                    to: hot_idx as u16,
                });
                devices[hot_idx].pages.push((cold_page, cold_count));
            }
        }
        devices[cold_idx].pages.push((page, count));
    }
    moves
}

/// Index of the page whose count is closest to `ideal` without making the
/// imbalance worse (count must stay below `gap`). Falls back to the
/// coldest page if every page overshoots.
fn best_transfer(pages: &[(PageId, u64)], ideal: u64, gap: u64) -> Option<usize> {
    let viable = pages
        .iter()
        .enumerate()
        .filter(|&(_, &(_, c))| c > 0 && c < gap)
        .min_by_key(|&(i, &(p, c))| (c.abs_diff(ideal), p, i))
        .map(|(i, _)| i);
    viable.or_else(|| argmin_count(pages).filter(|&i| pages[i].1 > 0 && pages[i].1 < gap))
}

fn argmin_count(pages: &[(PageId, u64)]) -> Option<usize> {
    pages
        .iter()
        .enumerate()
        .min_by_key(|&(_, &(p, c))| (c, p))
        .map(|(i, _)| i)
}

/// Population standard deviation of the devices' access totals — the
/// Fig 13(b) balance metric (paper: 20.6 before PM, 7.8 after).
pub fn access_std_dev(devices: &[DeviceLoad]) -> f64 {
    let totals: Vec<f64> = devices.iter().map(|d| d.total() as f64).collect();
    simkit::Summary::of(&totals).std_dev
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(counts: &[u64], capacity: u64) -> DeviceLoad {
        DeviceLoad {
            pages: counts
                .iter()
                .enumerate()
                .map(|(i, &c)| (PageId(i as u64), c))
                .collect(),
            capacity,
        }
    }

    #[test]
    fn balanced_input_produces_no_moves() {
        let mut devs = vec![dev(&[10, 10], 10), dev(&[10, 10], 10)];
        let moves = rebalance(&mut devs, &SpreadConfig::default());
        assert!(moves.is_empty());
    }

    #[test]
    fn skewed_device_sheds_hot_pages() {
        let mut devs = vec![dev(&[100, 90, 5], 10), dev(&[1, 1], 10)];
        let before = access_std_dev(&devs);
        let moves = rebalance(&mut devs, &SpreadConfig::default());
        assert!(!moves.is_empty());
        assert!(moves.iter().all(|m| m.from == 0 && m.to == 1));
        let after = access_std_dev(&devs);
        assert!(after < before, "std dev must shrink: {before} -> {after}");
    }

    #[test]
    fn full_destination_triggers_a_swap_back() {
        // Device 1 is full (capacity 2) and cold.
        let mut devs = vec![dev(&[100, 90], 10), dev(&[1, 1], 2)];
        let moves = rebalance(&mut devs, &SpreadConfig::default());
        // Some move must flow back from device 1 to device 0.
        assert!(moves.iter().any(|m| m.from == 1 && m.to == 0), "{moves:?}");
        // Occupancy respects capacity.
        assert!(devs[1].pages.len() as u64 <= 2);
    }

    #[test]
    fn rounds_are_bounded() {
        let mut devs = vec![dev(&[1000; 32], 64), dev(&[], 64)];
        let cfg = SpreadConfig {
            migrate_threshold: 0.0,
            max_rounds: 5,
        };
        let moves = rebalance(&mut devs, &cfg);
        assert!(moves.len() <= 10, "bounded by max_rounds (plus swaps)");
    }

    #[test]
    fn single_device_is_a_no_op() {
        let mut devs = vec![dev(&[5, 5], 10)];
        assert!(rebalance(&mut devs, &SpreadConfig::default()).is_empty());
    }

    #[test]
    fn multi_device_balance_converges_toward_uniform() {
        // One hot device among 4.
        let mut devs = vec![
            dev(&[50, 40, 30, 20, 10], 32),
            dev(&[2], 32),
            dev(&[2], 32),
            dev(&[2], 32),
        ];
        rebalance(&mut devs, &SpreadConfig::default());
        let totals: Vec<u64> = devs.iter().map(DeviceLoad::total).collect();
        let max = *totals.iter().max().unwrap() as f64;
        let avg = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
        assert!(max <= avg * 1.6, "totals={totals:?}");
    }
}
