//! Migration cost model: page-block vs cache-line-block (§IV-B4).
//!
//! OS page migration marks the whole 4 KB page inaccessible for the full
//! copy ("page block"), stalling every row vector on the page. PIFS-Rec's
//! Migration Controller instead locks one cache line at a time, parking
//! in-flight lines in the switch ("cache-line block"), cutting observed
//! migration overhead by up to 5.1×.

use serde::{Deserialize, Serialize};
use simkit::SimDuration;

use crate::table::PAGE_BYTES;

/// Which blocking discipline a migration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationGranularity {
    /// Standard OS behaviour: the whole page is unmapped for the copy.
    PageBlock,
    /// PIFS-Rec Migration Controller: one 64 B line locked at a time.
    CacheLineBlock,
}

/// Cost parameters for one page migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCostModel {
    /// Blocking discipline.
    pub granularity: MigrationGranularity,
    /// Fixed OS bookkeeping per page migration (unmap, TLB shootdown,
    /// remap), ns.
    pub os_overhead_ns: u64,
    /// Copy bandwidth over the fabric, bytes per ns (≈ GB/s).
    pub copy_bytes_per_ns: u64,
    /// Per-line handoff overhead in the switch for cache-line mode, ns.
    pub line_overhead_ns: u64,
}

impl MigrationCostModel {
    /// Page-block defaults: ~1 µs of kernel work (unmap + TLB shootdown)
    /// plus a 4 KB copy.
    pub fn page_block() -> Self {
        MigrationCostModel {
            granularity: MigrationGranularity::PageBlock,
            os_overhead_ns: 1_000,
            copy_bytes_per_ns: 32,
            line_overhead_ns: 0,
        }
    }

    /// Cache-line-block defaults: P2P copy brokered by the Migration
    /// Controller with a per-line handoff in the switch. The copy itself
    /// overlaps foreground service, so only the final remap update (the
    /// `os_overhead_ns` here) lands on the critical path.
    pub fn cache_line_block() -> Self {
        MigrationCostModel {
            granularity: MigrationGranularity::CacheLineBlock,
            os_overhead_ns: 10,
            copy_bytes_per_ns: 32,
            line_overhead_ns: 14,
        }
    }

    /// Total wall time to migrate one page.
    pub fn page_copy_time(&self) -> SimDuration {
        let copy_ns = PAGE_BYTES.div_ceil(self.copy_bytes_per_ns);
        let per_line = match self.granularity {
            MigrationGranularity::PageBlock => 0,
            MigrationGranularity::CacheLineBlock => (PAGE_BYTES / 64) * self.line_overhead_ns,
        };
        SimDuration::from_ns(self.os_overhead_ns + copy_ns + per_line)
    }

    /// How long one *in-flight access* to the migrating page stalls, on
    /// average. Under page block every access waits out the remaining
    /// page copy (expected half of it); under cache-line block an access
    /// only collides with the single locked line (1/64 of the page) and
    /// waits the per-line window.
    pub fn expected_access_stall(&self) -> SimDuration {
        match self.granularity {
            MigrationGranularity::PageBlock => {
                SimDuration::from_ns(self.page_copy_time().as_ns() / 2)
            }
            MigrationGranularity::CacheLineBlock => {
                let line_window = 64u64.div_ceil(self.copy_bytes_per_ns) + self.line_overhead_ns;
                // Collision probability 1/64 × expected half-window,
                // floored at 1 ns.
                SimDuration::from_ns(((line_window / 2) / 64).max(1))
            }
        }
    }

    /// Total overhead charged for migrating `pages` pages while
    /// `concurrent_accesses` lookups hit those pages mid-flight.
    pub fn total_overhead(&self, pages: u64, concurrent_accesses: u64) -> SimDuration {
        let stall = self.expected_access_stall().as_ns() * concurrent_accesses;
        let fixed = match self.granularity {
            // Page-block migrations serialize through the kernel path.
            MigrationGranularity::PageBlock => self.page_copy_time().as_ns() * pages,
            // Cache-line migrations overlap with service; only the remap
            // bookkeeping is exposed.
            MigrationGranularity::CacheLineBlock => self.os_overhead_ns * pages,
        };
        SimDuration::from_ns(fixed + stall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_line_block_is_much_cheaper_per_page() {
        let pb = MigrationCostModel::page_block();
        let clb = MigrationCostModel::cache_line_block();
        let pages = 100;
        let accesses = 1000;
        let ratio = pb.total_overhead(pages, accesses).as_ns() as f64
            / clb.total_overhead(pages, accesses).as_ns() as f64;
        // §IV-B4 reports "up to 5.1×" at the *system* level, where
        // page-block cost saturates against useful work; the raw per-page
        // gap here is necessarily larger (Fig 13(a) reproduces the 5.1×).
        assert!(ratio > 5.0, "ratio={ratio}");
    }

    #[test]
    fn page_block_stall_is_half_the_copy() {
        let pb = MigrationCostModel::page_block();
        assert_eq!(
            pb.expected_access_stall().as_ns(),
            pb.page_copy_time().as_ns() / 2
        );
    }

    #[test]
    fn cache_line_stall_is_tiny() {
        let clb = MigrationCostModel::cache_line_block();
        assert!(clb.expected_access_stall().as_ns() <= 4);
    }

    #[test]
    fn overhead_scales_with_pages_and_accesses() {
        let pb = MigrationCostModel::page_block();
        assert!(pb.total_overhead(10, 0) < pb.total_overhead(20, 0));
        assert!(pb.total_overhead(10, 0) < pb.total_overhead(10, 100));
    }

    #[test]
    fn copy_time_includes_os_overhead() {
        let pb = MigrationCostModel::page_block();
        assert!(pb.page_copy_time().as_ns() > pb.os_overhead_ns);
    }
}
