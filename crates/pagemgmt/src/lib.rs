//! `pagemgmt` — tiered-memory page management (§IV-B).
//!
//! The characterization study's second takeaway is that CXL memory only
//! pays off with deliberate placement: hot pages in local DRAM, cold
//! pages spread across CXL devices, and cheap migration between them.
//! This crate implements that software layer as pure, deterministic
//! policy logic (the timing costs are charged by the system runners in
//! `pifs-core`):
//!
//! * [`PageTable`] / [`Tier`] — 4 KB page placement with per-tier
//!   capacity accounting (§IV-B1's page-granular management);
//! * [`HotnessTracker`] / [`GlobalHotness`] — access-frequency heatmaps
//!   and the Private-Hot/Public-Cold split with cold-age
//!   reclassification (§IV-B2);
//! * [`spread`] — the embedding-spreading migration strategy that
//!   rebalances device load at the migrate threshold (§IV-B3);
//! * [`MigrationCostModel`] — page-block vs cache-line-block migration
//!   overheads (§IV-B4);
//! * [`TppPolicy`] — the TPP baseline (promotion-on-reuse tiering) the
//!   paper compares against in Fig 13(d);
//! * [`InitialPlacement`] — the static interleave policies of the
//!   characterization study (all-local, all-CXL, remote-socket, 4:1).
//!
//! # Examples
//!
//! ```
//! use pagemgmt::{InitialPlacement, PageTable, Tier, TierCapacities};
//!
//! let caps = TierCapacities::new(100, 0, 4, 1000);
//! let mut pt = PageTable::new(caps);
//! InitialPlacement::CxlFraction { cxl_frac: 0.2 }.apply(&mut pt, 50);
//! assert_eq!(pt.occupancy(Tier::Local), 40);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod hotness;
pub mod placement;
pub mod spread;
pub mod table;
pub mod tpp;

pub use cost::{MigrationCostModel, MigrationGranularity};
pub use hotness::{GlobalHotness, HotnessTracker, PageClass};
pub use placement::InitialPlacement;
pub use spread::{access_std_dev, rebalance, DeviceLoad, Migration, SpreadConfig};
pub use table::{PageId, PageTable, Tier, TierCapacities, PAGE_BYTES};
pub use tpp::TppPolicy;
