//! A TPP-style tiering baseline (Fig 13(d)'s comparison point).
//!
//! TPP (Transparent Page Placement, ASPLOS'23) promotes CXL pages into
//! local DRAM when they are re-referenced within a sampling window and
//! demotes cold local pages under memory pressure. It has no global
//! cross-host view and no device-spreading — exactly the gap PIFS-Rec's
//! page management closes, which is why Fig 13(d) shows the cold-age
//! policy beating it by ~12 %.

use simkit::hash::FastMap;

use crate::table::{PageId, PageTable, Tier};

/// A minimal TPP-like promotion/demotion policy.
///
/// # Examples
///
/// ```
/// use pagemgmt::{PageId, PageTable, Tier, TierCapacities, TppPolicy};
///
/// let mut pt = PageTable::new(TierCapacities::new(1, 0, 1, 8));
/// pt.place(PageId(0), Tier::Cxl(0)).unwrap();
/// let mut tpp = TppPolicy::new(2);
/// tpp.on_access(PageId(0), &mut pt); // first touch: sampled
/// tpp.on_access(PageId(0), &mut pt); // re-reference: promoted
/// assert_eq!(pt.tier_of(PageId(0)), Some(Tier::Local));
/// ```
#[derive(Debug, Clone)]
pub struct TppPolicy {
    /// Accesses within the window required to promote.
    promote_threshold: u64,
    /// Access counts within the current sampling window.
    window_counts: FastMap<PageId, u64>,
    /// LRU approximation for demotion: last-touch sequence numbers of
    /// local pages.
    last_touch: FastMap<PageId, u64>,
    seq: u64,
    promotions: u64,
    demotions: u64,
}

impl TppPolicy {
    /// Creates a policy that promotes after `promote_threshold` touches
    /// in one window.
    ///
    /// # Panics
    ///
    /// Panics if `promote_threshold` is zero.
    pub fn new(promote_threshold: u64) -> Self {
        assert!(promote_threshold > 0, "threshold must be positive");
        TppPolicy {
            promote_threshold,
            window_counts: FastMap::default(),
            last_touch: FastMap::default(),
            seq: 0,
            promotions: 0,
            demotions: 0,
        }
    }

    /// Observes one access, possibly promoting the page (demoting a
    /// victim if local DRAM is full).
    pub fn on_access(&mut self, page: PageId, pt: &mut PageTable) {
        self.seq += 1;
        match pt.tier_of(page) {
            Some(Tier::Local) => {
                self.last_touch.insert(page, self.seq);
            }
            Some(Tier::Cxl(_)) | Some(Tier::Remote) => {
                let c = self.window_counts.entry(page).or_insert(0);
                *c += 1;
                if *c >= self.promote_threshold {
                    self.window_counts.remove(&page);
                    self.promote(page, pt);
                }
            }
            None => {}
        }
    }

    fn promote(&mut self, page: PageId, pt: &mut PageTable) {
        let from = pt.tier_of(page).expect("page placed");
        if pt.move_page(page, Tier::Local).is_err() {
            // Local full: demote the coldest local page to where the
            // promoted page came from, then retry.
            let victim = self
                .last_touch
                .iter()
                .min_by_key(|&(&p, &s)| (s, p))
                .map(|(&p, _)| p);
            let Some(victim) = victim else { return };
            self.last_touch.remove(&victim);
            if pt.move_page(victim, from).is_err() {
                return; // both tiers full: give up this round
            }
            self.demotions += 1;
            if pt.move_page(page, Tier::Local).is_err() {
                return;
            }
        }
        self.last_touch.insert(page, self.seq);
        self.promotions += 1;
    }

    /// Ends a sampling window, forgetting single-touch pages.
    pub fn end_window(&mut self) {
        self.window_counts.clear();
    }

    /// Promotions performed.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Demotions performed.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TierCapacities;

    fn setup(local: u64) -> PageTable {
        let mut pt = PageTable::new(TierCapacities::new(local, 0, 1, 100));
        for i in 0..10 {
            pt.place(PageId(i), Tier::Cxl(0)).unwrap();
        }
        pt
    }

    #[test]
    fn single_touch_does_not_promote() {
        let mut pt = setup(4);
        let mut tpp = TppPolicy::new(2);
        tpp.on_access(PageId(0), &mut pt);
        assert_eq!(pt.tier_of(PageId(0)), Some(Tier::Cxl(0)));
        assert_eq!(tpp.promotions(), 0);
    }

    #[test]
    fn re_reference_promotes() {
        let mut pt = setup(4);
        let mut tpp = TppPolicy::new(2);
        tpp.on_access(PageId(0), &mut pt);
        tpp.on_access(PageId(0), &mut pt);
        assert_eq!(pt.tier_of(PageId(0)), Some(Tier::Local));
        assert_eq!(tpp.promotions(), 1);
    }

    #[test]
    fn window_reset_forgets_samples() {
        let mut pt = setup(4);
        let mut tpp = TppPolicy::new(2);
        tpp.on_access(PageId(0), &mut pt);
        tpp.end_window();
        tpp.on_access(PageId(0), &mut pt);
        assert_eq!(pt.tier_of(PageId(0)), Some(Tier::Cxl(0)));
    }

    #[test]
    fn pressure_demotes_the_coldest_local_page() {
        let mut pt = setup(2);
        let mut tpp = TppPolicy::new(1);
        // Promote pages 0 and 1, filling local.
        tpp.on_access(PageId(0), &mut pt);
        tpp.on_access(PageId(1), &mut pt);
        assert_eq!(pt.occupancy(Tier::Local), 2);
        // Touch page 1 so page 0 is coldest, then promote page 2.
        tpp.on_access(PageId(1), &mut pt);
        tpp.on_access(PageId(2), &mut pt);
        assert_eq!(pt.tier_of(PageId(2)), Some(Tier::Local));
        assert_eq!(pt.tier_of(PageId(0)), Some(Tier::Cxl(0)));
        assert_eq!(tpp.demotions(), 1);
        assert_eq!(pt.occupancy(Tier::Local), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = TppPolicy::new(0);
    }
}
