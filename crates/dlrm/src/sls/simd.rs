//! Explicit lane-width SLS folds — the SIMD-explicit rewrite of the
//! slice-zip kernel (ROADMAP item 2).
//!
//! The auto-vectorized slice fold left the lane width to the compiler's
//! discretion (and the procedural-hash path entirely scalar). This
//! module makes the width a dispatched, measured choice: the fold is
//! blocked into fixed `[f32; LANES]` accumulator chunks that LLVM lowers
//! to full-width vector multiply/add pairs on stable Rust, with a scalar
//! tail for `dim % LANES` remainders, behind a runtime three-tier
//! dispatcher (8 lanes / 4 lanes / scalar).
//!
//! **Selection rule:** the [`LANES_ENV`] environment variable forces a
//! tier (`scalar`, `4`, or `8`); otherwise the 8-lane tier is selected
//! when the CPU offers 256-bit vectors (x86-64 AVX2, where the 8-lane
//! kernels are additionally compiled with AVX2 codegen via
//! `#[target_feature]`), and the portable 4-lane tier — one 128-bit
//! vector on every SSE2/NEON-class machine — otherwise. The scalar tier
//! is never auto-selected; it exists as the forced fallback the CI
//! smoke test keeps honest.
//!
//! **Determinism:** blocking along `dim` partitions the accumulator
//! into disjoint lane groups; every element still receives exactly the
//! operation `acc[e] += w * v[e]`, in exactly the scalar loop's
//! per-element order. No cross-lane reduction ever happens (an SLS
//! output is a vector, not a scalar), `mul` and `add` stay separately
//! rounded (FMA contraction is never enabled — fusing would change the
//! rounding), so every tier is bit-identical to
//! [`accumulate_row_scalar`](super::accumulate_row_scalar). The
//! proptests in [`super`] assert this across dims 1..256, weighted and
//! unweighted, for every forced tier.

use std::sync::OnceLock;

/// One dispatch tier of the wide SLS fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneWidth {
    /// Plain element loop — the forced fallback, never auto-selected.
    Scalar,
    /// 4-lane blocks: one 128-bit vector (SSE2/NEON baseline).
    W4,
    /// 8-lane blocks: one 256-bit vector on AVX2, two 128-bit ops
    /// elsewhere.
    W8,
}

impl LaneWidth {
    /// Number of f32 lanes folded per block.
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::Scalar => 1,
            LaneWidth::W4 => 4,
            LaneWidth::W8 => 8,
        }
    }

    /// All tiers, narrowest first (test iteration order).
    pub fn all() -> [LaneWidth; 3] {
        [LaneWidth::Scalar, LaneWidth::W4, LaneWidth::W8]
    }
}

/// Environment variable forcing a dispatch tier: `scalar`, `4`, or `8`.
pub const LANES_ENV: &str = "PIFS_SLS_LANES";

/// Parses a [`LANES_ENV`] value.
///
/// # Errors
///
/// Returns the unrecognized value back as the error.
pub fn parse_lane_override(value: &str) -> Result<LaneWidth, String> {
    match value {
        "scalar" | "1" => Ok(LaneWidth::Scalar),
        "4" => Ok(LaneWidth::W4),
        "8" => Ok(LaneWidth::W8),
        other => Err(other.to_string()),
    }
}

/// The cached dispatch decision: the selected tier plus whether the
/// 8-lane kernels may take their AVX2-compiled variants.
struct Dispatch {
    width: LaneWidth,
    avx2: bool,
}

fn dispatch() -> &'static Dispatch {
    static DISPATCH: OnceLock<Dispatch> = OnceLock::new();
    DISPATCH.get_or_init(|| {
        let avx2 = {
            #[cfg(target_arch = "x86_64")]
            {
                std::arch::is_x86_feature_detected!("avx2")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        };
        let width = match std::env::var(LANES_ENV) {
            Ok(v) => parse_lane_override(&v)
                .unwrap_or_else(|bad| panic!("{LANES_ENV} must be scalar|4|8, got {bad:?}")),
            Err(_) => {
                if avx2 {
                    LaneWidth::W8
                } else {
                    LaneWidth::W4
                }
            }
        };
        Dispatch { width, avx2 }
    })
}

/// The tier the runtime dispatcher selected for this process (cached on
/// first use; see the module docs for the selection rule).
pub fn dispatched_width() -> LaneWidth {
    dispatch().width
}

/// Whether batched kernels should take their AVX2-compiled variants:
/// the 8-lane tier is dispatched *and* the CPU supports AVX2 (a forced
/// `PIFS_SLS_LANES=8` on a non-AVX2 machine stays on portable blocks).
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_dispatched() -> bool {
    let d = dispatch();
    d.width == LaneWidth::W8 && d.avx2
}

/// The scalar fold tier: the reference element loop.
#[inline]
fn fold_scalar(acc: &mut [f32], vals: &[f32], w: f32) {
    for (slot, &v) in acc.iter_mut().zip(vals) {
        *slot += w * v;
    }
}

/// The blocked fold: `L`-lane accumulator chunks plus a scalar tail for
/// the `len % L` remainder. Per-element operation and order are exactly
/// [`fold_scalar`]'s — the lanes are disjoint accumulator elements, so
/// no floating-point sum is reassociated (the determinism argument in
/// the module docs).
#[inline(always)]
fn fold_blocked<const L: usize>(acc: &mut [f32], vals: &[f32], w: f32) {
    let n = acc.len().min(vals.len());
    let mut a = acc[..n].chunks_exact_mut(L);
    let mut v = vals[..n].chunks_exact(L);
    for (ab, vb) in (&mut a).zip(&mut v) {
        let ab: &mut [f32; L] = ab.try_into().expect("chunk is exactly L wide");
        let vb: &[f32; L] = vb.try_into().expect("chunk is exactly L wide");
        for i in 0..L {
            ab[i] += w * vb[i];
        }
    }
    for (slot, &x) in a.into_remainder().iter_mut().zip(v.remainder()) {
        *slot += w * x;
    }
}

/// The 8-lane fold compiled with AVX2 codegen, so the `[f32; 8]` blocks
/// lower to single 256-bit `vmulps`/`vaddps` pairs (never FMA —
/// contraction would change the rounding and break bit-identity).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn fold_blocked_w8_avx2(acc: &mut [f32], vals: &[f32], w: f32) {
    fold_blocked::<8>(acc, vals, w);
}

/// Folds `vals` into `acc` with weight `w` on the dispatched tier.
///
/// Bit-identical to the scalar loop on every tier; see the module docs.
///
/// # Panics
///
/// Panics if `acc.len() != vals.len()`.
#[inline]
pub fn fold_slice(acc: &mut [f32], vals: &[f32], w: f32) {
    assert_eq!(acc.len(), vals.len(), "fold width mismatch");
    let d = dispatch();
    match d.width {
        LaneWidth::Scalar => fold_scalar(acc, vals, w),
        LaneWidth::W4 => fold_blocked::<4>(acc, vals, w),
        LaneWidth::W8 => {
            #[cfg(target_arch = "x86_64")]
            if d.avx2 {
                // SAFETY: `d.avx2` is `is_x86_feature_detected!("avx2")`,
                // cached at dispatch initialization.
                unsafe {
                    fold_blocked_w8_avx2(acc, vals, w);
                }
                return;
            }
            fold_blocked::<8>(acc, vals, w);
        }
    }
}

/// Folds `vals` into `acc` on an explicitly forced tier (portable
/// codegen) — the test and bench hook behind the forced-tier proptests.
///
/// # Panics
///
/// Panics if `acc.len() != vals.len()`.
#[inline]
pub fn fold_slice_forced(acc: &mut [f32], vals: &[f32], w: f32, width: LaneWidth) {
    assert_eq!(acc.len(), vals.len(), "fold width mismatch");
    match width {
        LaneWidth::Scalar => fold_scalar(acc, vals, w),
        LaneWidth::W4 => fold_blocked::<4>(acc, vals, w),
        LaneWidth::W8 => fold_blocked::<8>(acc, vals, w),
    }
}

/// Streams a structure-of-arrays row slab into `acc`: `rows` is a
/// row-major `n × acc.len()` block (a whole bag gathered contiguously),
/// folded row by row in slab order with optional per-row weights. This
/// is the fold the `BagBatch` gather arena feeds — no per-row bounds or
/// branch overhead, just sequential streaming.
///
/// Bit-identical to `n` successive [`fold_slice`] calls (which are
/// themselves bit-identical to the scalar loop).
///
/// # Panics
///
/// Panics if `acc` is empty, `rows.len()` is not a multiple of
/// `acc.len()`, or `weights` (when present) has fewer entries than rows.
pub fn fold_rows_soa(acc: &mut [f32], rows: &[f32], weights: Option<&[f32]>) {
    fold_rows_soa_impl(acc, rows, weights, None)
}

/// [`fold_rows_soa`] on an explicitly forced tier (test/bench hook).
///
/// # Panics
///
/// As [`fold_rows_soa`].
pub fn fold_rows_soa_forced(
    acc: &mut [f32],
    rows: &[f32],
    weights: Option<&[f32]>,
    width: LaneWidth,
) {
    fold_rows_soa_impl(acc, rows, weights, Some(width))
}

#[inline]
fn fold_rows_soa_impl(
    acc: &mut [f32],
    rows: &[f32],
    weights: Option<&[f32]>,
    forced: Option<LaneWidth>,
) {
    let dim = acc.len();
    assert!(dim > 0, "accumulator must be non-empty");
    assert_eq!(
        rows.len() % dim,
        0,
        "row slab must be a whole number of rows"
    );
    if let Some(ws) = weights {
        assert!(ws.len() >= rows.len() / dim, "one weight per row required");
    }
    for (i, row) in rows.chunks_exact(dim).enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        match forced {
            Some(width) => fold_slice_forced(acc, row, w, width),
            None => fold_slice(acc, row, w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, salt: u32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 + salt as f32) * 0.37).sin())
            .collect()
    }

    #[test]
    fn every_tier_matches_scalar_including_tails() {
        // Dims straddling every remainder class of 4 and 8 lanes.
        for dim in [
            1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 128, 255,
        ] {
            let v = vals(dim, 3);
            let mut reference = vals(dim, 9);
            fold_scalar(&mut reference, &v, 1.75);
            for width in [LaneWidth::W4, LaneWidth::W8] {
                let mut acc = vals(dim, 9);
                fold_slice_forced(&mut acc, &v, 1.75, width);
                assert_eq!(acc, reference, "tier {width:?} diverged at dim {dim}");
            }
            let mut acc = vals(dim, 9);
            fold_slice(&mut acc, &v, 1.75);
            assert_eq!(acc, reference, "dispatched tier diverged at dim {dim}");
        }
    }

    #[test]
    fn soa_fold_matches_per_row_folds() {
        let dim = 37;
        let n_rows = 5;
        let slab: Vec<f32> = vals(dim * n_rows, 1);
        let weights = [0.5f32, -1.25, 2.0, 1.0, 0.75];
        for forced in [
            None,
            Some(LaneWidth::Scalar),
            Some(LaneWidth::W4),
            Some(LaneWidth::W8),
        ] {
            let mut soa = vec![0.0f32; dim];
            let mut per_row = vec![0.0f32; dim];
            match forced {
                Some(w) => fold_rows_soa_forced(&mut soa, &slab, Some(&weights), w),
                None => fold_rows_soa(&mut soa, &slab, Some(&weights)),
            }
            for (i, row) in slab.chunks_exact(dim).enumerate() {
                fold_scalar(&mut per_row, row, weights[i]);
            }
            assert_eq!(soa, per_row, "SoA fold diverged on tier {forced:?}");
        }
    }

    #[test]
    fn dispatcher_picks_a_non_scalar_tier() {
        // The CI fallback guard: scalar is only ever a forced override,
        // so with no override in the environment the dispatcher must
        // land on a wide tier (portable 4-lane exists on every target).
        if std::env::var(LANES_ENV).is_err() {
            assert_ne!(
                dispatched_width(),
                LaneWidth::Scalar,
                "runtime dispatch must never auto-select the scalar tier"
            );
        }
    }

    #[test]
    fn override_parsing_covers_documented_values() {
        assert_eq!(parse_lane_override("scalar"), Ok(LaneWidth::Scalar));
        assert_eq!(parse_lane_override("1"), Ok(LaneWidth::Scalar));
        assert_eq!(parse_lane_override("4"), Ok(LaneWidth::W4));
        assert_eq!(parse_lane_override("8"), Ok(LaneWidth::W8));
        assert!(parse_lane_override("16").is_err());
    }

    #[test]
    fn lanes_report_their_width() {
        assert_eq!(LaneWidth::Scalar.lanes(), 1);
        assert_eq!(LaneWidth::W4.lanes(), 4);
        assert_eq!(LaneWidth::W8.lanes(), 8);
    }

    #[test]
    #[should_panic(expected = "fold width mismatch")]
    fn width_mismatch_rejected() {
        let mut acc = [0.0f32; 4];
        fold_slice(&mut acc, &[1.0; 5], 1.0);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_slab_rejected() {
        let mut acc = [0.0f32; 4];
        fold_rows_soa(&mut acc, &[1.0; 6], None);
    }
}
