//! Roofline cost model for the dense DLRM stages.
//!
//! The MLP and interaction stages are compute-bound on any reasonable
//! device, so a roofline — `max(flops / peak_flops, bytes / peak_bw)` —
//! captures their latency well enough for the end-to-end weighting the
//! paper uses in Fig 14 ("we calculate the speedup by weighting the
//! speedup of both SLS and non-SLS operators") and for the GPU
//! comparisons of Fig 16/17.

use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// Peak rates of one compute device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Peak compute in GFLOP/s.
    pub gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub mem_gbps: f64,
    /// Achievable fraction of peak (datacenter kernels rarely exceed
    /// 60–80 % of roofline).
    pub efficiency: f64,
}

impl CostModel {
    /// A 96-core AMD EPYC 9654 socket (Table III): ~7 TFLOP/s FP32 with
    /// AVX-512, 12 channels of DDR5-4800 ≈ 460 GB/s.
    pub fn epyc_9654() -> Self {
        CostModel {
            gflops: 7_000.0,
            mem_gbps: 460.0,
            efficiency: 0.6,
        }
    }

    /// An NVIDIA A100 80 GB PCIe (Table III): 19.5 TFLOP/s FP32,
    /// ~1935 GB/s HBM2e.
    pub fn a100() -> Self {
        CostModel {
            gflops: 19_500.0,
            mem_gbps: 1_935.0,
            efficiency: 0.7,
        }
    }

    /// Roofline latency for a kernel of `flops` FLOPs touching `bytes`
    /// bytes.
    pub fn latency(&self, flops: u64, bytes: u64) -> SimDuration {
        let compute_ns = flops as f64 / (self.gflops * self.efficiency);
        let memory_ns = bytes as f64 / (self.mem_gbps * self.efficiency);
        SimDuration::from_ns(compute_ns.max(memory_ns).ceil() as u64)
    }

    /// `true` when a kernel of this shape is bandwidth-bound on this
    /// device.
    pub fn is_memory_bound(&self, flops: u64, bytes: u64) -> bool {
        (flops as f64 / self.gflops) < (bytes as f64 / self.mem_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn latency_scales_with_flops() {
        let m = CostModel::epyc_9654();
        let small = m.latency(1_000_000, 0);
        let big = m.latency(100_000_000, 0);
        assert!(big > small);
    }

    #[test]
    fn memory_bound_kernels_hit_the_bandwidth_wall() {
        let m = CostModel::epyc_9654();
        // 1 FLOP per 64 bytes: hopelessly memory bound (like SLS).
        assert!(m.is_memory_bound(1_000, 64_000));
        // 1000 FLOPs per byte: compute bound (like an MLP).
        assert!(!m.is_memory_bound(64_000_000, 64_000));
    }

    #[test]
    fn sls_is_memory_bound_on_both_cpu_and_gpu() {
        let cfg = ModelConfig::rmc4();
        let bytes = cfg.sls_bytes_per_sample() * 1024; // batch 1024
        let flops = bytes / 4; // one add per f32 element
        assert!(CostModel::epyc_9654().is_memory_bound(flops, bytes));
        assert!(CostModel::a100().is_memory_bound(flops, bytes));
    }

    #[test]
    fn mlps_are_compute_bound_on_cpu() {
        let cfg = ModelConfig::rmc4();
        let flops = cfg.dense_flops_per_sample() * 1024;
        let bytes = cfg.bottom_mlp.weight_bytes(cfg.dense_features)
            + cfg.top_mlp.weight_bytes(cfg.top_mlp.0[0]);
        assert!(!CostModel::epyc_9654().is_memory_bound(flops, bytes));
    }

    #[test]
    fn gpu_beats_cpu_on_dense_compute() {
        let flops = 1_000_000_000;
        let cpu = CostModel::epyc_9654().latency(flops, 0);
        let gpu = CostModel::a100().latency(flops, 0);
        assert!(gpu < cpu);
    }

    #[test]
    fn zero_work_costs_zero() {
        assert_eq!(CostModel::a100().latency(0, 0), SimDuration::ZERO);
    }
}
