//! `dlrm` — the Deep Learning Recommendation Model being accelerated.
//!
//! The paper's Fig 1 pipeline has four stages: Bottom MLP over dense
//! features, embedding lookup (SparseLengthSum, SLS) over sparse features,
//! feature interaction, and Top MLP producing the click-through rate.
//! SLS is the bandwidth-bound stage PIFS-Rec moves into the fabric
//! switch; the MLP stages matter for the end-to-end speedups of Fig 14
//! and the GPU comparison of Fig 16/17.
//!
//! This crate provides:
//!
//! * [`ModelConfig`] — the Table I model zoo (RMC1–RMC4);
//! * [`EmbeddingTable`] — address layout plus *procedural* row values, so
//!   functional SLS results are verifiable without materializing
//!   multi-GB tables;
//! * [`sls`] — the reference SparseLengthSum kernel every compute
//!   placement (host, switch, DIMM) must agree with bit-for-bit;
//! * [`mlp`] — a roofline cost model for the dense stages;
//! * [`query`] — batch- vs table-threading work partitioning (Fig 4).
//!
//! # Examples
//!
//! ```
//! use dlrm::{ModelConfig, EmbeddingTable};
//!
//! let cfg = ModelConfig::rmc1();
//! let table = EmbeddingTable::new(0, cfg.emb_num, cfg.emb_dim, 0);
//! let out = dlrm::sls::sls_reference(&table, &[1, 2, 3], None);
//! assert_eq!(out.len(), cfg.emb_dim as usize);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod embedding;
pub mod mlp;
pub mod query;
pub mod sls;

pub use config::{MlpShape, ModelConfig};
pub use embedding::EmbeddingTable;
pub use mlp::CostModel;
pub use query::{ThreadingMode, WorkItem};
