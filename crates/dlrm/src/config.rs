//! The Table I model zoo and MLP shape descriptions.

use serde::{Deserialize, Serialize};

/// A fully connected stack described by its layer widths, e.g.
/// `256-128-128`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpShape(pub Vec<u32>);

impl MlpShape {
    /// Parses a `"256-128-128"`-style shape string.
    ///
    /// # Panics
    ///
    /// Panics if the string contains a non-numeric segment.
    pub fn parse(s: &str) -> Self {
        MlpShape(
            s.split('-')
                .map(|seg| seg.parse().expect("MLP shape segment must be numeric"))
                .collect(),
        )
    }

    /// Multiply-accumulate FLOPs for one sample through the stack
    /// (2 × in × out per layer transition, counting the input width as the
    /// first entry).
    pub fn flops_per_sample(&self, input_width: u32) -> u64 {
        let mut flops = 0u64;
        let mut prev = input_width as u64;
        for &w in &self.0 {
            flops += 2 * prev * w as u64;
            prev = w as u64;
        }
        flops
    }

    /// Weight bytes (f32) of the stack.
    pub fn weight_bytes(&self, input_width: u32) -> u64 {
        let mut bytes = 0u64;
        let mut prev = input_width as u64;
        for &w in &self.0 {
            bytes += 4 * prev * w as u64;
            prev = w as u64;
        }
        bytes
    }

    /// Output width of the stack.
    pub fn output_width(&self) -> u32 {
        *self.0.last().expect("MLP shape cannot be empty")
    }
}

/// One DLRM configuration from Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name ("RMC1" … "RMC4").
    pub name: String,
    /// Embeddings (rows) per table.
    pub emb_num: u64,
    /// Embedding dimension in f32 elements (row = 4 × this in bytes).
    pub emb_dim: u32,
    /// Number of embedding tables.
    pub n_tables: u32,
    /// Average lookups per table per sample (bag size; the evaluation's
    /// "8 per batch" default, §VI-C).
    pub bag_size: u32,
    /// Bottom MLP widths.
    pub bottom_mlp: MlpShape,
    /// Top MLP widths.
    pub top_mlp: MlpShape,
    /// Dense-feature input width feeding the bottom MLP.
    pub dense_features: u32,
}

impl ModelConfig {
    /// RMC1: 16384 × 64, bottom 256-128-128, top 128-64-1.
    pub fn rmc1() -> Self {
        ModelConfig {
            name: "RMC1".into(),
            emb_num: 16_384,
            emb_dim: 64,
            n_tables: 8,
            bag_size: 8,
            bottom_mlp: MlpShape::parse("256-128-128"),
            top_mlp: MlpShape::parse("128-64-1"),
            dense_features: 256,
        }
    }

    /// RMC2: 131072 × 64, bottom 1024-512-128, top 384-192-1.
    pub fn rmc2() -> Self {
        ModelConfig {
            name: "RMC2".into(),
            emb_num: 131_072,
            emb_dim: 64,
            n_tables: 8,
            bag_size: 8,
            bottom_mlp: MlpShape::parse("1024-512-128"),
            top_mlp: MlpShape::parse("384-192-1"),
            dense_features: 1024,
        }
    }

    /// RMC3: 1048576 × 64, bottom 2048-1024-256, top 512-256-1.
    pub fn rmc3() -> Self {
        ModelConfig {
            name: "RMC3".into(),
            emb_num: 1_048_576,
            emb_dim: 64,
            n_tables: 8,
            bag_size: 8,
            bottom_mlp: MlpShape::parse("2048-1024-256"),
            top_mlp: MlpShape::parse("512-256-1"),
            dense_features: 2048,
        }
    }

    /// RMC4: 1048576 × 128, bottom 2048-2048-256, top 768-384-1.
    pub fn rmc4() -> Self {
        ModelConfig {
            name: "RMC4".into(),
            emb_num: 1_048_576,
            emb_dim: 128,
            n_tables: 8,
            bag_size: 8,
            bottom_mlp: MlpShape::parse("2048-2048-256"),
            top_mlp: MlpShape::parse("768-384-1"),
            dense_features: 2048,
        }
    }

    /// All four Table I models in order.
    pub fn all() -> Vec<ModelConfig> {
        vec![Self::rmc1(), Self::rmc2(), Self::rmc3(), Self::rmc4()]
    }

    /// Looks up a Table I model by name (case-insensitive), so harnesses
    /// can treat the model as a sweepable string parameter.
    pub fn by_name(name: &str) -> Option<ModelConfig> {
        Self::all()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Bytes of one embedding row (f32 elements).
    pub fn row_bytes(&self) -> u64 {
        4 * self.emb_dim as u64
    }

    /// Total embedding footprint across all tables, in bytes.
    pub fn embedding_bytes(&self) -> u64 {
        self.emb_num * self.row_bytes() * self.n_tables as u64
    }

    /// Returns a copy with `emb_num` divided by `factor` (minimum 1 row),
    /// used to scale simulations down while preserving Table I ratios.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled_down(&self, factor: u64) -> ModelConfig {
        assert!(factor > 0, "scale factor must be positive");
        ModelConfig {
            emb_num: (self.emb_num / factor).max(1),
            ..self.clone()
        }
    }

    /// Per-sample SLS bytes touched: tables × bag × row.
    pub fn sls_bytes_per_sample(&self) -> u64 {
        self.n_tables as u64 * self.bag_size as u64 * self.row_bytes()
    }

    /// Per-sample dense FLOPs (bottom MLP + interaction + top MLP).
    pub fn dense_flops_per_sample(&self) -> u64 {
        let bottom = self.bottom_mlp.flops_per_sample(self.dense_features);
        // Feature interaction: pairwise dots between the bottom output and
        // every table's pooled embedding.
        let n_feat = self.n_tables as u64 + 1;
        let pairs = n_feat * (n_feat - 1) / 2;
        let interaction = pairs * 2 * self.emb_dim as u64;
        let top_in = self.top_mlp.0[0];
        let top = self.top_mlp.flops_per_sample(top_in);
        bottom + interaction + top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters_match_paper() {
        let models = ModelConfig::all();
        assert_eq!(models[0].emb_num, 16_384);
        assert_eq!(models[1].emb_num, 131_072);
        assert_eq!(models[2].emb_num, 1_048_576);
        assert_eq!(models[3].emb_num, 1_048_576);
        assert_eq!(models[3].emb_dim, 128);
        assert_eq!(models[0].bottom_mlp, MlpShape::parse("256-128-128"));
        assert_eq!(models[3].top_mlp, MlpShape::parse("768-384-1"));
    }

    #[test]
    fn model_sizes_are_strictly_increasing() {
        let m = ModelConfig::all();
        for w in m.windows(2) {
            assert!(w[1].embedding_bytes() > w[0].embedding_bytes());
        }
    }

    #[test]
    fn mlp_flops_count_both_directions_of_a_layer() {
        let shape = MlpShape::parse("4-2");
        // 2×(8×4) + 2×(4×2) = 64 + 16 = 80.
        assert_eq!(shape.flops_per_sample(8), 80);
    }

    #[test]
    fn mlp_weight_bytes_are_f32() {
        let shape = MlpShape::parse("4");
        assert_eq!(shape.weight_bytes(8), 4 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "numeric")]
    fn bad_shape_string_panics() {
        let _ = MlpShape::parse("128-abc");
    }

    #[test]
    fn scaled_down_preserves_everything_else() {
        let m = ModelConfig::rmc3().scaled_down(1024);
        assert_eq!(m.emb_num, 1024);
        assert_eq!(m.emb_dim, 64);
        assert_eq!(m.name, "RMC3");
        // Never scales to zero rows.
        assert_eq!(ModelConfig::rmc1().scaled_down(u64::MAX).emb_num, 1);
    }

    #[test]
    fn sls_bytes_scale_with_bag_and_dim() {
        let m = ModelConfig::rmc1();
        assert_eq!(m.sls_bytes_per_sample(), 8 * 8 * 256);
        let m4 = ModelConfig::rmc4();
        assert_eq!(m4.row_bytes(), 512);
    }

    #[test]
    fn dense_flops_positive_and_grow_with_model() {
        let f1 = ModelConfig::rmc1().dense_flops_per_sample();
        let f4 = ModelConfig::rmc4().dense_flops_per_sample();
        assert!(f1 > 0);
        assert!(f4 > f1);
    }
}
