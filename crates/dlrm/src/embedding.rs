//! Embedding-table layout, procedural row values, and the shared
//! materialized row store.
//!
//! Production tables reach terabytes (§III), which a simulation cannot
//! materialize. Row *values* are therefore procedural: `value(row, elem)`
//! is a deterministic hash of (table, row, element), so any two compute
//! sites (host, fabric switch, DIMM) can produce — and tests can verify —
//! bit-identical SLS results without storing a single row.
//!
//! Recomputing that hash per element on every SLS fold is, however, the
//! per-element cost on the accumulate hot path. Tables up to
//! [`MATERIALIZE_CAP_BYTES`] therefore also carry a contiguous row-major
//! `f32` backing store, filled once from the procedural function and
//! shared process-wide (an `Arc` keyed by `(id, rows, dim)` — two tables
//! with the same key have identical contents by construction, and
//! concurrent sweep workers constructing the same model reuse one fill).
//! [`EmbeddingTable::row`] then hands out `&[f32]` slices the SLS kernels
//! fold with auto-vectorizable slice loops; tables beyond the cap (or
//! built with [`EmbeddingTable::new_procedural`]) keep the per-element
//! path. Both paths produce bit-identical sums: the store is filled from
//! `value()` itself and the element-wise fold order is unchanged.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Largest table (in bytes of f32 payload) that gets a materialized
/// backing store. Above this the table stays purely procedural:
/// measured on the RMC4 grid, slice loads from a multi-hundred-MB store
/// are slower than recomputing the procedural hash (the fold becomes
/// memory-bound), so materialization is reserved for tables whose whole
/// model stays cache-resident.
pub const MATERIALIZE_CAP_BYTES: u64 = 2 << 20;

/// Process-wide budget for the shared row store. Once the cached tables
/// exceed this, further tables stay procedural instead of growing the
/// cache (performance-only: results never depend on materialization).
pub const STORE_BUDGET_BYTES: u64 = 512 << 20;

/// The shared store: one filled row block per distinct `(id, rows, dim)`.
struct RowStore {
    blocks: HashMap<(u32, u64, u32), Arc<[f32]>>,
    bytes: u64,
}

fn store() -> &'static Mutex<RowStore> {
    static STORE: OnceLock<Mutex<RowStore>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(RowStore {
            blocks: HashMap::new(),
            bytes: 0,
        })
    })
}

/// Procedural value of element `elem` of row `row` of table `id`: a
/// deterministic hash mapped into `[-1, 1)` with 2^-23 granularity so
/// f32 holds it exactly (keeps cross-site accumulation bit-exact).
#[inline]
fn raw_value(id: u32, row: u64, elem: u32) -> f32 {
    let mut h = (id as u64) << 48 ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ elem as u64;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    let mantissa = (h >> 41) as u32; // 23 bits
    (mantissa as f32) * (2.0 / (1u32 << 23) as f32) - 1.0
}

/// Fetches (filling on first use) the shared row block for a table
/// shape, or `None` when the shape is over the cap or the budget is
/// exhausted.
fn materialize(id: u32, rows: u64, dim: u32) -> Option<Arc<[f32]>> {
    let bytes = rows * 4 * dim as u64;
    if bytes > MATERIALIZE_CAP_BYTES {
        return None;
    }
    {
        let s = store().lock().expect("row store poisoned");
        if let Some(block) = s.blocks.get(&(id, rows, dim)) {
            return Some(Arc::clone(block));
        }
        if s.bytes + bytes > STORE_BUDGET_BYTES {
            return None;
        }
    }
    // Fill outside the lock so concurrent sweep workers materializing
    // *different* shapes don't serialize on one fill. Two workers may
    // race on the same shape; contents are a pure function of the key,
    // so the loser just drops its duplicate block below.
    let mut data = Vec::with_capacity((rows * dim as u64) as usize);
    for row in 0..rows {
        for elem in 0..dim {
            data.push(raw_value(id, row, elem));
        }
    }
    let block: Arc<[f32]> = data.into();
    let mut s = store().lock().expect("row store poisoned");
    if let Some(existing) = s.blocks.get(&(id, rows, dim)) {
        return Some(Arc::clone(existing));
    }
    if s.bytes + bytes > STORE_BUDGET_BYTES {
        return None;
    }
    s.bytes += bytes;
    s.blocks.insert((id, rows, dim), Arc::clone(&block));
    Some(block)
}

/// One embedding table: an address range plus procedural contents.
///
/// # Examples
///
/// ```
/// use dlrm::EmbeddingTable;
///
/// let t = EmbeddingTable::new(0, 1024, 64, 0x1000);
/// assert_eq!(t.row_bytes(), 256);
/// assert_eq!(t.row_addr(2), 0x1000 + 512);
/// // Values are deterministic, and the materialized row agrees.
/// assert_eq!(t.value(5, 3), t.value(5, 3));
/// assert_eq!(t.row(5)[3], t.value(5, 3));
/// ```
#[derive(Clone)]
pub struct EmbeddingTable {
    id: u32,
    rows: u64,
    dim: u32,
    base_addr: u64,
    /// Row-major materialized values (shared), when the table fits the
    /// store caps.
    store: Option<Arc<[f32]>>,
}

impl std::fmt::Debug for EmbeddingTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingTable")
            .field("id", &self.id)
            .field("rows", &self.rows)
            .field("dim", &self.dim)
            .field("base_addr", &self.base_addr)
            .field("materialized", &self.store.is_some())
            .finish()
    }
}

impl PartialEq for EmbeddingTable {
    fn eq(&self, other: &Self) -> bool {
        // Contents are a pure function of (id, rows, dim); whether they
        // are materialized is a performance detail, not identity.
        self.id == other.id
            && self.rows == other.rows
            && self.dim == other.dim
            && self.base_addr == other.base_addr
    }
}

impl Eq for EmbeddingTable {}

impl EmbeddingTable {
    /// Creates table `id` with `rows` rows of `dim` f32 elements laid out
    /// contiguously from `base_addr`, materializing the shared row store
    /// when the table fits [`MATERIALIZE_CAP_BYTES`] /
    /// [`STORE_BUDGET_BYTES`].
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `dim` is zero.
    pub fn new(id: u32, rows: u64, dim: u32, base_addr: u64) -> Self {
        assert!(rows > 0, "table must have at least one row");
        assert!(dim > 0, "embedding dimension must be positive");
        EmbeddingTable {
            id,
            rows,
            dim,
            base_addr,
            store: materialize(id, rows, dim),
        }
    }

    /// Creates the table without a materialized store, keeping the pure
    /// per-element procedural path (the reference the materialized path
    /// is tested against, and the only mode for over-cap tables).
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `dim` is zero.
    pub fn new_procedural(id: u32, rows: u64, dim: u32, base_addr: u64) -> Self {
        assert!(rows > 0, "table must have at least one row");
        assert!(dim > 0, "embedding dimension must be positive");
        EmbeddingTable {
            id,
            rows,
            dim,
            base_addr,
            store: None,
        }
    }

    /// Table id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Embedding dimension in f32 elements.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Bytes per row.
    pub fn row_bytes(&self) -> u64 {
        4 * self.dim as u64
    }

    /// Total bytes of the table.
    pub fn total_bytes(&self) -> u64 {
        self.rows * self.row_bytes()
    }

    /// First byte address of the table.
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Byte address of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_addr(&self, row: u64) -> u64 {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        self.base_addr + row * self.row_bytes()
    }

    /// `true` if `addr` falls inside this table.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base_addr && addr < self.base_addr + self.total_bytes()
    }

    /// Procedural value of element `elem` of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `elem` is out of bounds.
    pub fn value(&self, row: u64, elem: u32) -> f32 {
        assert!(row < self.rows, "row {row} out of bounds");
        assert!(elem < self.dim, "element {elem} out of bounds");
        raw_value(self.id, row, elem)
    }

    /// The materialized row as a contiguous slice, or `None` when the
    /// table is procedural-only. The SLS kernels branch on this once per
    /// row and fold the slice with a vectorizable loop.
    #[inline]
    pub fn row_slice(&self, row: u64) -> Option<&[f32]> {
        assert!(row < self.rows, "row {row} out of bounds");
        self.store.as_deref().map(|s| {
            let dim = self.dim as usize;
            let start = row as usize * dim;
            &s[start..start + dim]
        })
    }

    /// The whole materialized row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds, or if the table is over the
    /// materialization cap (use [`EmbeddingTable::value`] /
    /// [`EmbeddingTable::row_slice`] for such tables).
    pub fn row(&self, row: u64) -> &[f32] {
        self.row_slice(row)
            .expect("table exceeds the materialization cap; use value()/row_slice()")
    }

    /// `true` when the table carries a materialized backing store.
    pub fn is_materialized(&self) -> bool {
        self.store.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn layout_is_contiguous() {
        let t = EmbeddingTable::new(1, 100, 16, 4096);
        assert_eq!(t.row_addr(0), 4096);
        assert_eq!(t.row_addr(1), 4096 + 64);
        assert_eq!(t.total_bytes(), 6400);
        assert!(t.contains(4096));
        assert!(t.contains(4096 + 6399));
        assert!(!t.contains(4095));
        assert!(!t.contains(4096 + 6400));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_addr_bounds_checked() {
        let t = EmbeddingTable::new(0, 10, 16, 0);
        let _ = t.row_addr(10);
    }

    #[test]
    fn values_differ_across_tables_rows_elements() {
        let a = EmbeddingTable::new(0, 10, 8, 0);
        let b = EmbeddingTable::new(1, 10, 8, 0);
        assert_ne!(a.value(1, 1), b.value(1, 1));
        assert_ne!(a.value(1, 1), a.value(2, 1));
        assert_ne!(a.value(1, 1), a.value(1, 2));
    }

    #[test]
    fn row_materialization_matches_values() {
        let t = EmbeddingTable::new(3, 10, 4, 0);
        let r = t.row(7);
        for (e, &v) in r.iter().enumerate() {
            assert_eq!(v, t.value(7, e as u32));
        }
    }

    #[test]
    fn procedural_and_materialized_values_agree() {
        let m = EmbeddingTable::new(4, 64, 8, 0);
        let p = EmbeddingTable::new_procedural(4, 64, 8, 0);
        assert!(m.is_materialized());
        assert!(!p.is_materialized());
        assert!(p.row_slice(0).is_none());
        for row in 0..64 {
            for e in 0..8 {
                assert_eq!(m.row(row)[e as usize], p.value(row, e));
            }
        }
        // Same identity regardless of materialization.
        assert_eq!(m, p);
    }

    #[test]
    fn store_is_shared_across_equal_shapes() {
        let a = EmbeddingTable::new(5, 32, 4, 0);
        let b = EmbeddingTable::new(5, 32, 4, 0x10_000); // different base
        let (sa, sb) = (a.store.as_ref().unwrap(), b.store.as_ref().unwrap());
        assert!(Arc::ptr_eq(sa, sb), "same (id, rows, dim) shares one fill");
    }

    proptest! {
        #[test]
        fn prop_values_bounded(row in 0u64..1000, elem in 0u32..64) {
            let t = EmbeddingTable::new(9, 1000, 64, 0);
            let v = t.value(row, elem);
            prop_assert!((-1.0..1.0).contains(&v));
            prop_assert_eq!(t.row(row)[elem as usize], v);
        }

        #[test]
        fn prop_row_addrs_disjoint(a in 0u64..999, b in 0u64..999) {
            prop_assume!(a != b);
            let t = EmbeddingTable::new(0, 1000, 32, 0);
            let (ra, rb) = (t.row_addr(a), t.row_addr(b));
            // Rows never overlap.
            prop_assert!(ra.abs_diff(rb) >= t.row_bytes());
        }
    }
}
