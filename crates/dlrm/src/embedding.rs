//! Embedding-table layout, procedural row values, and the shared
//! materialized row store.
//!
//! Production tables reach terabytes (§III), which a simulation cannot
//! materialize. Row *values* are therefore procedural: `value(row, elem)`
//! is a deterministic hash of (table, row, element), so any two compute
//! sites (host, fabric switch, DIMM) can produce — and tests can verify —
//! bit-identical SLS results without storing a single row.
//!
//! Recomputing that hash per element on every SLS fold is, however, the
//! per-element cost on the accumulate hot path. Tables up to
//! [`MATERIALIZE_CAP_BYTES`] therefore also carry a contiguous row-major
//! `f32` backing store, filled once from the procedural function and
//! shared process-wide (an `Arc` keyed by `(id, rows, dim)` — two tables
//! with the same key have identical contents by construction, and
//! concurrent sweep workers constructing the same model reuse one fill).
//! [`EmbeddingTable::row`] then hands out `&[f32]` slices the SLS kernels
//! fold with auto-vectorizable slice loops; tables beyond the cap (or
//! built with [`EmbeddingTable::new_procedural`]) keep the per-element
//! path. Both paths produce bit-identical sums: the store is filled from
//! `value()` itself and the element-wise fold order is unchanged.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Largest table (in bytes of f32 payload) that gets a materialized
/// backing store. Above this the table stays purely procedural:
/// measured on the RMC4 grid, slice loads from a multi-hundred-MB store
/// are slower than recomputing the procedural hash (the fold becomes
/// memory-bound), so materialization is reserved for tables whose whole
/// model stays cache-resident.
pub const MATERIALIZE_CAP_BYTES: u64 = 2 << 20;

/// Process-wide budget for the shared row store. Once the cached tables
/// exceed this, further tables stay procedural instead of growing the
/// cache (performance-only: results never depend on materialization).
pub const STORE_BUDGET_BYTES: u64 = 512 << 20;

/// The shared store: one filled row block per distinct `(id, rows, dim)`.
struct RowStore {
    blocks: HashMap<(u32, u64, u32), Arc<[f32]>>,
    bytes: u64,
}

fn store() -> &'static Mutex<RowStore> {
    static STORE: OnceLock<Mutex<RowStore>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(RowStore {
            blocks: HashMap::new(),
            bytes: 0,
        })
    })
}

/// Procedural value of element `elem` of row `row` of table `id`: a
/// deterministic hash mapped into `[-1, 1)` with 2^-23 granularity so
/// f32 holds it exactly (keeps cross-site accumulation bit-exact).
#[inline]
fn raw_value(id: u32, row: u64, elem: u32) -> f32 {
    let mut h = (id as u64) << 48 ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ elem as u64;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    let mantissa = (h >> 41) as u32; // 23 bits
    (mantissa as f32) * (2.0 / (1u32 << 23) as f32) - 1.0
}

/// Portable batched form of [`raw_value`]: fills `out[i]` with
/// `raw_value(id, row, elem0 + i)` in one pass, bit-identically.
///
/// The per-element chain shrinks to xor → multiply → shift through two
/// exact integer identities (`e = elem` is a `u32`, so `e >> 33 == 0`):
///
/// 1. pre-mix hoist: `(base ^ e) ^ ((base ^ e) >> 33)
///    = (base ^ (base >> 33)) ^ e`, a per-row constant xor;
/// 2. post-mix no-op: with `p` the multiplied hash, the mantissa is
///    `(p ^ (p >> 33)) >> 41 = (p >> 41) ^ (p >> 74) = p >> 41`,
///    because `p >> 74 == 0` on a 64-bit `p`.
///
/// Every surviving operation is the scalar one, so the fill matches
/// elementwise [`raw_value`] calls bit-for-bit (asserted by tests and
/// the forced-tier proptests).
#[inline(always)]
fn raw_value_block(id: u32, row: u64, elem0: u32, out: &mut [f32]) {
    let base = (id as u64) << 48 ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let premixed = base ^ (base >> 33);
    for (i, slot) in out.iter_mut().enumerate() {
        let p = (premixed ^ (elem0 as u64 + i as u64)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        let mantissa = (p >> 41) as u32; // 23 bits
        *slot = (mantissa as f32) * (2.0 / (1u32 << 23) as f32) - 1.0;
    }
}

/// [`raw_value_block`] with the multiply hand-vectorized for the 8-lane
/// dispatch tier (LLVM does not auto-vectorize 64-bit multiplies).
///
/// Eight hashes run as two 4×u64 vectors. The 64×64→64 multiply AVX2
/// lacks is built from `vpmuludq` 32×32→64 partial products:
/// `h·C mod 2^64 = h_lo·C_lo + ((h_lo·C_hi + h_hi·C_lo) << 32)` — and
/// because `e` only perturbs the low dword of the premixed base,
/// `h_hi·C_lo` is one more per-row constant hoisted out of the loop,
/// leaving two multiplies per vector. The mantissas narrow to one 8×u32
/// vector and convert with `vcvtdq2ps` (exact: mantissas are 23 bits),
/// and the final `·scale − 1` runs the same IEEE single-rounded ops per
/// lane as the scalar code — the fill is bit-identical to
/// [`raw_value_block`].
/// Row-constant registers of the vectorized hash: everything
/// [`raw_value_block`]'s identities hoist out of the element loop, in
/// vector form, shared by the fill and the fused-fold kernels.
#[cfg(target_arch = "x86_64")]
struct RowMixAvx2 {
    pre_v: core::arch::x86_64::__m256i,
    hi_v: core::arch::x86_64::__m256i,
    c_lo: core::arch::x86_64::__m256i,
    c_hi: core::arch::x86_64::__m256i,
    scale: core::arch::x86_64::__m256,
    one: core::arch::x86_64::__m256,
    narrow: core::arch::x86_64::__m256i,
}

#[cfg(target_arch = "x86_64")]
impl RowMixAvx2 {
    #[inline]
    #[target_feature(enable = "avx2")]
    fn new(id: u32, row: u64) -> Self {
        use core::arch::x86_64::*;
        const MUL: u64 = 0xFF51_AFD7_ED55_8CCD;
        let base = (id as u64) << 48 ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let premixed = base ^ (base >> 33);
        // h_hi·C_lo: constant across the row because elem xors only h_lo.
        let hi_part = (premixed >> 32).wrapping_mul(MUL & 0xFFFF_FFFF);
        RowMixAvx2 {
            pre_v: _mm256_set1_epi64x(premixed as i64),
            hi_v: _mm256_set1_epi64x(hi_part as i64),
            c_lo: _mm256_set1_epi64x((MUL & 0xFFFF_FFFF) as i64),
            c_hi: _mm256_set1_epi64x((MUL >> 32) as i64),
            scale: _mm256_set1_ps(2.0 / (1u32 << 23) as f32),
            one: _mm256_set1_ps(1.0),
            // Gathers the low dword of each u64 lane into the low 128 bits.
            narrow: _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0),
        }
    }

    /// The eight values `raw_value(id, row, e .. e + 8)` as one vector.
    ///
    /// Eight hashes run as two 4×u64 vectors. The 64×64→64 multiply AVX2
    /// lacks is built from `vpmuludq` 32×32→64 partial products:
    /// `h·C mod 2^64 = h_lo·C_lo + ((h_lo·C_hi + h_hi·C_lo) << 32)` — and
    /// because `e` only perturbs the low dword of the premixed base,
    /// `h_hi·C_lo` is one more per-row constant hoisted out of the loop,
    /// leaving two multiplies per vector. The mantissas narrow to one
    /// 8×u32 vector and convert with `vcvtdq2ps` (exact: mantissas are
    /// 23 bits), and the final `·scale − 1` runs the same IEEE
    /// single-rounded ops per lane as the scalar code — bit-identical to
    /// [`raw_value_block`].
    #[inline]
    #[target_feature(enable = "avx2")]
    fn values8(&self, e: u64) -> core::arch::x86_64::__m256 {
        use core::arch::x86_64::*;
        let ev = _mm256_set1_epi64x(e as i64);
        let h0 = _mm256_xor_si256(
            self.pre_v,
            _mm256_add_epi64(ev, _mm256_setr_epi64x(0, 1, 2, 3)),
        );
        let h1 = _mm256_xor_si256(
            self.pre_v,
            _mm256_add_epi64(ev, _mm256_setr_epi64x(4, 5, 6, 7)),
        );
        // p = h·C mod 2^64, then mantissa = p >> 41 (see raw_value_block).
        let lo0 = _mm256_mul_epu32(h0, self.c_lo);
        let lo1 = _mm256_mul_epu32(h1, self.c_lo);
        let mid0 = _mm256_add_epi64(_mm256_mul_epu32(h0, self.c_hi), self.hi_v);
        let mid1 = _mm256_add_epi64(_mm256_mul_epu32(h1, self.c_hi), self.hi_v);
        let p0 = _mm256_add_epi64(lo0, _mm256_slli_epi64(mid0, 32));
        let p1 = _mm256_add_epi64(lo1, _mm256_slli_epi64(mid1, 32));
        let m0 = _mm256_srli_epi64(p0, 41);
        let m1 = _mm256_srli_epi64(p1, 41);
        let n0 = _mm256_permutevar8x32_epi32(m0, self.narrow);
        let n1 = _mm256_permutevar8x32_epi32(m1, self.narrow);
        let packed = _mm256_inserti128_si256(n0, _mm256_castsi256_si128(n1), 1);
        let f = _mm256_cvtepi32_ps(packed);
        _mm256_sub_ps(_mm256_mul_ps(f, self.scale), self.one)
    }
}

/// [`raw_value_block`] with the multiply hand-vectorized for the 8-lane
/// dispatch tier (LLVM does not auto-vectorize 64-bit multiplies); see
/// [`RowMixAvx2::values8`] for the vector decomposition.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn raw_value_block_avx2(id: u32, row: u64, elem0: u32, out: &mut [f32]) {
    use core::arch::x86_64::*;
    let mix = RowMixAvx2::new(id, row);
    let mut e = elem0 as u64;
    let mut blocks = out.chunks_exact_mut(8);
    for block in &mut blocks {
        let v = mix.values8(e);
        // SAFETY: `block` is a chunk of exactly 8 f32s.
        unsafe { _mm256_storeu_ps(block.as_mut_ptr(), v) };
        e += 8;
    }
    let tail = blocks.into_remainder();
    if !tail.is_empty() {
        raw_value_block(id, row, e as u32, tail);
    }
}

/// Fused hash+fold of one whole procedural row on the AVX2 tier:
/// `acc[e] += w * raw_value(id, row, e)` straight from registers, no
/// intermediate value buffer. Per element this is the same two
/// separately-rounded IEEE ops (`mul`, then `add`) as the scalar fold —
/// FMA is never enabled, contraction would change the rounding — so the
/// result is bit-identical to the scalar reference.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn raw_fold_row_avx2(id: u32, row: u64, acc: &mut [f32], w: f32) {
    use core::arch::x86_64::*;
    let mix = RowMixAvx2::new(id, row);
    let wv = _mm256_set1_ps(w);
    let mut e = 0u64;
    let mut blocks = acc.chunks_exact_mut(8);
    for block in &mut blocks {
        let v = mix.values8(e);
        // SAFETY: `block` is a chunk of exactly 8 f32s.
        unsafe {
            let a = _mm256_loadu_ps(block.as_ptr());
            _mm256_storeu_ps(block.as_mut_ptr(), _mm256_add_ps(a, _mm256_mul_ps(wv, v)));
        }
        e += 8;
    }
    let tail = blocks.into_remainder();
    if !tail.is_empty() {
        let mut buf = [0.0f32; 7];
        let vals = &mut buf[..tail.len()];
        raw_value_block(id, row, e as u32, vals);
        for (slot, &v) in tail.iter_mut().zip(vals.iter()) {
            *slot += w * v;
        }
    }
}

/// Fetches (filling on first use) the shared row block for a table
/// shape, or `None` when the shape is over the cap or the budget is
/// exhausted.
fn materialize(id: u32, rows: u64, dim: u32) -> Option<Arc<[f32]>> {
    let bytes = rows * 4 * dim as u64;
    if bytes > MATERIALIZE_CAP_BYTES {
        return None;
    }
    {
        let s = store().lock().expect("row store poisoned");
        if let Some(block) = s.blocks.get(&(id, rows, dim)) {
            return Some(Arc::clone(block));
        }
        if s.bytes + bytes > STORE_BUDGET_BYTES {
            return None;
        }
    }
    // Fill outside the lock so concurrent sweep workers materializing
    // *different* shapes don't serialize on one fill. Two workers may
    // race on the same shape; contents are a pure function of the key,
    // so the loser just drops its duplicate block below.
    let mut data = vec![0.0f32; (rows * dim as u64) as usize];
    for (row, chunk) in data.chunks_exact_mut(dim as usize).enumerate() {
        raw_value_block(id, row as u64, 0, chunk);
    }
    let block: Arc<[f32]> = data.into();
    let mut s = store().lock().expect("row store poisoned");
    if let Some(existing) = s.blocks.get(&(id, rows, dim)) {
        return Some(Arc::clone(existing));
    }
    if s.bytes + bytes > STORE_BUDGET_BYTES {
        return None;
    }
    s.bytes += bytes;
    s.blocks.insert((id, rows, dim), Arc::clone(&block));
    Some(block)
}

/// One embedding table: an address range plus procedural contents.
///
/// # Examples
///
/// ```
/// use dlrm::EmbeddingTable;
///
/// let t = EmbeddingTable::new(0, 1024, 64, 0x1000);
/// assert_eq!(t.row_bytes(), 256);
/// assert_eq!(t.row_addr(2), 0x1000 + 512);
/// // Values are deterministic, and the materialized row agrees.
/// assert_eq!(t.value(5, 3), t.value(5, 3));
/// assert_eq!(t.row(5)[3], t.value(5, 3));
/// ```
#[derive(Clone)]
pub struct EmbeddingTable {
    id: u32,
    rows: u64,
    dim: u32,
    base_addr: u64,
    /// Row-major materialized values (shared), when the table fits the
    /// store caps.
    store: Option<Arc<[f32]>>,
}

impl std::fmt::Debug for EmbeddingTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingTable")
            .field("id", &self.id)
            .field("rows", &self.rows)
            .field("dim", &self.dim)
            .field("base_addr", &self.base_addr)
            .field("materialized", &self.store.is_some())
            .finish()
    }
}

impl PartialEq for EmbeddingTable {
    fn eq(&self, other: &Self) -> bool {
        // Contents are a pure function of (id, rows, dim); whether they
        // are materialized is a performance detail, not identity.
        self.id == other.id
            && self.rows == other.rows
            && self.dim == other.dim
            && self.base_addr == other.base_addr
    }
}

impl Eq for EmbeddingTable {}

impl EmbeddingTable {
    /// Creates table `id` with `rows` rows of `dim` f32 elements laid out
    /// contiguously from `base_addr`, materializing the shared row store
    /// when the table fits [`MATERIALIZE_CAP_BYTES`] /
    /// [`STORE_BUDGET_BYTES`].
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `dim` is zero.
    pub fn new(id: u32, rows: u64, dim: u32, base_addr: u64) -> Self {
        assert!(rows > 0, "table must have at least one row");
        assert!(dim > 0, "embedding dimension must be positive");
        EmbeddingTable {
            id,
            rows,
            dim,
            base_addr,
            store: materialize(id, rows, dim),
        }
    }

    /// Creates the table without a materialized store, keeping the pure
    /// per-element procedural path (the reference the materialized path
    /// is tested against, and the only mode for over-cap tables).
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `dim` is zero.
    pub fn new_procedural(id: u32, rows: u64, dim: u32, base_addr: u64) -> Self {
        assert!(rows > 0, "table must have at least one row");
        assert!(dim > 0, "embedding dimension must be positive");
        EmbeddingTable {
            id,
            rows,
            dim,
            base_addr,
            store: None,
        }
    }

    /// Table id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Embedding dimension in f32 elements.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Bytes per row.
    pub fn row_bytes(&self) -> u64 {
        4 * self.dim as u64
    }

    /// Total bytes of the table.
    pub fn total_bytes(&self) -> u64 {
        self.rows * self.row_bytes()
    }

    /// First byte address of the table.
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Byte address of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_addr(&self, row: u64) -> u64 {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        self.base_addr + row * self.row_bytes()
    }

    /// `true` if `addr` falls inside this table.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base_addr && addr < self.base_addr + self.total_bytes()
    }

    /// Procedural value of element `elem` of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `elem` is out of bounds.
    pub fn value(&self, row: u64, elem: u32) -> f32 {
        assert!(row < self.rows, "row {row} out of bounds");
        assert!(elem < self.dim, "element {elem} out of bounds");
        raw_value(self.id, row, elem)
    }

    /// Fills `out` with the procedural values of elements
    /// `elem0 .. elem0 + out.len()` of `row` — the batched form of
    /// [`EmbeddingTable::value`] the wide SLS kernels stream from when a
    /// table is over the materialization cap. Bit-identical to
    /// elementwise `value()` calls on every dispatch tier (integer hash
    /// plus exact f32 mapping, per lane).
    ///
    /// # Panics
    ///
    /// Panics if `row` or the element block is out of bounds.
    #[inline]
    pub fn value_block(&self, row: u64, elem0: u32, out: &mut [f32]) {
        assert!(row < self.rows, "row {row} out of bounds");
        assert!(
            elem0 as usize + out.len() <= self.dim as usize,
            "element block {elem0}+{} exceeds dim {}",
            out.len(),
            self.dim
        );
        #[cfg(target_arch = "x86_64")]
        if crate::sls::simd::avx2_dispatched() {
            // SAFETY: `avx2_dispatched` is gated on runtime
            // `is_x86_feature_detected!("avx2")`.
            unsafe {
                return raw_value_block_avx2(self.id, row, elem0, out);
            }
        }
        raw_value_block(self.id, row, elem0, out)
    }

    /// Fused procedural fold on the AVX2 8-lane tier:
    /// `acc[e] += w * value(row, e)` across the whole row without an
    /// intermediate value buffer (see [`raw_fold_row_avx2`]). The wide
    /// SLS kernel takes this path for over-cap tables; bit-identical to
    /// the scalar fold.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `acc` is wider than the row.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    pub(crate) fn fold_row_avx2(&self, row: u64, acc: &mut [f32], w: f32) {
        assert!(row < self.rows, "row {row} out of bounds");
        assert!(
            acc.len() <= self.dim as usize,
            "accumulator wider than the row"
        );
        raw_fold_row_avx2(self.id, row, acc, w);
    }

    /// The materialized row as a contiguous slice, or `None` when the
    /// table is procedural-only. The SLS kernels branch on this once per
    /// row and fold the slice with a vectorizable loop.
    #[inline]
    pub fn row_slice(&self, row: u64) -> Option<&[f32]> {
        assert!(row < self.rows, "row {row} out of bounds");
        self.store.as_deref().map(|s| {
            let dim = self.dim as usize;
            let start = row as usize * dim;
            &s[start..start + dim]
        })
    }

    /// The whole materialized row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds, or if the table is over the
    /// materialization cap (use [`EmbeddingTable::value`] /
    /// [`EmbeddingTable::row_slice`] for such tables).
    pub fn row(&self, row: u64) -> &[f32] {
        self.row_slice(row)
            .expect("table exceeds the materialization cap; use value()/row_slice()")
    }

    /// `true` when the table carries a materialized backing store.
    pub fn is_materialized(&self) -> bool {
        self.store.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn layout_is_contiguous() {
        let t = EmbeddingTable::new(1, 100, 16, 4096);
        assert_eq!(t.row_addr(0), 4096);
        assert_eq!(t.row_addr(1), 4096 + 64);
        assert_eq!(t.total_bytes(), 6400);
        assert!(t.contains(4096));
        assert!(t.contains(4096 + 6399));
        assert!(!t.contains(4095));
        assert!(!t.contains(4096 + 6400));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_addr_bounds_checked() {
        let t = EmbeddingTable::new(0, 10, 16, 0);
        let _ = t.row_addr(10);
    }

    #[test]
    fn values_differ_across_tables_rows_elements() {
        let a = EmbeddingTable::new(0, 10, 8, 0);
        let b = EmbeddingTable::new(1, 10, 8, 0);
        assert_ne!(a.value(1, 1), b.value(1, 1));
        assert_ne!(a.value(1, 1), a.value(2, 1));
        assert_ne!(a.value(1, 1), a.value(1, 2));
    }

    #[test]
    fn row_materialization_matches_values() {
        let t = EmbeddingTable::new(3, 10, 4, 0);
        let r = t.row(7);
        for (e, &v) in r.iter().enumerate() {
            assert_eq!(v, t.value(7, e as u32));
        }
    }

    #[test]
    fn procedural_and_materialized_values_agree() {
        let m = EmbeddingTable::new(4, 64, 8, 0);
        let p = EmbeddingTable::new_procedural(4, 64, 8, 0);
        assert!(m.is_materialized());
        assert!(!p.is_materialized());
        assert!(p.row_slice(0).is_none());
        for row in 0..64 {
            for e in 0..8 {
                assert_eq!(m.row(row)[e as usize], p.value(row, e));
            }
        }
        // Same identity regardless of materialization.
        assert_eq!(m, p);
    }

    #[test]
    fn value_block_matches_elementwise_values() {
        let t = EmbeddingTable::new_procedural(6, 40, 100, 0);
        // Every block offset/length class, including unaligned tails.
        for (e0, len) in [(0u32, 100usize), (0, 1), (3, 29), (64, 36), (99, 1)] {
            let mut out = vec![0.0f32; len];
            t.value_block(7, e0, &mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, t.value(7, e0 + i as u32), "mismatch at {e0}+{i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "element block")]
    fn value_block_bounds_checked() {
        let t = EmbeddingTable::new_procedural(6, 40, 100, 0);
        let mut out = vec![0.0f32; 8];
        t.value_block(0, 96, &mut out);
    }

    #[test]
    fn store_is_shared_across_equal_shapes() {
        let a = EmbeddingTable::new(5, 32, 4, 0);
        let b = EmbeddingTable::new(5, 32, 4, 0x10_000); // different base
        let (sa, sb) = (a.store.as_ref().unwrap(), b.store.as_ref().unwrap());
        assert!(Arc::ptr_eq(sa, sb), "same (id, rows, dim) shares one fill");
    }

    proptest! {
        #[test]
        fn prop_values_bounded(row in 0u64..1000, elem in 0u32..64) {
            let t = EmbeddingTable::new(9, 1000, 64, 0);
            let v = t.value(row, elem);
            prop_assert!((-1.0..1.0).contains(&v));
            prop_assert_eq!(t.row(row)[elem as usize], v);
        }

        #[test]
        fn prop_row_addrs_disjoint(a in 0u64..999, b in 0u64..999) {
            prop_assume!(a != b);
            let t = EmbeddingTable::new(0, 1000, 32, 0);
            let (ra, rb) = (t.row_addr(a), t.row_addr(b));
            // Rows never overlap.
            prop_assert!(ra.abs_diff(rb) >= t.row_bytes());
        }
    }
}
