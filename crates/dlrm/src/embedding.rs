//! Embedding-table layout and procedural row values.
//!
//! Production tables reach terabytes (§III), which a simulation cannot
//! materialize. Rows are therefore *procedural*: `value(row, elem)` is a
//! deterministic hash of (table, row, element), so any two compute sites
//! (host, fabric switch, DIMM) can produce — and tests can verify —
//! bit-identical SLS results without storing a single row.

/// One embedding table: an address range plus procedural contents.
///
/// # Examples
///
/// ```
/// use dlrm::EmbeddingTable;
///
/// let t = EmbeddingTable::new(0, 1024, 64, 0x1000);
/// assert_eq!(t.row_bytes(), 256);
/// assert_eq!(t.row_addr(2), 0x1000 + 512);
/// // Values are deterministic.
/// assert_eq!(t.value(5, 3), t.value(5, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddingTable {
    id: u32,
    rows: u64,
    dim: u32,
    base_addr: u64,
}

impl EmbeddingTable {
    /// Creates table `id` with `rows` rows of `dim` f32 elements laid out
    /// contiguously from `base_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `dim` is zero.
    pub fn new(id: u32, rows: u64, dim: u32, base_addr: u64) -> Self {
        assert!(rows > 0, "table must have at least one row");
        assert!(dim > 0, "embedding dimension must be positive");
        EmbeddingTable {
            id,
            rows,
            dim,
            base_addr,
        }
    }

    /// Table id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Embedding dimension in f32 elements.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Bytes per row.
    pub fn row_bytes(&self) -> u64 {
        4 * self.dim as u64
    }

    /// Total bytes of the table.
    pub fn total_bytes(&self) -> u64 {
        self.rows * self.row_bytes()
    }

    /// First byte address of the table.
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Byte address of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_addr(&self, row: u64) -> u64 {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        self.base_addr + row * self.row_bytes()
    }

    /// `true` if `addr` falls inside this table.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base_addr && addr < self.base_addr + self.total_bytes()
    }

    /// Procedural value of element `elem` of row `row`: a deterministic
    /// hash mapped into `[-1, 1)` (typical for trained embeddings).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `elem` is out of bounds.
    pub fn value(&self, row: u64, elem: u32) -> f32 {
        assert!(row < self.rows, "row {row} out of bounds");
        assert!(elem < self.dim, "element {elem} out of bounds");
        let mut h = (self.id as u64) << 48 ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ elem as u64;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        // Map to [-1, 1) with 2^-23 granularity so f32 holds it exactly —
        // this keeps cross-site accumulation comparisons bit-exact.
        let mantissa = (h >> 41) as u32; // 23 bits
        (mantissa as f32) * (2.0 / (1u32 << 23) as f32) - 1.0
    }

    /// Materializes a whole row (for the functional SLS kernel).
    pub fn row(&self, row: u64) -> Vec<f32> {
        (0..self.dim).map(|e| self.value(row, e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn layout_is_contiguous() {
        let t = EmbeddingTable::new(1, 100, 16, 4096);
        assert_eq!(t.row_addr(0), 4096);
        assert_eq!(t.row_addr(1), 4096 + 64);
        assert_eq!(t.total_bytes(), 6400);
        assert!(t.contains(4096));
        assert!(t.contains(4096 + 6399));
        assert!(!t.contains(4095));
        assert!(!t.contains(4096 + 6400));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_addr_bounds_checked() {
        let t = EmbeddingTable::new(0, 10, 16, 0);
        let _ = t.row_addr(10);
    }

    #[test]
    fn values_differ_across_tables_rows_elements() {
        let a = EmbeddingTable::new(0, 10, 8, 0);
        let b = EmbeddingTable::new(1, 10, 8, 0);
        assert_ne!(a.value(1, 1), b.value(1, 1));
        assert_ne!(a.value(1, 1), a.value(2, 1));
        assert_ne!(a.value(1, 1), a.value(1, 2));
    }

    #[test]
    fn row_materialization_matches_values() {
        let t = EmbeddingTable::new(3, 10, 4, 0);
        let r = t.row(7);
        for (e, &v) in r.iter().enumerate() {
            assert_eq!(v, t.value(7, e as u32));
        }
    }

    proptest! {
        #[test]
        fn prop_values_bounded(row in 0u64..1000, elem in 0u32..64) {
            let t = EmbeddingTable::new(9, 1000, 64, 0);
            let v = t.value(row, elem);
            prop_assert!((-1.0..1.0).contains(&v));
        }

        #[test]
        fn prop_row_addrs_disjoint(a in 0u64..999, b in 0u64..999) {
            prop_assume!(a != b);
            let t = EmbeddingTable::new(0, 1000, 32, 0);
            let (ra, rb) = (t.row_addr(a), t.row_addr(b));
            // Rows never overlap.
            prop_assert!(ra.abs_diff(rb) >= t.row_bytes());
        }
    }
}
