//! The SparseLengthSum (SLS) operator — the kernel PIFS-Rec accelerates.
//!
//! SLS gathers `bag_size` rows from an embedding table and element-wise
//! accumulates them (optionally weighted). The functional kernel here is
//! the *reference*: the host path, the in-switch accumulate logic and the
//! DIMM-side RecNMP path must all reproduce it exactly, which the
//! integration tests assert.

use crate::embedding::EmbeddingTable;

pub mod simd;

/// One SLS request: which rows of which table to accumulate.
#[derive(Debug, Clone, PartialEq)]
pub struct SlsRequest {
    /// Target table id.
    pub table: u32,
    /// Row indices to gather.
    pub indices: Vec<u64>,
    /// Optional per-row FP32 weights (same length as `indices`).
    pub weights: Option<Vec<f32>>,
}

impl SlsRequest {
    /// Creates an unweighted request.
    pub fn new(table: u32, indices: Vec<u64>) -> Self {
        SlsRequest {
            table,
            indices,
            weights: None,
        }
    }

    /// Creates a weighted request.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != indices.len()`.
    pub fn weighted(table: u32, indices: Vec<u64>, weights: Vec<f32>) -> Self {
        assert_eq!(
            indices.len(),
            weights.len(),
            "one weight per index required"
        );
        SlsRequest {
            table,
            indices,
            weights: Some(weights),
        }
    }

    /// Number of rows gathered.
    pub fn bag_size(&self) -> usize {
        self.indices.len()
    }
}

/// Reference SLS: accumulates the requested rows of `table`.
///
/// The accumulation order is the order of `indices` — all compute sites
/// in the workspace follow the same order, keeping floating-point sums
/// bit-identical across placements. Internally each fold takes the
/// slice-zip fast path when the table carries a materialized row store
/// (see [`accumulate_row`]); [`sls_reference_scalar`] is the retained
/// per-element formulation both are property-tested against.
///
/// # Examples
///
/// ```
/// use dlrm::EmbeddingTable;
/// use dlrm::sls::sls_reference;
///
/// let t = EmbeddingTable::new(0, 100, 4, 0);
/// let sum = sls_reference(&t, &[1, 2], None);
/// assert_eq!(sum[0], t.value(1, 0) + t.value(2, 0));
/// ```
///
/// # Panics
///
/// Panics if any index is out of bounds or the weight count mismatches.
pub fn sls_reference(table: &EmbeddingTable, indices: &[u64], weights: Option<&[f32]>) -> Vec<f32> {
    if let Some(w) = weights {
        assert_eq!(w.len(), indices.len(), "one weight per index required");
    }
    let mut acc = vec![0.0f32; table.dim() as usize];
    for (i, &row) in indices.iter().enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        accumulate_row(&mut acc, table, row, w);
    }
    acc
}

/// The retained scalar SLS reference: per-element procedural values,
/// no slice fast path. Exists so equivalence of the vectorizable path
/// is a tested property, not an assumption.
///
/// # Panics
///
/// Panics if any index is out of bounds or the weight count mismatches.
pub fn sls_reference_scalar(
    table: &EmbeddingTable,
    indices: &[u64],
    weights: Option<&[f32]>,
) -> Vec<f32> {
    if let Some(w) = weights {
        assert_eq!(w.len(), indices.len(), "one weight per index required");
    }
    let mut acc = vec![0.0f32; table.dim() as usize];
    for (i, &row) in indices.iter().enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        accumulate_row_scalar(&mut acc, table, row, w);
    }
    acc
}

/// Folds one row into `acc` with weight `w` — the per-arrival step the
/// switch's accumulate logic performs (§IV-A5).
///
/// When the table is materialized this is the explicit lane-width wide
/// fold ([`simd::fold_slice`]): fixed `[f32; LANES]` accumulator blocks
/// plus a scalar tail, behind the 8/4/scalar runtime dispatcher. For
/// procedural tables the per-element hash is computed in vectorizable
/// blocks ([`EmbeddingTable::value_block`]) and folded the same way.
/// Because the per-element addition order along `dim` is exactly the
/// scalar loop's on every tier, the f32 sums are bit-identical to
/// [`accumulate_row_scalar`] (asserted by the forced-tier proptests).
///
/// # Panics
///
/// Panics if `acc.len()` differs from the table dimension or `row` is out
/// of bounds.
#[inline]
pub fn accumulate_row(acc: &mut [f32], table: &EmbeddingTable, row: u64, w: f32) {
    assert_eq!(
        acc.len(),
        table.dim() as usize,
        "accumulator width must match the table dimension"
    );
    match table.row_slice(row) {
        Some(vals) => simd::fold_slice(acc, vals, w),
        None => accumulate_row_procedural(acc, table, row, w, None),
    }
}

/// [`accumulate_row`] on an explicitly forced dispatch tier — the hook
/// the forced-tier proptests and the CI fallback guard drive.
///
/// # Panics
///
/// Panics if `acc.len()` differs from the table dimension or `row` is out
/// of bounds.
pub fn accumulate_row_forced(
    acc: &mut [f32],
    table: &EmbeddingTable,
    row: u64,
    w: f32,
    width: simd::LaneWidth,
) {
    assert_eq!(
        acc.len(),
        table.dim() as usize,
        "accumulator width must match the table dimension"
    );
    match table.row_slice(row) {
        Some(vals) => simd::fold_slice_forced(acc, vals, w, width),
        None => accumulate_row_procedural(acc, table, row, w, Some(width)),
    }
}

/// Block size (f32 elements) of the stack buffer the procedural wide
/// fold streams through: `value_block` fills a block, the wide fold
/// consumes it, no heap touched.
const PROC_BLOCK: usize = 64;

/// The wide fold for over-cap (procedural) tables: hash values are
/// produced in vectorizable blocks and folded with the dispatched (or
/// forced) tier. The scalar tier routes to [`accumulate_row_scalar`]
/// itself so the forced fallback exercises the true reference path.
fn accumulate_row_procedural(
    acc: &mut [f32],
    table: &EmbeddingTable,
    row: u64,
    w: f32,
    forced: Option<simd::LaneWidth>,
) {
    let width = forced.unwrap_or_else(simd::dispatched_width);
    if width == simd::LaneWidth::Scalar {
        return accumulate_row_scalar(acc, table, row, w);
    }
    #[cfg(target_arch = "x86_64")]
    if width == simd::LaneWidth::W8 && simd::avx2_dispatched() {
        // SAFETY: `avx2_dispatched` is gated on runtime
        // `is_x86_feature_detected!("avx2")`.
        unsafe { table.fold_row_avx2(row, acc, w) };
        return;
    }
    let mut buf = [0.0f32; PROC_BLOCK];
    let dim = acc.len();
    let mut e0 = 0usize;
    while e0 < dim {
        let l = PROC_BLOCK.min(dim - e0);
        table.value_block(row, e0 as u32, &mut buf[..l]);
        match forced {
            Some(width) => simd::fold_slice_forced(&mut acc[e0..e0 + l], &buf[..l], w, width),
            None => simd::fold_slice(&mut acc[e0..e0 + l], &buf[..l], w),
        }
        e0 += l;
    }
}

/// The scalar fold: one procedural `value()` call per element. The
/// reference [`accumulate_row`] must match bit-for-bit, and the only
/// path for tables beyond the materialization cap.
///
/// # Panics
///
/// Panics if `acc.len()` differs from the table dimension or `row` is out
/// of bounds.
pub fn accumulate_row_scalar(acc: &mut [f32], table: &EmbeddingTable, row: u64, w: f32) {
    assert_eq!(
        acc.len(),
        table.dim() as usize,
        "accumulator width must match the table dimension"
    );
    for (e, slot) in acc.iter_mut().enumerate() {
        *slot += w * table.value(row, e as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> EmbeddingTable {
        EmbeddingTable::new(2, 256, 8, 0)
    }

    #[test]
    fn empty_bag_gives_zero_vector() {
        let out = sls_reference(&table(), &[], None);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn single_row_is_identity() {
        let t = table();
        assert_eq!(sls_reference(&t, &[5], None), t.row(5));
    }

    #[test]
    fn weights_scale_rows() {
        let t = table();
        let out = sls_reference(&t, &[3], Some(&[2.0]));
        for (e, &v) in out.iter().enumerate() {
            assert_eq!(v, 2.0 * t.value(3, e as u32));
        }
    }

    #[test]
    fn incremental_accumulation_matches_reference() {
        let t = table();
        let indices = [1u64, 9, 4, 9, 200];
        let reference = sls_reference(&t, &indices, None);
        let mut acc = vec![0.0f32; t.dim() as usize];
        for &row in &indices {
            accumulate_row(&mut acc, &t, row, 1.0);
        }
        assert_eq!(acc, reference);
    }

    #[test]
    #[should_panic(expected = "one weight per index")]
    fn weight_count_mismatch_panics() {
        let _ = SlsRequest::weighted(0, vec![1, 2], vec![1.0]);
    }

    #[test]
    fn request_reports_bag_size() {
        assert_eq!(SlsRequest::new(0, vec![1, 2, 3]).bag_size(), 3);
    }

    proptest! {
        /// Splitting a bag at any point and accumulating the two halves
        /// sequentially must equal the one-shot reference — this is the
        /// invariant that lets the switch process rows as they arrive.
        #[test]
        fn prop_split_accumulation_is_exact(
            indices in proptest::collection::vec(0u64..256, 1..20),
            split in 0usize..20,
        ) {
            let t = table();
            let split = split.min(indices.len());
            let reference = sls_reference(&t, &indices, None);
            let mut acc = sls_reference(&t, &indices[..split], None);
            for &row in &indices[split..] {
                accumulate_row(&mut acc, &t, row, 1.0);
            }
            prop_assert_eq!(acc, reference);
        }

        /// The vectorizable slice-zip fold must equal the retained
        /// scalar reference bit-for-bit: unweighted, any dim in 1..256,
        /// materialized vs procedural table.
        #[test]
        fn prop_vectorized_matches_scalar_unweighted(
            dim in 1u32..256,
            indices in proptest::collection::vec(0u64..64, 1..16),
        ) {
            let mat = EmbeddingTable::new(7, 64, dim, 0);
            let proc_ = EmbeddingTable::new_procedural(7, 64, dim, 0);
            prop_assert!(mat.is_materialized());
            let fast = sls_reference(&mat, &indices, None);
            let scalar = sls_reference_scalar(&proc_, &indices, None);
            prop_assert_eq!(fast, scalar);
        }

        /// Same equivalence with per-row weights.
        #[test]
        fn prop_vectorized_matches_scalar_weighted(
            dim in 1u32..256,
            indices in proptest::collection::vec(0u64..64, 1..16),
            raw_weights in proptest::collection::vec(-4.0f32..4.0, 16..17),
        ) {
            let weights: Vec<f32> = raw_weights[..indices.len()].to_vec();
            let mat = EmbeddingTable::new(7, 64, dim, 0);
            let proc_ = EmbeddingTable::new_procedural(7, 64, dim, 0);
            let fast = sls_reference(&mat, &indices, Some(&weights));
            let scalar = sls_reference_scalar(&proc_, &indices, Some(&weights));
            prop_assert_eq!(fast, scalar);
        }

        /// Every dispatch tier — forced scalar, 4-lane and 8-lane —
        /// must equal the scalar reference *bit-for-bit* (not
        /// approximately) across dims 1..256, weighted and unweighted,
        /// on materialized and procedural tables alike.
        #[test]
        fn prop_forced_tiers_match_scalar_reference(
            dim in 1u32..256,
            indices in proptest::collection::vec(0u64..64, 1..16),
            raw_weights in proptest::collection::vec(-4.0f32..4.0, 16..17),
        ) {
            let weights: Vec<f32> = raw_weights[..indices.len()].to_vec();
            let mat = EmbeddingTable::new(7, 64, dim, 0);
            let proc_ = EmbeddingTable::new_procedural(7, 64, dim, 0);
            prop_assert!(mat.is_materialized());
            for weighted in [false, true] {
                let ws = weighted.then_some(&weights[..]);
                let reference = sls_reference_scalar(&proc_, &indices, ws);
                for width in simd::LaneWidth::all() {
                    for table in [&mat, &proc_] {
                        let mut acc = vec![0.0f32; dim as usize];
                        for (i, &row) in indices.iter().enumerate() {
                            let w = ws.map_or(1.0, |x| x[i]);
                            accumulate_row_forced(&mut acc, table, row, w, width);
                        }
                        prop_assert_eq!(
                            &acc,
                            &reference,
                            "tier {:?} diverged (dim {}, weighted {}, materialized {})",
                            width, dim, weighted, table.is_materialized()
                        );
                    }
                }
            }
        }

        /// Duplicate indices accumulate additively.
        #[test]
        fn prop_duplicates_add(row in 0u64..256, reps in 1usize..8) {
            let t = table();
            let indices = vec![row; reps];
            let out = sls_reference(&t, &indices, None);
            // Weighted single-row fetch with weight = reps is identical
            // only when the sum is exact; repeated addition of the same
            // f32 `reps` times equals reps×v for reps ≤ 8 because the
            // values carry ≤ 23 significant bits and reps is a small
            // integer… verify element 0 within one ULP instead.
            let expect = t.value(row, 0) * reps as f32;
            let got = out[0];
            prop_assert!((got - expect).abs() <= got.abs().max(expect.abs()) * f32::EPSILON * reps as f32 + f32::MIN_POSITIVE);
        }
    }
}
