//! The SparseLengthSum (SLS) operator — the kernel PIFS-Rec accelerates.
//!
//! SLS gathers `bag_size` rows from an embedding table and element-wise
//! accumulates them (optionally weighted). The functional kernel here is
//! the *reference*: the host path, the in-switch accumulate logic and the
//! DIMM-side RecNMP path must all reproduce it exactly, which the
//! integration tests assert.

use crate::embedding::EmbeddingTable;

pub mod simd;

/// One SLS request: which rows of which table to accumulate.
#[derive(Debug, Clone, PartialEq)]
pub struct SlsRequest {
    /// Target table id.
    pub table: u32,
    /// Row indices to gather.
    pub indices: Vec<u64>,
    /// Optional per-row FP32 weights (same length as `indices`).
    pub weights: Option<Vec<f32>>,
}

impl SlsRequest {
    /// Creates an unweighted request.
    pub fn new(table: u32, indices: Vec<u64>) -> Self {
        SlsRequest {
            table,
            indices,
            weights: None,
        }
    }

    /// Creates a weighted request.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != indices.len()`.
    pub fn weighted(table: u32, indices: Vec<u64>, weights: Vec<f32>) -> Self {
        assert_eq!(
            indices.len(),
            weights.len(),
            "one weight per index required"
        );
        SlsRequest {
            table,
            indices,
            weights: Some(weights),
        }
    }

    /// Number of rows gathered.
    pub fn bag_size(&self) -> usize {
        self.indices.len()
    }
}

/// Reference SLS: accumulates the requested rows of `table`.
///
/// The accumulation order is the order of `indices` — all compute sites
/// in the workspace follow the same order, keeping floating-point sums
/// bit-identical across placements. Internally each fold takes the
/// slice-zip fast path when the table carries a materialized row store
/// (see [`accumulate_row`]); [`sls_reference_scalar`] is the retained
/// per-element formulation both are property-tested against.
///
/// # Examples
///
/// ```
/// use dlrm::EmbeddingTable;
/// use dlrm::sls::sls_reference;
///
/// let t = EmbeddingTable::new(0, 100, 4, 0);
/// let sum = sls_reference(&t, &[1, 2], None);
/// assert_eq!(sum[0], t.value(1, 0) + t.value(2, 0));
/// ```
///
/// # Panics
///
/// Panics if any index is out of bounds or the weight count mismatches.
pub fn sls_reference(table: &EmbeddingTable, indices: &[u64], weights: Option<&[f32]>) -> Vec<f32> {
    if let Some(w) = weights {
        assert_eq!(w.len(), indices.len(), "one weight per index required");
    }
    let mut acc = vec![0.0f32; table.dim() as usize];
    for (i, &row) in indices.iter().enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        accumulate_row(&mut acc, table, row, w);
    }
    acc
}

/// The retained scalar SLS reference: per-element procedural values,
/// no slice fast path. Exists so equivalence of the vectorizable path
/// is a tested property, not an assumption.
///
/// # Panics
///
/// Panics if any index is out of bounds or the weight count mismatches.
pub fn sls_reference_scalar(
    table: &EmbeddingTable,
    indices: &[u64],
    weights: Option<&[f32]>,
) -> Vec<f32> {
    if let Some(w) = weights {
        assert_eq!(w.len(), indices.len(), "one weight per index required");
    }
    let mut acc = vec![0.0f32; table.dim() as usize];
    for (i, &row) in indices.iter().enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        accumulate_row_scalar(&mut acc, table, row, w);
    }
    acc
}

/// Folds one row into `acc` with weight `w` — the per-arrival step the
/// switch's accumulate logic performs (§IV-A5).
///
/// When the table is materialized this is the explicit lane-width wide
/// fold ([`simd::fold_slice`]): fixed `[f32; LANES]` accumulator blocks
/// plus a scalar tail, behind the 8/4/scalar runtime dispatcher. For
/// procedural tables the per-element hash is computed in vectorizable
/// blocks ([`EmbeddingTable::value_block`]) and folded the same way.
/// Because the per-element addition order along `dim` is exactly the
/// scalar loop's on every tier, the f32 sums are bit-identical to
/// [`accumulate_row_scalar`] (asserted by the forced-tier proptests).
///
/// # Panics
///
/// Panics if `acc.len()` differs from the table dimension or `row` is out
/// of bounds.
#[inline]
pub fn accumulate_row(acc: &mut [f32], table: &EmbeddingTable, row: u64, w: f32) {
    assert_eq!(
        acc.len(),
        table.dim() as usize,
        "accumulator width must match the table dimension"
    );
    match table.row_slice(row) {
        Some(vals) => simd::fold_slice(acc, vals, w),
        None => accumulate_row_procedural(acc, table, row, w, None),
    }
}

/// [`accumulate_row`] on an explicitly forced dispatch tier — the hook
/// the forced-tier proptests and the CI fallback guard drive.
///
/// # Panics
///
/// Panics if `acc.len()` differs from the table dimension or `row` is out
/// of bounds.
pub fn accumulate_row_forced(
    acc: &mut [f32],
    table: &EmbeddingTable,
    row: u64,
    w: f32,
    width: simd::LaneWidth,
) {
    assert_eq!(
        acc.len(),
        table.dim() as usize,
        "accumulator width must match the table dimension"
    );
    match table.row_slice(row) {
        Some(vals) => simd::fold_slice_forced(acc, vals, w, width),
        None => accumulate_row_procedural(acc, table, row, w, Some(width)),
    }
}

/// Block size (f32 elements) of the stack buffer the procedural wide
/// fold streams through: `value_block` fills a block, the wide fold
/// consumes it, no heap touched.
const PROC_BLOCK: usize = 64;

/// The wide fold for over-cap (procedural) tables: hash values are
/// produced in vectorizable blocks and folded with the dispatched (or
/// forced) tier. The scalar tier routes to [`accumulate_row_scalar`]
/// itself so the forced fallback exercises the true reference path.
fn accumulate_row_procedural(
    acc: &mut [f32],
    table: &EmbeddingTable,
    row: u64,
    w: f32,
    forced: Option<simd::LaneWidth>,
) {
    let width = forced.unwrap_or_else(simd::dispatched_width);
    if width == simd::LaneWidth::Scalar {
        return accumulate_row_scalar(acc, table, row, w);
    }
    #[cfg(target_arch = "x86_64")]
    if width == simd::LaneWidth::W8 && simd::avx2_dispatched() {
        // SAFETY: `avx2_dispatched` is gated on runtime
        // `is_x86_feature_detected!("avx2")`.
        unsafe { table.fold_row_avx2(row, acc, w) };
        return;
    }
    let mut buf = [0.0f32; PROC_BLOCK];
    let dim = acc.len();
    let mut e0 = 0usize;
    while e0 < dim {
        let l = PROC_BLOCK.min(dim - e0);
        table.value_block(row, e0 as u32, &mut buf[..l]);
        match forced {
            Some(width) => simd::fold_slice_forced(&mut acc[e0..e0 + l], &buf[..l], w, width),
            None => simd::fold_slice(&mut acc[e0..e0 + l], &buf[..l], w),
        }
        e0 += l;
    }
}

/// The scalar fold: one procedural `value()` call per element. The
/// reference [`accumulate_row`] must match bit-for-bit, and the only
/// path for tables beyond the materialization cap.
///
/// # Panics
///
/// Panics if `acc.len()` differs from the table dimension or `row` is out
/// of bounds.
pub fn accumulate_row_scalar(acc: &mut [f32], table: &EmbeddingTable, row: u64, w: f32) {
    assert_eq!(
        acc.len(),
        table.dim() as usize,
        "accumulator width must match the table dimension"
    );
    for (e, slot) in acc.iter_mut().enumerate() {
        *slot += w * table.value(row, e as u32);
    }
}

/// Folds one row into an **exact** f64 accumulator — the arithmetic of
/// the cluster layer's partial-sum merge plane.
///
/// Each term is the f32 product `w * value` (one rounding, the same
/// value every compute site produces) widened to f64, which is exact.
/// The accumulation itself is then *provably exact*, not merely more
/// precise: procedural embedding values are exact multiples of 2⁻²² in
/// [-1, 1) (see [`EmbeddingTable`]'s value construction — a 23-bit
/// mantissa scaled by 2/2²³), so an unweighted sum is an integer
/// multiple of 2⁻²² with magnitude below `bag_size`; f64 represents
/// every such sum exactly until the integer part exceeds 2⁵³, i.e. for
/// any bag under 2³⁰ rows. Exact addition is associative, so *any*
/// grouping of the rows — per-shard partials merged in any order —
/// yields bit-identical results. The same holds for weights that are
/// multiples of 2⁻¹⁰ in [-4, 4): products are multiples of 2⁻³² with
/// magnitude < 4, exact for bags under 2¹⁹ rows.
///
/// This is why the cluster's merged embeddings are invariant to shard
/// count and placement policy (asserted by the shard-invariance suite);
/// the fixed shard-index merge order is belt and suspenders, not a
/// correctness requirement.
///
/// # Panics
///
/// Panics if `acc.len()` differs from the table dimension or `row` is
/// out of bounds.
pub fn accumulate_row_exact(acc: &mut [f64], table: &EmbeddingTable, row: u64, w: f32) {
    assert_eq!(
        acc.len(),
        table.dim() as usize,
        "accumulator width must match the table dimension"
    );
    for (e, slot) in acc.iter_mut().enumerate() {
        *slot += f64::from(w * table.value(row, e as u32));
    }
}

/// Sequential exact SLS: [`accumulate_row_exact`] over `indices` in
/// order — the single-node reference the cluster merge must reproduce
/// bit-for-bit for every shard count and placement (see
/// [`accumulate_row_exact`] for the exactness argument).
///
/// # Panics
///
/// Panics if any index is out of bounds or the weight count mismatches.
pub fn sls_reference_exact(
    table: &EmbeddingTable,
    indices: &[u64],
    weights: Option<&[f32]>,
) -> Vec<f64> {
    if let Some(w) = weights {
        assert_eq!(w.len(), indices.len(), "one weight per index required");
    }
    let mut acc = vec![0.0f64; table.dim() as usize];
    for (i, &row) in indices.iter().enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        accumulate_row_exact(&mut acc, table, row, w);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> EmbeddingTable {
        EmbeddingTable::new(2, 256, 8, 0)
    }

    #[test]
    fn empty_bag_gives_zero_vector() {
        let out = sls_reference(&table(), &[], None);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn single_row_is_identity() {
        let t = table();
        assert_eq!(sls_reference(&t, &[5], None), t.row(5));
    }

    #[test]
    fn weights_scale_rows() {
        let t = table();
        let out = sls_reference(&t, &[3], Some(&[2.0]));
        for (e, &v) in out.iter().enumerate() {
            assert_eq!(v, 2.0 * t.value(3, e as u32));
        }
    }

    #[test]
    fn incremental_accumulation_matches_reference() {
        let t = table();
        let indices = [1u64, 9, 4, 9, 200];
        let reference = sls_reference(&t, &indices, None);
        let mut acc = vec![0.0f32; t.dim() as usize];
        for &row in &indices {
            accumulate_row(&mut acc, &t, row, 1.0);
        }
        assert_eq!(acc, reference);
    }

    #[test]
    #[should_panic(expected = "one weight per index")]
    fn weight_count_mismatch_panics() {
        let _ = SlsRequest::weighted(0, vec![1, 2], vec![1.0]);
    }

    #[test]
    fn request_reports_bag_size() {
        assert_eq!(SlsRequest::new(0, vec![1, 2, 3]).bag_size(), 3);
    }

    proptest! {
        /// Splitting a bag at any point and accumulating the two halves
        /// sequentially must equal the one-shot reference — this is the
        /// invariant that lets the switch process rows as they arrive.
        #[test]
        fn prop_split_accumulation_is_exact(
            indices in proptest::collection::vec(0u64..256, 1..20),
            split in 0usize..20,
        ) {
            let t = table();
            let split = split.min(indices.len());
            let reference = sls_reference(&t, &indices, None);
            let mut acc = sls_reference(&t, &indices[..split], None);
            for &row in &indices[split..] {
                accumulate_row(&mut acc, &t, row, 1.0);
            }
            prop_assert_eq!(acc, reference);
        }

        /// The vectorizable slice-zip fold must equal the retained
        /// scalar reference bit-for-bit: unweighted, any dim in 1..256,
        /// materialized vs procedural table.
        #[test]
        fn prop_vectorized_matches_scalar_unweighted(
            dim in 1u32..256,
            indices in proptest::collection::vec(0u64..64, 1..16),
        ) {
            let mat = EmbeddingTable::new(7, 64, dim, 0);
            let proc_ = EmbeddingTable::new_procedural(7, 64, dim, 0);
            prop_assert!(mat.is_materialized());
            let fast = sls_reference(&mat, &indices, None);
            let scalar = sls_reference_scalar(&proc_, &indices, None);
            prop_assert_eq!(fast, scalar);
        }

        /// Same equivalence with per-row weights.
        #[test]
        fn prop_vectorized_matches_scalar_weighted(
            dim in 1u32..256,
            indices in proptest::collection::vec(0u64..64, 1..16),
            raw_weights in proptest::collection::vec(-4.0f32..4.0, 16..17),
        ) {
            let weights: Vec<f32> = raw_weights[..indices.len()].to_vec();
            let mat = EmbeddingTable::new(7, 64, dim, 0);
            let proc_ = EmbeddingTable::new_procedural(7, 64, dim, 0);
            let fast = sls_reference(&mat, &indices, Some(&weights));
            let scalar = sls_reference_scalar(&proc_, &indices, Some(&weights));
            prop_assert_eq!(fast, scalar);
        }

        /// Every dispatch tier — forced scalar, 4-lane and 8-lane —
        /// must equal the scalar reference *bit-for-bit* (not
        /// approximately) across dims 1..256, weighted and unweighted,
        /// on materialized and procedural tables alike.
        #[test]
        fn prop_forced_tiers_match_scalar_reference(
            dim in 1u32..256,
            indices in proptest::collection::vec(0u64..64, 1..16),
            raw_weights in proptest::collection::vec(-4.0f32..4.0, 16..17),
        ) {
            let weights: Vec<f32> = raw_weights[..indices.len()].to_vec();
            let mat = EmbeddingTable::new(7, 64, dim, 0);
            let proc_ = EmbeddingTable::new_procedural(7, 64, dim, 0);
            prop_assert!(mat.is_materialized());
            for weighted in [false, true] {
                let ws = weighted.then_some(&weights[..]);
                let reference = sls_reference_scalar(&proc_, &indices, ws);
                for width in simd::LaneWidth::all() {
                    for table in [&mat, &proc_] {
                        let mut acc = vec![0.0f32; dim as usize];
                        for (i, &row) in indices.iter().enumerate() {
                            let w = ws.map_or(1.0, |x| x[i]);
                            accumulate_row_forced(&mut acc, table, row, w, width);
                        }
                        prop_assert_eq!(
                            &acc,
                            &reference,
                            "tier {:?} diverged (dim {}, weighted {}, materialized {})",
                            width, dim, weighted, table.is_materialized()
                        );
                    }
                }
            }
        }

        /// The exact f64 merge plane is partition-invariant: splitting a
        /// bag across k "shards" (any assignment), folding each shard's
        /// rows in bag order, and merging the partials in shard-index
        /// order is *bit-identical* to the sequential exact reference —
        /// the associativity theorem the cluster layer rests on (see
        /// [`accumulate_row_exact`]). Weights are multiples of 2⁻¹⁰ in
        /// [-4, 4), the grid on which weighted sums stay exact.
        #[test]
        fn prop_exact_merge_is_partition_invariant(
            dim in 1u32..256,
            indices in proptest::collection::vec(0u64..64, 1..32),
            owners in proptest::collection::vec(0usize..8, 32..33),
            wticks in proptest::collection::vec(0u32..8192, 32..33),
            k in 1usize..9,
        ) {
            let weights: Vec<f32> =
                wticks[..indices.len()].iter().map(|&t| t as f32 / 1024.0 - 4.0).collect();
            for table in [
                EmbeddingTable::new(7, 64, dim, 0),
                EmbeddingTable::new_procedural(7, 64, dim, 0),
            ] {
                for weighted in [false, true] {
                    let ws = weighted.then_some(&weights[..]);
                    let reference = sls_reference_exact(&table, &indices, ws);
                    // Shard partials: each shard folds only its owned
                    // positions, preserving bag order within the shard.
                    let mut partials = vec![vec![0.0f64; dim as usize]; k];
                    for (i, &row) in indices.iter().enumerate() {
                        let w = ws.map_or(1.0, |x| x[i]);
                        accumulate_row_exact(&mut partials[owners[i] % k], &table, row, w);
                    }
                    // Fixed shard-index merge order.
                    let mut merged = vec![0.0f64; dim as usize];
                    for p in &partials {
                        for (m, v) in merged.iter_mut().zip(p) {
                            *m += v;
                        }
                    }
                    prop_assert_eq!(
                        merged, reference,
                        "exact merge diverged (dim {}, k {}, weighted {})",
                        dim, k, weighted
                    );
                }
            }
        }

        /// The exact plane agrees with the f32 [`sls_reference_scalar`]
        /// to within standard f32 accumulation error (dims 1..256,
        /// weighted and unweighted) — the bridge between the cluster's
        /// merge plane and the single-node f32 functional checksum.
        #[test]
        fn prop_exact_plane_tracks_scalar_reference(
            dim in 1u32..256,
            indices in proptest::collection::vec(0u64..64, 1..16),
            raw_weights in proptest::collection::vec(-4.0f32..4.0, 16..17),
        ) {
            let weights: Vec<f32> = raw_weights[..indices.len()].to_vec();
            let t = EmbeddingTable::new_procedural(7, 64, dim, 0);
            for weighted in [false, true] {
                let ws = weighted.then_some(&weights[..]);
                let scalar = sls_reference_scalar(&t, &indices, ws);
                let exact = sls_reference_exact(&t, &indices, ws);
                // Worst-case f32 fold error: one rounding per addition,
                // each bounded by eps × the running magnitude ≤ Σ|terms|.
                for e in 0..dim as usize {
                    let sum_abs: f64 = indices
                        .iter()
                        .enumerate()
                        .map(|(i, &row)| {
                            f64::from((ws.map_or(1.0, |x| x[i]) * t.value(row, e as u32)).abs())
                        })
                        .sum();
                    let bound = indices.len() as f64 * f64::from(f32::EPSILON) * sum_abs + 1e-12;
                    prop_assert!(
                        (f64::from(scalar[e]) - exact[e]).abs() <= bound,
                        "element {}: scalar {} vs exact {} (bound {})",
                        e, scalar[e], exact[e], bound
                    );
                }
            }
        }

        /// Where the f32 sum is itself exact — unweighted bags of ≤ 4
        /// rows, whose sums carry at most 2²⁴ units of 2⁻²² — the merged
        /// exact plane equals [`sls_reference_scalar`] bit-for-bit after
        /// the f32 cast. This is the regime in which the satellite's
        /// literal "merge equals the scalar reference" holds as stated.
        #[test]
        fn prop_exact_merge_equals_scalar_reference_on_small_bags(
            dim in 1u32..256,
            indices in proptest::collection::vec(0u64..64, 1..5),
            k in 1usize..4,
        ) {
            let t = EmbeddingTable::new_procedural(7, 64, dim, 0);
            let scalar = sls_reference_scalar(&t, &indices, None);
            let mut partials = vec![vec![0.0f64; dim as usize]; k];
            for (i, &row) in indices.iter().enumerate() {
                accumulate_row_exact(&mut partials[i % k], &t, row, 1.0);
            }
            let mut merged = vec![0.0f64; dim as usize];
            for p in &partials {
                for (m, v) in merged.iter_mut().zip(p) {
                    *m += v;
                }
            }
            let cast: Vec<f32> = merged.iter().map(|&v| v as f32).collect();
            prop_assert_eq!(cast, scalar);
        }

        /// Duplicate indices accumulate additively.
        #[test]
        fn prop_duplicates_add(row in 0u64..256, reps in 1usize..8) {
            let t = table();
            let indices = vec![row; reps];
            let out = sls_reference(&t, &indices, None);
            // Weighted single-row fetch with weight = reps is identical
            // only when the sum is exact; repeated addition of the same
            // f32 `reps` times equals reps×v for reps ≤ 8 because the
            // values carry ≤ 23 significant bits and reps is a small
            // integer… verify element 0 within one ULP instead.
            let expect = t.value(row, 0) * reps as f32;
            let got = out[0];
            prop_assert!((got - expect).abs() <= got.abs().max(expect.abs()) * f32::EPSILON * reps as f32 + f32::MIN_POSITIVE);
        }
    }
}
