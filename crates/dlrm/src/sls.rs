//! The SparseLengthSum (SLS) operator — the kernel PIFS-Rec accelerates.
//!
//! SLS gathers `bag_size` rows from an embedding table and element-wise
//! accumulates them (optionally weighted). The functional kernel here is
//! the *reference*: the host path, the in-switch accumulate logic and the
//! DIMM-side RecNMP path must all reproduce it exactly, which the
//! integration tests assert.

use crate::embedding::EmbeddingTable;

/// One SLS request: which rows of which table to accumulate.
#[derive(Debug, Clone, PartialEq)]
pub struct SlsRequest {
    /// Target table id.
    pub table: u32,
    /// Row indices to gather.
    pub indices: Vec<u64>,
    /// Optional per-row FP32 weights (same length as `indices`).
    pub weights: Option<Vec<f32>>,
}

impl SlsRequest {
    /// Creates an unweighted request.
    pub fn new(table: u32, indices: Vec<u64>) -> Self {
        SlsRequest {
            table,
            indices,
            weights: None,
        }
    }

    /// Creates a weighted request.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != indices.len()`.
    pub fn weighted(table: u32, indices: Vec<u64>, weights: Vec<f32>) -> Self {
        assert_eq!(
            indices.len(),
            weights.len(),
            "one weight per index required"
        );
        SlsRequest {
            table,
            indices,
            weights: Some(weights),
        }
    }

    /// Number of rows gathered.
    pub fn bag_size(&self) -> usize {
        self.indices.len()
    }
}

/// Reference SLS: accumulates the requested rows of `table`.
///
/// The accumulation order is the order of `indices` — all compute sites
/// in the workspace follow the same order, keeping floating-point sums
/// bit-identical across placements.
///
/// # Examples
///
/// ```
/// use dlrm::EmbeddingTable;
/// use dlrm::sls::sls_reference;
///
/// let t = EmbeddingTable::new(0, 100, 4, 0);
/// let sum = sls_reference(&t, &[1, 2], None);
/// assert_eq!(sum[0], t.value(1, 0) + t.value(2, 0));
/// ```
///
/// # Panics
///
/// Panics if any index is out of bounds or the weight count mismatches.
pub fn sls_reference(table: &EmbeddingTable, indices: &[u64], weights: Option<&[f32]>) -> Vec<f32> {
    if let Some(w) = weights {
        assert_eq!(w.len(), indices.len(), "one weight per index required");
    }
    let mut acc = vec![0.0f32; table.dim() as usize];
    for (i, &row) in indices.iter().enumerate() {
        let w = weights.map_or(1.0, |ws| ws[i]);
        accumulate_row(&mut acc, table, row, w);
    }
    acc
}

/// Folds one row into `acc` with weight `w` — the per-arrival step the
/// switch's accumulate logic performs (§IV-A5).
///
/// # Panics
///
/// Panics if `acc.len()` differs from the table dimension or `row` is out
/// of bounds.
pub fn accumulate_row(acc: &mut [f32], table: &EmbeddingTable, row: u64, w: f32) {
    assert_eq!(
        acc.len(),
        table.dim() as usize,
        "accumulator width must match the table dimension"
    );
    for (e, slot) in acc.iter_mut().enumerate() {
        *slot += w * table.value(row, e as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> EmbeddingTable {
        EmbeddingTable::new(2, 256, 8, 0)
    }

    #[test]
    fn empty_bag_gives_zero_vector() {
        let out = sls_reference(&table(), &[], None);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn single_row_is_identity() {
        let t = table();
        assert_eq!(sls_reference(&t, &[5], None), t.row(5));
    }

    #[test]
    fn weights_scale_rows() {
        let t = table();
        let out = sls_reference(&t, &[3], Some(&[2.0]));
        for (e, &v) in out.iter().enumerate() {
            assert_eq!(v, 2.0 * t.value(3, e as u32));
        }
    }

    #[test]
    fn incremental_accumulation_matches_reference() {
        let t = table();
        let indices = [1u64, 9, 4, 9, 200];
        let reference = sls_reference(&t, &indices, None);
        let mut acc = vec![0.0f32; t.dim() as usize];
        for &row in &indices {
            accumulate_row(&mut acc, &t, row, 1.0);
        }
        assert_eq!(acc, reference);
    }

    #[test]
    #[should_panic(expected = "one weight per index")]
    fn weight_count_mismatch_panics() {
        let _ = SlsRequest::weighted(0, vec![1, 2], vec![1.0]);
    }

    #[test]
    fn request_reports_bag_size() {
        assert_eq!(SlsRequest::new(0, vec![1, 2, 3]).bag_size(), 3);
    }

    proptest! {
        /// Splitting a bag at any point and accumulating the two halves
        /// sequentially must equal the one-shot reference — this is the
        /// invariant that lets the switch process rows as they arrive.
        #[test]
        fn prop_split_accumulation_is_exact(
            indices in proptest::collection::vec(0u64..256, 1..20),
            split in 0usize..20,
        ) {
            let t = table();
            let split = split.min(indices.len());
            let reference = sls_reference(&t, &indices, None);
            let mut acc = sls_reference(&t, &indices[..split], None);
            for &row in &indices[split..] {
                accumulate_row(&mut acc, &t, row, 1.0);
            }
            prop_assert_eq!(acc, reference);
        }

        /// Duplicate indices accumulate additively.
        #[test]
        fn prop_duplicates_add(row in 0u64..256, reps in 1usize..8) {
            let t = table();
            let indices = vec![row; reps];
            let out = sls_reference(&t, &indices, None);
            // Weighted single-row fetch with weight = reps is identical
            // only when the sum is exact; repeated addition of the same
            // f32 `reps` times equals reps×v for reps ≤ 8 because the
            // values carry ≤ 23 significant bits and reps is a small
            // integer… verify element 0 within one ULP instead.
            let expect = t.value(row, 0) * reps as f32;
            let got = out[0];
            prop_assert!((got - expect).abs() <= got.abs().max(expect.abs()) * f32::EPSILON * reps as f32 + f32::MIN_POSITIVE);
        }
    }
}
