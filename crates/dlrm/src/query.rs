//! Batch assembly and the two parallelization strategies of Fig 4.
//!
//! *Batch threading* assigns each CPU core a slice of the batch (every
//! core touches every table); *table threading* assigns each core a set
//! of tables (every core sees the whole batch). The characterization
//! study (Fig 5) runs both because their access patterns stress the
//! memory system differently: table threading gives each core higher
//! row-buffer locality, batch threading balances load better when tables
//! are skewed.

use serde::{Deserialize, Serialize};

/// Parallelization strategy for the embedding lookup stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadingMode {
    /// Fig 4(a): each core processes a contiguous slice of the batch.
    Batch,
    /// Fig 4(b): each core processes a subset of the tables.
    Table,
}

/// One unit of lookup work assigned to a core: a table and a sample
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Table index.
    pub table: u32,
    /// First sample (inclusive).
    pub sample_begin: u32,
    /// Last sample (exclusive).
    pub sample_end: u32,
}

impl WorkItem {
    /// Number of samples covered.
    pub fn samples(&self) -> u32 {
        self.sample_end - self.sample_begin
    }
}

/// Splits `batch` samples over `n_tables` tables across `n_cores` cores.
///
/// Returns one work list per core. Every (table, sample) pair appears in
/// exactly one item on exactly one core — a property the unit tests and
/// the cross-placement SLS equivalence tests rely on.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn partition(
    n_tables: u32,
    batch: u32,
    n_cores: u32,
    mode: ThreadingMode,
) -> Vec<Vec<WorkItem>> {
    assert!(
        n_tables > 0 && batch > 0 && n_cores > 0,
        "arguments must be positive"
    );
    let mut per_core: Vec<Vec<WorkItem>> = vec![Vec::new(); n_cores as usize];
    match mode {
        ThreadingMode::Batch => {
            // Contiguous batch slices, one slice per core, all tables.
            for core in 0..n_cores {
                let begin = (batch as u64 * core as u64 / n_cores as u64) as u32;
                let end = (batch as u64 * (core as u64 + 1) / n_cores as u64) as u32;
                if begin == end {
                    continue;
                }
                for table in 0..n_tables {
                    per_core[core as usize].push(WorkItem {
                        table,
                        sample_begin: begin,
                        sample_end: end,
                    });
                }
            }
        }
        ThreadingMode::Table => {
            // Tables round-robin over cores, full batch each.
            for table in 0..n_tables {
                let core = (table % n_cores) as usize;
                per_core[core].push(WorkItem {
                    table,
                    sample_begin: 0,
                    sample_end: batch,
                });
            }
        }
    }
    per_core
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn coverage(parts: &[Vec<WorkItem>], n_tables: u32, batch: u32) -> HashSet<(u32, u32)> {
        let mut seen = HashSet::new();
        for core in parts {
            for item in core {
                for s in item.sample_begin..item.sample_end {
                    assert!(
                        seen.insert((item.table, s)),
                        "duplicate (table {}, sample {s})",
                        item.table
                    );
                }
            }
        }
        assert_eq!(seen.len() as u64, n_tables as u64 * batch as u64);
        seen
    }

    #[test]
    fn batch_threading_covers_every_pair_once() {
        let parts = partition(4, 100, 3, ThreadingMode::Batch);
        coverage(&parts, 4, 100);
    }

    #[test]
    fn table_threading_covers_every_pair_once() {
        let parts = partition(7, 64, 4, ThreadingMode::Table);
        coverage(&parts, 7, 64);
    }

    #[test]
    fn batch_threading_balances_samples() {
        let parts = partition(2, 99, 4, ThreadingMode::Batch);
        let loads: Vec<u32> = parts
            .iter()
            .map(|c| c.iter().map(WorkItem::samples).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max - min <= 2, "unbalanced: {loads:?}");
    }

    #[test]
    fn table_threading_keeps_a_table_on_one_core() {
        let parts = partition(8, 32, 4, ThreadingMode::Table);
        for (core_idx, core) in parts.iter().enumerate() {
            for item in core {
                assert_eq!(item.table % 4, core_idx as u32);
                assert_eq!(item.samples(), 32);
            }
        }
    }

    #[test]
    fn more_cores_than_work_leaves_some_idle() {
        let parts = partition(2, 1, 8, ThreadingMode::Table);
        let busy = parts.iter().filter(|c| !c.is_empty()).count();
        assert_eq!(busy, 2);
        coverage(&parts, 2, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cores_rejected() {
        let _ = partition(1, 1, 0, ThreadingMode::Batch);
    }
}
