//! CAPEX/OPEX bill-of-materials for the Fig 16 TCO comparison.
//!
//! §VI-E: "Traditional setups involve a CPU in the GPU server along with
//! NICs and a network switch. PIFS-Rec uses a CPU and fabric switch."
//! The paper's worked example: RMC4 on a 2 TB system costs $27,769 to
//! build with PIFS-Rec vs $57,639 for a single-GPU parameter server.

use serde::{Deserialize, Serialize};

use crate::parts;

/// A complete system bill of materials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemBom {
    /// Descriptive name.
    pub kind: BomKind,
    /// Capital expenditure, USD.
    pub capex_usd: f64,
    /// Steady-state power draw, watts.
    pub power_w: f64,
}

/// Which architecture a BOM describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BomKind {
    /// GPU parameter server with `n` GPUs.
    GpuParameterServer,
    /// PIFS-Rec: CPU + fabric switch + tiered memory.
    PifsRec,
}

/// CAPEX + 3-year OPEX.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoReport {
    /// The system.
    pub bom: SystemBom,
    /// 3-year energy cost, USD.
    pub opex_usd: f64,
}

impl TcoReport {
    /// Total cost of ownership.
    pub fn total_usd(&self) -> f64 {
        self.bom.capex_usd + self.opex_usd
    }
}

impl SystemBom {
    /// A traditional GPU parameter server: CPU + memory (DDR5) + one NIC
    /// per GPU + network switch + the GPUs.
    pub fn gpu_server(n_gpus: u32, memory_gb: u64) -> SystemBom {
        let n = n_gpus as f64;
        let capex = parts::SERVER_CPU.price_usd
            + memory_gb as f64 * parts::DDR5_PER_GB.price_usd
            + n * parts::NIC.price_usd
            + parts::NETWORK_SWITCH.price_usd
            + n * parts::GPU_A100.price_usd;
        let power = parts::SERVER_CPU.tdp_w
            + memory_gb as f64 * parts::DDR5_PER_GB.tdp_w
            + n * parts::NIC.tdp_w
            + parts::NETWORK_SWITCH.tdp_w
            + n * parts::GPU_A100.tdp_w;
        SystemBom {
            kind: BomKind::GpuParameterServer,
            capex_usd: capex,
            power_w: power,
        }
    }

    /// A PIFS-Rec system: CPU + fabric switch + a local DDR5 tier plus a
    /// CXL DDR4 pool. §VI-E conservatively books CXL memory at 90 % of
    /// local DRAM power.
    pub fn pifs_rec(local_gb: u64, cxl_gb: u64) -> SystemBom {
        let capex = parts::SERVER_CPU.price_usd
            + parts::FABRIC_SWITCH.price_usd
            + local_gb as f64 * parts::DDR5_PER_GB.price_usd
            + cxl_gb as f64 * parts::DDR4_PER_GB.price_usd;
        let power = parts::SERVER_CPU.tdp_w
            + parts::FABRIC_SWITCH.tdp_w
            + local_gb as f64 * parts::DDR5_PER_GB.tdp_w
            + cxl_gb as f64 * parts::DDR4_PER_GB.tdp_w * 0.9;
        SystemBom {
            kind: BomKind::PifsRec,
            capex_usd: capex,
            power_w: power,
        }
    }

    /// CAPEX plus three years of energy.
    pub fn tco(&self) -> TcoReport {
        TcoReport {
            bom: *self,
            opex_usd: parts::opex_usd(self.power_w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pifs_2tb_build_cost_matches_the_papers_ballpark() {
        // §VI-E: "deploying RMC4 on a 2TB system with 64GB DIMMs requires
        // $27,769 to build a PIFS-Rec system". 2 TB split 20/80 across
        // DDR5/DDR4 lands in that neighbourhood.
        let bom = SystemBom::pifs_rec(410, 1638);
        assert!(
            (20_000.0..36_000.0).contains(&bom.capex_usd),
            "capex={}",
            bom.capex_usd
        );
    }

    #[test]
    fn single_gpu_2tb_server_matches_the_papers_ballpark() {
        // §VI-E: "a parameter server with a single GPU costs $57,639".
        let bom = SystemBom::gpu_server(1, 2048);
        assert!(
            (48_000.0..66_000.0).contains(&bom.capex_usd),
            "capex={}",
            bom.capex_usd
        );
    }

    #[test]
    fn pifs_is_cheaper_than_any_gpu_config() {
        let pifs = SystemBom::pifs_rec(410, 1638).tco();
        for n in 1..=4 {
            let gpu = SystemBom::gpu_server(n, 2048).tco();
            assert!(pifs.total_usd() < gpu.total_usd(), "n={n}");
        }
    }

    #[test]
    fn opex_savings_are_thousands_over_three_years() {
        // §VI-E: "PIFS-Rec can save an additional $2,332.14 in OPEX over
        // three years" — reproduced against the 4-GPU configuration.
        let pifs = SystemBom::pifs_rec(410, 1638).tco();
        let gpu = SystemBom::gpu_server(4, 2048).tco();
        let saving = gpu.opex_usd - pifs.opex_usd;
        assert!((1_500.0..3_500.0).contains(&saving), "saving={saving}");
    }

    #[test]
    fn gpu_capex_scales_with_gpu_count() {
        let one = SystemBom::gpu_server(1, 2048).capex_usd;
        let four = SystemBom::gpu_server(4, 2048).capex_usd;
        assert!(
            (four - one - 3.0 * (parts::GPU_A100.price_usd + parts::NIC.price_usd)).abs() < 1.0
        );
    }
}
