//! Table III: hardware specifications, TDP, and unit prices.

use serde::{Deserialize, Serialize};

/// One catalogue entry from Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Part {
    /// Short name.
    pub name: &'static str,
    /// Thermal design power in watts.
    pub tdp_w: f64,
    /// Unit price in USD ("subject to market fluctuations", per the
    /// paper's own disclaimer).
    pub price_usd: f64,
}

/// AMD EPYC 9654, 96C @ 2.4 GHz: 360 W, $4,695.
pub const SERVER_CPU: Part = Part {
    name: "AMD EPYC 9654",
    tdp_w: 360.0,
    price_usd: 4_695.0,
};

/// DDR4 (DIMM & CXL memory): $4.90/GB, 21.6 W per 64 GB DIMM.
pub const DDR4_PER_GB: Part = Part {
    name: "DDR4 per GB",
    tdp_w: 21.6 / 64.0,
    price_usd: 4.90,
};

/// DDR5: $11.25/GB, 24 W per 64 GB DIMM.
pub const DDR5_PER_GB: Part = Part {
    name: "DDR5 per GB",
    tdp_w: 24.0 / 64.0,
    price_usd: 11.25,
};

/// NVIDIA ConnectX-6 200 Gbps IB NIC: 23.6 W, $1,900.
pub const NIC: Part = Part {
    name: "ConnectX-6 NIC",
    tdp_w: 23.6,
    price_usd: 1_900.0,
};

/// Juniper QFX10002-36Q 100 Gbps network switch: 360 W, $11,899.
pub const NETWORK_SWITCH: Part = Part {
    name: "Juniper QFX10002",
    tdp_w: 360.0,
    price_usd: 11_899.0,
};

/// Tofino-class switch with processing units (the fabric-switch cost
/// stand-in): 400 W, $13,039.
pub const FABRIC_SWITCH: Part = Part {
    name: "Switch + PUs (Tofino)",
    tdp_w: 400.0,
    price_usd: 13_039.0,
};

/// NVIDIA A100 80 GB PCIe: 300 W, $18,900.
pub const GPU_A100: Part = Part {
    name: "NVIDIA A100 80GB",
    tdp_w: 300.0,
    price_usd: 18_900.0,
};

/// Electricity price used for OPEX, $ per kWh (§VI-E).
pub const USD_PER_KWH: f64 = 0.05;

/// OPEX horizon in years (§VI-E: "three years of power usage").
pub const OPEX_YEARS: f64 = 3.0;

/// Datacenter power-usage-effectiveness: every IT watt costs ~1.3 W at
/// the meter (cooling + distribution).
pub const PUE: f64 = 1.3;

/// Energy cost of running `watts` of IT load continuously for the OPEX
/// horizon, including PUE.
pub fn opex_usd(watts: f64) -> f64 {
    let hours = OPEX_YEARS * 365.0 * 24.0;
    watts * PUE / 1000.0 * hours * USD_PER_KWH
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table3() {
        assert_eq!(SERVER_CPU.price_usd, 4_695.0);
        assert_eq!(GPU_A100.price_usd, 18_900.0);
        assert_eq!(FABRIC_SWITCH.tdp_w, 400.0);
        assert_eq!(DDR5_PER_GB.price_usd, 11.25);
        let (ddr4, ddr5) = (DDR4_PER_GB.price_usd, DDR5_PER_GB.price_usd);
        assert!(ddr4 < ddr5);
    }

    #[test]
    fn opex_arithmetic() {
        // 1 kW IT for 3 years at $0.05/kWh with PUE 1.3:
        // 26280 h × 1.3 kW × 0.05 ≈ $1708.
        let usd = opex_usd(1000.0);
        assert!((usd - 1708.2).abs() < 1.0, "got {usd}");
    }

    #[test]
    fn zero_power_costs_nothing() {
        assert_eq!(opex_usd(0.0), 0.0);
    }
}
