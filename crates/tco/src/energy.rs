//! System energy model (§VI-D): per-operation energy of an SLS pipeline
//! on a conventional DIMM + CPU host versus PIFS-Rec.
//!
//! The dominant term in bandwidth-bound workloads is data movement:
//! every byte that crosses a longer wire costs more picojoules. The
//! paper's Cacti-3DD/Cacti-IO-derived result is a 15.3 % average energy
//! reduction for PIFS-Rec over the DIMM + CPU baseline, mostly because
//! accumulated *results* (one row per bag) travel to the host instead of
//! every candidate row.

use dlrm::ModelConfig;
use serde::{Deserialize, Serialize};

/// Energy coefficients in picojoules per byte moved / per FLOP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// DRAM array access, pJ/B.
    pub dram_pj_per_byte: f64,
    /// Off-chip DDR bus transfer, pJ/B (Cacti-IO territory).
    pub ddr_io_pj_per_byte: f64,
    /// CXL/PCIe SerDes transfer, pJ/B.
    pub cxl_io_pj_per_byte: f64,
    /// CPU core energy per accumulate FLOP, pJ.
    pub cpu_flop_pj: f64,
    /// Switch process-core energy per accumulate FLOP, pJ.
    pub pc_flop_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dram_pj_per_byte: 4.0,
            ddr_io_pj_per_byte: 6.0,
            cxl_io_pj_per_byte: 5.0,
            cpu_flop_pj: 10.0,
            pc_flop_pj: 1.0,
        }
    }
}

impl EnergyModel {
    /// Energy (nJ) for one bag on the DIMM + CPU baseline: every row is
    /// read from DRAM, crosses the DDR bus, and is folded on a big
    /// out-of-order core.
    pub fn baseline_bag_nj(&self, model: &ModelConfig) -> f64 {
        let row = model.row_bytes() as f64;
        let rows = model.bag_size as f64;
        let flops = rows * model.emb_dim as f64;
        let per_row = row * (self.dram_pj_per_byte + self.ddr_io_pj_per_byte);
        (rows * per_row + flops * self.cpu_flop_pj) / 1000.0
    }

    /// Energy (nJ) for one bag on PIFS-Rec: rows move only DRAM → switch
    /// over the short downstream hop; one result row crosses to the
    /// host; folds happen in the lean process core.
    pub fn pifs_bag_nj(&self, model: &ModelConfig) -> f64 {
        let row = model.row_bytes() as f64;
        let rows = model.bag_size as f64;
        let flops = rows * model.emb_dim as f64;
        let rows_to_switch = rows * row * (self.dram_pj_per_byte + self.cxl_io_pj_per_byte);
        let result_to_host = row * self.cxl_io_pj_per_byte;
        (rows_to_switch + result_to_host + flops * self.pc_flop_pj) / 1000.0
    }

    /// Fractional energy saving of PIFS-Rec over the baseline.
    pub fn saving_frac(&self, model: &ModelConfig) -> f64 {
        let b = self.baseline_bag_nj(model);
        (b - self.pifs_bag_nj(model)) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_is_near_the_papers_15_percent() {
        // §VI-D: "PIFS-Rec reduces the energy consumption by 15.3% on
        // average" vs conventional DIMM + CPU.
        let m = EnergyModel::default();
        let avg: f64 = ModelConfig::all()
            .iter()
            .map(|cfg| m.saving_frac(cfg))
            .sum::<f64>()
            / 4.0;
        assert!((0.10..0.22).contains(&avg), "avg saving = {avg}");
    }

    #[test]
    fn both_paths_cost_positive_energy() {
        let m = EnergyModel::default();
        let cfg = ModelConfig::rmc2();
        assert!(m.baseline_bag_nj(&cfg) > 0.0);
        assert!(m.pifs_bag_nj(&cfg) > 0.0);
        assert!(m.pifs_bag_nj(&cfg) < m.baseline_bag_nj(&cfg));
    }

    #[test]
    fn bigger_rows_cost_more_energy() {
        let m = EnergyModel::default();
        assert!(m.baseline_bag_nj(&ModelConfig::rmc4()) > m.baseline_bag_nj(&ModelConfig::rmc1()));
    }
}
