//! `tco` — cost, power, area, and energy models for §VI-D/E.
//!
//! Everything here is analytical, seeded with the paper's own reported
//! constants: Table III's component catalogue, Fig 18's synthesized
//! power/area numbers, and the §VI-E TCO assumptions (three years of
//! OPEX at $0.05/kWh).

pub mod capex;
pub mod energy;
pub mod parts;
pub mod power;

pub use capex::{SystemBom, TcoReport};
pub use energy::EnergyModel;
pub use parts::Part;
pub use power::{BlockCost, HardwareOverheads};
