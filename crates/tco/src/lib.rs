//! `tco` — cost, power, area, and energy models for §VI-D/E.
//!
//! Everything here is analytical, seeded with the paper's own reported
//! constants: Table III's component catalogue, Fig 18's synthesized
//! power/area numbers, and the §VI-E TCO assumptions (three years of
//! OPEX at $0.05/kWh). No simulation is involved — these models close
//! the paper's economic argument on top of the performance results:
//!
//! * [`SystemBom`] / [`TcoReport`] — bill-of-materials capex for a
//!   PIFS-Rec pod or an N-GPU server, plus the three-year
//!   capex + energy-opex total (Fig 16);
//! * [`Part`] — the Table III component catalogue with unit prices;
//! * [`HardwareOverheads`] / [`BlockCost`] — synthesized power and area
//!   of the process core, control logic, and on-switch buffer, with the
//!   RecNMP ×8 comparison ratios (Fig 18);
//! * [`EnergyModel`] — per-bag energy of the DIMM+CPU baseline vs the
//!   in-fabric datapath (§VI-D's −15.3 % average saving).
//!
//! # Examples
//!
//! ```
//! use tco::SystemBom;
//!
//! let pifs = SystemBom::pifs_rec(64, 256).tco();
//! let gpu = SystemBom::gpu_server(2, 320).tco();
//! assert!(pifs.total_usd() < gpu.total_usd());
//! ```

#![warn(missing_docs)]

pub mod capex;
pub mod energy;
pub mod parts;
pub mod power;

pub use capex::{SystemBom, TcoReport};
pub use energy::EnergyModel;
pub use parts::Part;
pub use power::{BlockCost, HardwareOverheads};
