//! Fig 18: synthesized power and area of the PIFS-Rec switch logic.
//!
//! The paper synthesizes the design with Synopsys DC at 1 GHz on a 45 nm
//! process and compares against RecNMP's published numbers mapped to the
//! same process.

use serde::Serialize;

/// Power (mW) and area (µm²) of one block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BlockCost {
    /// Block name.
    pub name: &'static str,
    /// Power in milliwatts.
    pub power_mw: f64,
    /// Area in square micrometres.
    pub area_um2: f64,
}

/// The Fig 18 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HardwareOverheads {
    /// Process Core: 9.3 mW / 33 709 µm².
    pub process_core: BlockCost,
    /// Control logic + registers: 3.2 mW / 73 114 µm².
    pub control: BlockCost,
    /// On-switch buffer (512 KB SRAM): 15.2 mW / 2.38 mm².
    pub buffer: BlockCost,
    /// RecNMP-base (×8) reference: 75.4 mW / 215 984 µm² **plus** its
    /// cache buffer (the paper's area claim is "with the same cache
    /// buffer", so the SRAM cancels on both sides).
    pub recnmp_x8: BlockCost,
}

impl Default for HardwareOverheads {
    fn default() -> Self {
        HardwareOverheads {
            process_core: BlockCost {
                name: "Process Core",
                power_mw: 9.3,
                area_um2: 33_709.0,
            },
            control: BlockCost {
                name: "Control Logic + Registers",
                power_mw: 3.2,
                area_um2: 73_114.0,
            },
            buffer: BlockCost {
                name: "On Switch Buffer",
                power_mw: 15.2,
                area_um2: 2_380_000.0,
            },
            recnmp_x8: BlockCost {
                name: "RecNMP-base (X8)",
                power_mw: 75.4,
                area_um2: 215_984.0,
            },
        }
    }
}

impl HardwareOverheads {
    /// Total PIFS-Rec switch-logic power (mW), including the buffer.
    pub fn pifs_total_power_mw(&self) -> f64 {
        self.process_core.power_mw + self.control.power_mw + self.buffer.power_mw
    }

    /// PIFS-Rec compute-logic area (µm²), excluding the SRAM buffer —
    /// the like-for-like comparison the paper draws ("with the same
    /// cache buffer").
    pub fn pifs_logic_area_um2(&self) -> f64 {
        self.process_core.area_um2 + self.control.area_um2
    }

    /// Power advantage over RecNMP×8 (paper: "reduces the power 2.7×").
    pub fn power_ratio_vs_recnmp(&self) -> f64 {
        self.recnmp_x8.power_mw / self.pifs_total_power_mw()
    }

    /// Area advantage over RecNMP×8 at equal buffering (paper: "2.02×
    /// less area").
    pub fn area_ratio_vs_recnmp(&self) -> f64 {
        self.recnmp_x8.area_um2 / self.pifs_logic_area_um2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_fig18() {
        let hw = HardwareOverheads::default();
        assert!((hw.pifs_total_power_mw() - 27.7).abs() < 0.05);
        assert!((hw.pifs_logic_area_um2() - 106_823.0).abs() < 1.0);
    }

    #[test]
    fn power_ratio_is_about_2_7x() {
        let r = HardwareOverheads::default().power_ratio_vs_recnmp();
        assert!((2.4..3.0).contains(&r), "ratio={r}");
    }

    #[test]
    fn area_ratio_is_about_2x() {
        let r = HardwareOverheads::default().area_ratio_vs_recnmp();
        assert!((1.8..2.3).contains(&r), "ratio={r}");
    }
}
