//! Multi-switch fabric topologies for the §IV-C scale-up study.
//!
//! CXL 3.0 permits non-tree fabrics; the paper's Fig 13(c) experiment
//! assumes fully connected switches, each with one local host and one
//! local Type 3 device, paying an extra 100 ns per inter-switch hop.

use serde::{Deserialize, Serialize};
use simkit::SimDuration;

use crate::link::CxlParams;

/// Identifies one fabric switch in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwitchId(pub u16);

/// A fully connected multi-switch fabric.
///
/// # Examples
///
/// ```
/// use cxlsim::{CxlParams, SwitchId, Topology};
///
/// let topo = Topology::fully_connected(4, CxlParams::default());
/// assert_eq!(topo.hops(SwitchId(0), SwitchId(0)), 0);
/// assert_eq!(topo.hops(SwitchId(0), SwitchId(3)), 1);
/// assert_eq!(topo.hop_latency(SwitchId(0), SwitchId(3)).as_ns(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    n_switches: u16,
    params: CxlParams,
    /// device index → owning switch
    device_home: Vec<SwitchId>,
    /// host index → local switch
    host_home: Vec<SwitchId>,
}

impl Topology {
    /// A single-switch topology (CXL 2.0 style): all hosts and devices on
    /// one switch.
    pub fn single_switch(n_devices: usize, n_hosts: usize, params: CxlParams) -> Self {
        Topology {
            n_switches: 1,
            params,
            device_home: vec![SwitchId(0); n_devices],
            host_home: vec![SwitchId(0); n_hosts],
        }
    }

    /// A fully connected fabric of `n` switches, each with one host and
    /// one device (the Fig 13(c) configuration: "each fabric switch has
    /// one local CXL memory and one host").
    pub fn fully_connected(n: u16, params: CxlParams) -> Self {
        assert!(n >= 1, "need at least one switch");
        Topology {
            n_switches: n,
            params,
            device_home: (0..n).map(SwitchId).collect(),
            host_home: (0..n).map(SwitchId).collect(),
        }
    }

    /// A custom assignment of devices and hosts to switches.
    ///
    /// # Panics
    ///
    /// Panics if any assignment references a switch ≥ `n_switches`.
    pub fn custom(
        n_switches: u16,
        device_home: Vec<SwitchId>,
        host_home: Vec<SwitchId>,
        params: CxlParams,
    ) -> Self {
        assert!(
            device_home
                .iter()
                .chain(&host_home)
                .all(|s| s.0 < n_switches),
            "assignment references a nonexistent switch"
        );
        Topology {
            n_switches,
            params,
            device_home,
            host_home,
        }
    }

    /// Number of switches.
    pub fn n_switches(&self) -> u16 {
        self.n_switches
    }

    /// Number of devices in the fabric.
    pub fn n_devices(&self) -> usize {
        self.device_home.len()
    }

    /// Number of hosts in the fabric.
    pub fn n_hosts(&self) -> usize {
        self.host_home.len()
    }

    /// Switch owning device `dev`.
    pub fn device_switch(&self, dev: usize) -> SwitchId {
        self.device_home[dev]
    }

    /// Switch local to host `host`.
    pub fn host_switch(&self, host: usize) -> SwitchId {
        self.host_home[host]
    }

    /// Inter-switch hop count (0 or 1 in a fully connected fabric).
    pub fn hops(&self, a: SwitchId, b: SwitchId) -> u32 {
        u32::from(a != b)
    }

    /// Extra latency for traversing from switch `a` to switch `b`.
    pub fn hop_latency(&self, a: SwitchId, b: SwitchId) -> SimDuration {
        SimDuration::from_ns(self.params.inter_switch_ns * self.hops(a, b) as u64)
    }

    /// Devices homed on switch `s`.
    pub fn devices_on(&self, s: SwitchId) -> Vec<usize> {
        self.device_home
            .iter()
            .enumerate()
            .filter_map(|(i, &h)| (h == s).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_has_no_hops() {
        let t = Topology::single_switch(8, 2, CxlParams::default());
        assert_eq!(t.n_switches(), 1);
        assert_eq!(t.hops(SwitchId(0), SwitchId(0)), 0);
        assert_eq!(t.device_switch(7), SwitchId(0));
        assert_eq!(t.devices_on(SwitchId(0)).len(), 8);
    }

    #[test]
    fn fully_connected_pairs_host_and_device_per_switch() {
        let t = Topology::fully_connected(4, CxlParams::default());
        assert_eq!(t.n_devices(), 4);
        assert_eq!(t.n_hosts(), 4);
        for i in 0..4 {
            assert_eq!(t.device_switch(i), SwitchId(i as u16));
            assert_eq!(t.host_switch(i), SwitchId(i as u16));
        }
    }

    #[test]
    fn remote_hop_costs_inter_switch_latency() {
        let p = CxlParams::default();
        let t = Topology::fully_connected(2, p);
        assert_eq!(
            t.hop_latency(SwitchId(0), SwitchId(1)),
            SimDuration::from_ns(p.inter_switch_ns)
        );
        assert_eq!(t.hop_latency(SwitchId(1), SwitchId(1)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "nonexistent switch")]
    fn custom_rejects_bad_assignment() {
        let _ = Topology::custom(
            2,
            vec![SwitchId(0), SwitchId(5)],
            vec![SwitchId(0)],
            CxlParams::default(),
        );
    }
}
