//! Bit-level model of the enhanced CXL.mem M2S request (Fig 9).
//!
//! The paper keeps the standard CXL 3.0 M2S layout and claims two slots
//! of slack: a `sumtag` identifying which accumulation cluster a row
//! fetch belongs to, a 3-bit `vectorsize` giving the row width in 16 B
//! chunks, and — for `Configuration` instructions — a
//! `SumCandidateCount` saying how many rows form one accumulation. The
//! SPID is rewritten by the fabric switch during instruction repacking so
//! retrieved data lands in the switch instead of the host (§IV-A2).
//!
//! This module packs those fields into a `u128` with a fixed layout so
//! tests can check exact bit behaviour and the codec bench has something
//! real to measure.

use serde::{Deserialize, Serialize};

use crate::opcode::{DecodeOpcodeError, MemOpcode};

/// Field widths (bits), one concrete realization of Fig 9.
const VALID_BITS: u32 = 1;
const OPCODE_BITS: u32 = 4;
const META_BITS: u32 = 7; // ST, MF, MV
const TAG_BITS: u32 = 16;
const ADDR_BITS: u32 = 47;
const SPID_BITS: u32 = 12;
const DPID_BITS: u32 = 12;
const SUMTAG_BITS: u32 = 9;
const VSIZE_BITS: u32 = 3;
const SCC_BITS: u32 = 9;
const CNV_BITS: u32 = 1;

/// Field bit offsets, hoisted to compile-time constants so the codec —
/// in particular the batched per-slab loops — carries no runtime offset
/// accumulation or closure state per instruction.
const VALID_OFF: u32 = 0;
const OPCODE_OFF: u32 = VALID_OFF + VALID_BITS;
const META_OFF: u32 = OPCODE_OFF + OPCODE_BITS;
const TAG_OFF: u32 = META_OFF + META_BITS;
const ADDR_OFF: u32 = TAG_OFF + TAG_BITS;
const SPID_OFF: u32 = ADDR_OFF + ADDR_BITS;
const DPID_OFF: u32 = SPID_OFF + SPID_BITS;
const SUMTAG_OFF: u32 = DPID_OFF + DPID_BITS;
const VSIZE_OFF: u32 = SUMTAG_OFF + SUMTAG_BITS;
const SCC_OFF: u32 = VSIZE_OFF + VSIZE_BITS;
const CNV_OFF: u32 = SCC_OFF + SCC_BITS;

/// Extracts one field from a packed request word.
#[inline(always)]
const fn field(bits: u128, off: u32, nbits: u32) -> u128 {
    (bits >> off) & mask128(nbits)
}

/// An enhanced CXL.mem Master-to-Subordinate request.
///
/// # Examples
///
/// ```
/// use cxlsim::{M2sReq, MemOpcode};
///
/// let req = M2sReq::data_fetch(0xBEEF00, /*sumtag=*/5, /*chunks=*/4, /*spid=*/1);
/// assert_eq!(req.vector_bytes(), 64);
/// let bits = req.encode();
/// assert_eq!(M2sReq::decode(bits).unwrap(), req);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct M2sReq {
    /// Valid bit.
    pub valid: bool,
    /// Memory opcode.
    pub opcode: MemOpcode,
    /// ST/MF/MV metadata bits (opaque to this model).
    pub meta: u8,
    /// Transaction tag.
    pub tag: u16,
    /// 47-bit physical address (row address for `DataFetch`, result
    /// address for `Configuration`).
    pub address: u64,
    /// Source port id — the requester. Rewritten from host to switch
    /// during instruction repacking.
    pub spid: u16,
    /// Destination port id (fabric-switch-issued requests only).
    pub dpid: u16,
    /// Accumulation cluster id.
    pub sum_tag: u16,
    /// Row vector size, encoded as (16 B chunks − 1); 0 ⇒ 16 B, 7 ⇒ 128 B.
    pub vector_size: u8,
    /// For `Configuration`: number of row candidates in the cluster.
    pub sum_candidate_count: u16,
    /// Compute-Node-Valid: whether the issuing switch has a process core
    /// (read during scale-up configuration, §IV-C2).
    pub cnv: bool,
}

/// Error decoding a packed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field held an undefined pattern.
    BadOpcode(DecodeOpcodeError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(e) => write!(f, "invalid M2S request: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl M2sReq {
    /// Builds a standard CXL.mem read issued by `spid` for `address`.
    pub fn mem_read(address: u64, spid: u16) -> Self {
        M2sReq {
            valid: true,
            opcode: MemOpcode::MemRd,
            meta: 0,
            tag: 0,
            address: address & mask64(ADDR_BITS),
            spid,
            dpid: 0,
            sum_tag: 0,
            vector_size: 0,
            sum_candidate_count: 0,
            cnv: false,
        }
    }

    /// Builds a `DataFetch` for one row vector of `chunks` 16 B chunks
    /// belonging to accumulation cluster `sum_tag`.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is 0 or greater than 8 (the 3-bit field limit).
    pub fn data_fetch(address: u64, sum_tag: u16, chunks: u8, spid: u16) -> Self {
        assert!(
            (1..=8).contains(&chunks),
            "vectorsize supports 1–8 16B chunks, got {chunks}"
        );
        M2sReq {
            valid: true,
            opcode: MemOpcode::DataFetch,
            meta: 0,
            tag: 0,
            address: address & mask64(ADDR_BITS),
            spid,
            dpid: 0,
            sum_tag,
            vector_size: chunks - 1,
            sum_candidate_count: 0,
            cnv: false,
        }
    }

    /// Builds a `Configuration` instruction declaring that cluster
    /// `sum_tag` accumulates `candidates` rows and that the result goes
    /// to `result_address` (the re-purposed address field, §IV-A3).
    pub fn configuration(result_address: u64, sum_tag: u16, candidates: u16, spid: u16) -> Self {
        M2sReq {
            valid: true,
            opcode: MemOpcode::Configuration,
            meta: 0,
            tag: 0,
            address: result_address & mask64(ADDR_BITS),
            spid,
            dpid: 0,
            sum_tag,
            vector_size: 0,
            sum_candidate_count: candidates & mask16(SCC_BITS),
            cnv: false,
        }
    }

    /// Row vector size in bytes.
    pub fn vector_bytes(&self) -> u64 {
        (self.vector_size as u64 + 1) * 16
    }

    /// Instruction repacking (§IV-A2): converts a `DataFetch` into the
    /// standard read the end device understands, rewriting the SPID so
    /// the data returns to the fabric switch instead of the host, and
    /// stamping the destination port.
    pub fn repack_for_device(&self, switch_spid: u16, device_dpid: u16) -> M2sReq {
        M2sReq {
            opcode: MemOpcode::MemRd,
            spid: switch_spid,
            dpid: device_dpid,
            ..*self
        }
    }

    /// Packs the request into a 121-bit little-endian layout inside a
    /// `u128`. Every shift and mask is a compile-time constant.
    #[inline]
    pub fn encode(&self) -> u128 {
        ((self.valid as u128) << VALID_OFF)
            | (((self.opcode.bits() as u128) & mask128(OPCODE_BITS)) << OPCODE_OFF)
            | (((self.meta as u128) & mask128(META_BITS)) << META_OFF)
            | ((self.tag as u128) << TAG_OFF)
            | (((self.address as u128) & mask128(ADDR_BITS)) << ADDR_OFF)
            | (((self.spid as u128) & mask128(SPID_BITS)) << SPID_OFF)
            | (((self.dpid as u128) & mask128(DPID_BITS)) << DPID_OFF)
            | (((self.sum_tag as u128) & mask128(SUMTAG_BITS)) << SUMTAG_OFF)
            | (((self.vector_size as u128) & mask128(VSIZE_BITS)) << VSIZE_OFF)
            | (((self.sum_candidate_count as u128) & mask128(SCC_BITS)) << SCC_OFF)
            | ((self.cnv as u128) << CNV_OFF)
    }

    /// Unpacks a request previously produced by [`M2sReq::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadOpcode`] if the opcode field is invalid.
    #[inline]
    pub fn decode(bits: u128) -> Result<Self, DecodeError> {
        let opcode = MemOpcode::from_bits(field(bits, OPCODE_OFF, OPCODE_BITS) as u8)
            .map_err(DecodeError::BadOpcode)?;
        Ok(M2sReq {
            valid: field(bits, VALID_OFF, VALID_BITS) != 0,
            opcode,
            meta: field(bits, META_OFF, META_BITS) as u8,
            tag: field(bits, TAG_OFF, TAG_BITS) as u16,
            address: field(bits, ADDR_OFF, ADDR_BITS) as u64,
            spid: field(bits, SPID_OFF, SPID_BITS) as u16,
            dpid: field(bits, DPID_OFF, DPID_BITS) as u16,
            sum_tag: field(bits, SUMTAG_OFF, SUMTAG_BITS) as u16,
            vector_size: field(bits, VSIZE_OFF, VSIZE_BITS) as u8,
            sum_candidate_count: field(bits, SCC_OFF, SCC_BITS) as u16,
            cnv: field(bits, CNV_OFF, CNV_BITS) != 0,
        })
    }

    /// Packs a whole instruction stream into `out` (cleared first), one
    /// slab word per request. This is the batched form the switch-compute
    /// path issues a `DataFetch` burst with: one reserve, then a tight
    /// constant-shift loop.
    pub fn encode_batch(reqs: &[M2sReq], out: &mut Vec<u128>) {
        out.clear();
        out.reserve(reqs.len());
        out.extend(reqs.iter().map(M2sReq::encode));
    }

    /// Unpacks a slab previously produced by [`M2sReq::encode_batch`]
    /// into `out` (cleared first). All-or-nothing: on a decode error
    /// `out` is left empty so a half-decoded burst can never be consumed.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] hit in the slab.
    pub fn decode_batch(slab: &[u128], out: &mut Vec<M2sReq>) -> Result<(), DecodeError> {
        out.clear();
        out.reserve(slab.len());
        for &bits in slab {
            match M2sReq::decode(bits) {
                Ok(req) => out.push(req),
                Err(e) => {
                    out.clear();
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Wire size of one request flit in bytes (one CXL 16 B slot).
    pub const WIRE_BYTES: u64 = 16;

    /// Total packed width of one request in bits.
    pub const ENCODED_BITS: u32 = CNV_OFF + CNV_BITS;
}

const fn mask128(bits: u32) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

const fn mask64(bits: u32) -> u64 {
    ((1u128 << bits) - 1) as u64
}

const fn mask16(bits: u32) -> u16 {
    ((1u32 << bits) - 1) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn data_fetch_round_trips() {
        let req = M2sReq::data_fetch(0x1234_5678_9ABC, 42, 8, 3);
        assert_eq!(M2sReq::decode(req.encode()).unwrap(), req);
    }

    #[test]
    fn configuration_carries_candidate_count() {
        let req = M2sReq::configuration(0xCAFE, 7, 123, 1);
        assert_eq!(req.sum_candidate_count, 123);
        assert_eq!(req.opcode, MemOpcode::Configuration);
        let rt = M2sReq::decode(req.encode()).unwrap();
        assert_eq!(rt.sum_candidate_count, 123);
    }

    #[test]
    fn vector_bytes_covers_paper_sizes() {
        // §IV-A3: row vectors range 16 B–128 B in 16 B chunks.
        for chunks in 1..=8u8 {
            let req = M2sReq::data_fetch(0, 0, chunks, 0);
            assert_eq!(req.vector_bytes(), chunks as u64 * 16);
        }
    }

    #[test]
    #[should_panic(expected = "16B chunks")]
    fn oversized_vector_rejected() {
        let _ = M2sReq::data_fetch(0, 0, 9, 0);
    }

    #[test]
    fn repacking_rewrites_spid_and_opcode_only() {
        let orig = M2sReq::data_fetch(0xABCD, 9, 4, /*host spid*/ 2);
        let packed = orig.repack_for_device(/*switch*/ 500, /*device*/ 7);
        assert_eq!(packed.opcode, MemOpcode::MemRd);
        assert_eq!(packed.spid, 500);
        assert_eq!(packed.dpid, 7);
        // Everything else is preserved for the IIR to match on.
        assert_eq!(packed.address, orig.address);
        assert_eq!(packed.sum_tag, orig.sum_tag);
        assert_eq!(packed.vector_size, orig.vector_size);
    }

    #[test]
    fn address_is_truncated_to_47_bits() {
        let req = M2sReq::mem_read(u64::MAX, 0);
        assert_eq!(req.address, (1u64 << 47) - 1);
    }

    #[test]
    fn encoded_width_is_121_bits() {
        assert_eq!(M2sReq::ENCODED_BITS, 121);
    }

    #[test]
    fn batch_round_trips_a_data_fetch_burst() {
        let reqs: Vec<M2sReq> = (0..64)
            .map(|i| M2sReq::data_fetch(0x1000 + i * 64, (i % 512) as u16, 8, 3))
            .collect();
        let mut slab = Vec::new();
        M2sReq::encode_batch(&reqs, &mut slab);
        assert_eq!(slab.len(), reqs.len());
        // Batch encoding is elementwise-identical to the scalar codec.
        for (word, req) in slab.iter().zip(&reqs) {
            assert_eq!(*word, req.encode());
        }
        let mut decoded = Vec::new();
        M2sReq::decode_batch(&slab, &mut decoded).unwrap();
        assert_eq!(decoded, reqs);
    }

    #[test]
    fn batch_decode_error_leaves_out_empty() {
        let good = M2sReq::mem_read(0xABC, 1).encode();
        let mut bad = good;
        bad &= !(0b1111u128 << 1);
        bad |= 0b0101u128 << 1; // invalid opcode pattern
        let mut out = vec![M2sReq::mem_read(0, 0)]; // stale content
        let err = M2sReq::decode_batch(&[good, bad, good], &mut out);
        assert!(matches!(err, Err(DecodeError::BadOpcode(_))));
        assert!(out.is_empty(), "a failed batch decode must not leak prefix");
    }

    #[test]
    fn bad_opcode_bits_fail_decode() {
        // Craft an encoding with an invalid opcode pattern (0b0101).
        let mut bits = M2sReq::mem_read(0, 0).encode();
        bits &= !(0b1111u128 << 1);
        bits |= 0b0101u128 << 1;
        assert!(matches!(
            M2sReq::decode(bits),
            Err(DecodeError::BadOpcode(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_encode_decode_round_trip(
            valid in any::<bool>(),
            opcode_idx in 0usize..4,
            meta in 0u8..128,
            tag in any::<u16>(),
            address in 0u64..(1 << 47),
            spid in 0u16..(1 << 12),
            dpid in 0u16..(1 << 12),
            sum_tag in 0u16..(1 << 9),
            vector_size in 0u8..8,
            scc in 0u16..(1 << 9),
            cnv in any::<bool>(),
        ) {
            let opcode = [
                MemOpcode::MemRd,
                MemOpcode::MemWr,
                MemOpcode::DataFetch,
                MemOpcode::Configuration,
            ][opcode_idx];
            let req = M2sReq {
                valid, opcode, meta, tag, address, spid, dpid,
                sum_tag, vector_size, sum_candidate_count: scc, cnv,
            };
            prop_assert_eq!(M2sReq::decode(req.encode()).unwrap(), req);
        }

        #[test]
        fn prop_encoding_fits_in_121_bits(address in 0u64..(1 << 47)) {
            let req = M2sReq::data_fetch(address, 511, 8, 4095);
            prop_assert_eq!(req.encode() >> 121, 0);
        }

        #[test]
        fn prop_batch_matches_scalar_codec(
            addrs in proptest::collection::vec(0u64..(1 << 47), 0..32),
        ) {
            let reqs: Vec<M2sReq> = addrs
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    M2sReq::data_fetch(a, (i % 512) as u16, ((i % 8) + 1) as u8, (i % 4096) as u16)
                })
                .collect();
            let mut slab = Vec::new();
            M2sReq::encode_batch(&reqs, &mut slab);
            for (word, req) in slab.iter().zip(&reqs) {
                prop_assert_eq!(*word, req.encode());
            }
            let mut decoded = Vec::new();
            M2sReq::decode_batch(&slab, &mut decoded).unwrap();
            prop_assert_eq!(decoded, reqs);
        }
    }
}
