//! The CXL coherence bias table (§II-B1).
//!
//! CXL's asymmetric coherence protocol tracks, per 4 KB region, whether a
//! pooled-memory range is in *host bias* (host coherence checks on every
//! device access) or *device bias* (region locked for the device, host
//! accesses trapped). PIFS-Rec designates embedding-table regions as
//! device-bias so the switch can stream rows without host round trips
//! (§IV-A1), and flips pages back during migration (§IV-D).

use simkit::hash::FastMap;

/// Coherence mode of a 4 KB region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BiasMode {
    /// Device accesses require host coherence control messages.
    #[default]
    HostBias,
    /// Region locked for device use; no host coherence traffic.
    DeviceBias,
}

/// A sparse bias table over 4 KB regions.
///
/// # Examples
///
/// ```
/// use cxlsim::{BiasMode, BiasTable};
///
/// let mut bt = BiasTable::new();
/// bt.set_range(0x0, 0x4000, BiasMode::DeviceBias);
/// assert_eq!(bt.mode_of(0x1234), BiasMode::DeviceBias);
/// assert_eq!(bt.mode_of(0x4000), BiasMode::HostBias); // past the range
/// ```
#[derive(Debug, Clone, Default)]
pub struct BiasTable {
    entries: FastMap<u64, BiasMode>,
    flips: u64,
}

const REGION: u64 = 4096;

impl BiasTable {
    /// Creates an empty table (everything host-bias).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mode of the region containing `addr`.
    pub fn mode_of(&self, addr: u64) -> BiasMode {
        self.entries
            .get(&(addr / REGION))
            .copied()
            .unwrap_or_default()
    }

    /// Sets the mode for every region overlapping `[start, end)`.
    pub fn set_range(&mut self, start: u64, end: u64, mode: BiasMode) {
        let first = start / REGION;
        let last = (end.max(start + 1) - 1) / REGION;
        for r in first..=last {
            let prev = self.entries.insert(r, mode);
            if prev.unwrap_or_default() != mode {
                self.flips += 1;
            }
        }
    }

    /// Flips one region containing `addr` (the `bias table flip` hook
    /// invoked on page migration, §IV-D) and returns the new mode.
    pub fn flip(&mut self, addr: u64) -> BiasMode {
        let region = addr / REGION;
        let cur = self.entries.get(&region).copied().unwrap_or_default();
        let next = match cur {
            BiasMode::HostBias => BiasMode::DeviceBias,
            BiasMode::DeviceBias => BiasMode::HostBias,
        };
        self.entries.insert(region, next);
        self.flips += 1;
        next
    }

    /// Number of bias transitions performed (a proxy for coherence
    /// management overhead).
    pub fn flip_count(&self) -> u64 {
        self.flips
    }

    /// `true` if the device may access `addr` without host coherence
    /// messages.
    pub fn device_can_stream(&self, addr: u64) -> bool {
        self.mode_of(addr) == BiasMode::DeviceBias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_host_bias() {
        let bt = BiasTable::new();
        assert_eq!(bt.mode_of(0), BiasMode::HostBias);
        assert!(!bt.device_can_stream(12345));
    }

    #[test]
    fn range_covers_partial_regions() {
        let mut bt = BiasTable::new();
        // End mid-region: the whole containing region flips.
        bt.set_range(100, 5000, BiasMode::DeviceBias);
        assert_eq!(bt.mode_of(0), BiasMode::DeviceBias);
        assert_eq!(bt.mode_of(4999), BiasMode::DeviceBias);
        assert_eq!(bt.mode_of(8192), BiasMode::HostBias);
    }

    #[test]
    fn flip_toggles_and_counts() {
        let mut bt = BiasTable::new();
        assert_eq!(bt.flip(0), BiasMode::DeviceBias);
        assert_eq!(bt.flip(0), BiasMode::HostBias);
        assert_eq!(bt.flip_count(), 2);
    }

    #[test]
    fn redundant_set_does_not_count_as_flip() {
        let mut bt = BiasTable::new();
        bt.set_range(0, 4096, BiasMode::DeviceBias);
        bt.set_range(0, 4096, BiasMode::DeviceBias);
        assert_eq!(bt.flip_count(), 1);
    }
}
