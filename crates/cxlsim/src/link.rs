//! FlexBus link model and the shared CXL latency parameters.

use serde::{Deserialize, Serialize};
use simkit::{BandwidthLink, SimDuration, SimTime};

/// Latency/bandwidth parameters of the CXL fabric, from Table II and the
/// profiling numbers quoted in §IV-A4 ("fetching a single address from
/// memory pools can take up to 270 ns, with approximately 37 % attributed
/// to frequent CXL I/O port transfers and retimer delays").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CxlParams {
    /// Link bandwidth in GB/s (PCIe 5.0 ×16 ≈ 64 GB/s, Table II).
    pub link_gbps: u64,
    /// One-way I/O port + retimer latency per link hop, ns. Two hops per
    /// direction (host↔switch, switch↔device) make the round trip carry
    /// 4× this value, yielding the ~100 ns CXL penalty of Table II.
    pub port_latency_ns: u64,
    /// Fabric switch transit (routing + VCS arbitration), ns.
    pub switch_transit_ns: u64,
    /// Additional inter-switch hop latency in scaled-out fabrics
    /// (§VI-C4 adds "an extra 100 ns ... between them").
    pub inter_switch_ns: u64,
}

impl Default for CxlParams {
    fn default() -> Self {
        CxlParams {
            link_gbps: 64,
            port_latency_ns: 20,
            switch_transit_ns: 10,
            inter_switch_ns: 100,
        }
    }
}

impl CxlParams {
    /// The fixed one-way latency host → device through one switch.
    pub fn one_way_ns(&self) -> u64 {
        2 * self.port_latency_ns + self.switch_transit_ns
    }

    /// The fixed round-trip fabric latency (excluding serialization and
    /// DRAM), which Table II pins near 100 ns.
    pub fn round_trip_ns(&self) -> u64 {
        2 * self.one_way_ns()
    }
}

/// A FlexBus link: a [`BandwidthLink`] at PCIe 5.0 ×16 rates with
/// port/retimer propagation.
///
/// # Examples
///
/// ```
/// use cxlsim::{CxlParams, FlexBusLink};
/// use simkit::SimTime;
///
/// let mut bus = FlexBusLink::new(&CxlParams::default());
/// let done = bus.transfer(SimTime::ZERO, 64);
/// assert!(done.as_ns() >= 20); // port latency dominates a single flit
/// ```
#[derive(Debug, Clone)]
pub struct FlexBusLink {
    inner: BandwidthLink,
}

impl FlexBusLink {
    /// Creates an idle link with `params` rates.
    pub fn new(params: &CxlParams) -> Self {
        FlexBusLink {
            inner: BandwidthLink::from_gbps(params.link_gbps, params.port_latency_ns),
        }
    }

    /// Enqueues a transfer of `bytes`; returns delivery time at the far
    /// end. Transfers serialize, modeling flex-bus congestion.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        simkit::stats::record_events(1);
        self.inner.transfer(now, bytes)
    }

    /// Batched arbitration for `n` equal flits issued `gap` apart,
    /// starting at `first`: appends each flit's delivery time to `out`
    /// (cleared first). Identical link state and results to `n`
    /// sequential [`transfer`](Self::transfer) calls — see
    /// [`simkit::BandwidthLink::transfer_batch_into`].
    pub fn transfer_batch_into(
        &mut self,
        first: SimTime,
        gap: SimDuration,
        bytes: u64,
        n: usize,
        out: &mut Vec<SimTime>,
    ) {
        simkit::stats::record_events(n as u64);
        self.inner.transfer_batch_into(first, gap, bytes, n, out);
    }

    /// Earliest time the medium frees up.
    pub fn free_at(&self) -> SimTime {
        self.inner.free_at()
    }

    /// Total bytes pushed through the link.
    pub fn total_bytes(&self) -> u64 {
        self.inner.total_bytes()
    }

    /// Fraction of `[0, horizon]` spent transmitting.
    pub fn utilization(&self, horizon: SimDuration) -> f64 {
        self.inner.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trip_is_about_100ns() {
        let p = CxlParams::default();
        assert_eq!(p.round_trip_ns(), 100);
    }

    #[test]
    fn congestion_serializes_transfers() {
        let p = CxlParams::default();
        let mut bus = FlexBusLink::new(&p);
        // 64 GB/s ⇒ 6400 bytes serialize in 100 ns.
        let first = bus.transfer(SimTime::ZERO, 6400);
        let second = bus.transfer(SimTime::ZERO, 6400);
        assert_eq!(first.as_ns(), 100 + p.port_latency_ns);
        assert_eq!(second.as_ns(), 200 + p.port_latency_ns);
    }

    #[test]
    fn utilization_reflects_load() {
        let p = CxlParams::default();
        let mut bus = FlexBusLink::new(&p);
        bus.transfer(SimTime::ZERO, 6400); // 100 ns busy
        let u = bus.utilization(SimDuration::from_ns(200));
        assert!((u - 0.5).abs() < 1e-9);
    }
}
