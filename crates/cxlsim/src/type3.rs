//! Type 3 CXL memory expanders: DDR4 DRAM behind a downstream port.

use memsim::{DramConfig, DramDevice, MemOp};
use simkit::SimTime;

use crate::link::{CxlParams, FlexBusLink};

/// One Type 3 (memory-only) CXL device: a [`memsim::DramDevice`] with
/// DDR4 timings reachable through its own downstream-port FlexBus links.
///
/// The request and response directions are independent media (full
/// duplex), each carrying one port-latency hop, so a device round trip
/// costs `2 × port_latency` plus serialization plus the DRAM access —
/// about half of the Table II CXL penalty, with the other half paid on
/// the host↔switch side.
///
/// # Examples
///
/// ```
/// use cxlsim::{CxlParams, Type3Device};
/// use simkit::SimTime;
///
/// let mut dev = Type3Device::new(3, CxlParams::default());
/// let done = dev.read(SimTime::ZERO, 0x40, 64);
/// assert!(done.as_ns() >= 50);
/// assert_eq!(dev.access_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Type3Device {
    id: u16,
    dram: DramDevice,
    req_link: FlexBusLink,
    rsp_link: FlexBusLink,
    accesses: u64,
}

impl Type3Device {
    /// Creates device `id` with the standard DDR4 expander organization.
    pub fn new(id: u16, params: CxlParams) -> Self {
        Self::with_dram(id, params, DramConfig::ddr4_cxl_expander())
    }

    /// Creates device `id` backed by a custom DRAM configuration.
    pub fn with_dram(id: u16, params: CxlParams, dram_cfg: DramConfig) -> Self {
        Type3Device {
            id,
            dram: DramDevice::new(dram_cfg),
            req_link: FlexBusLink::new(&params),
            rsp_link: FlexBusLink::new(&params),
            accesses: 0,
        }
    }

    /// Device id (the fabric manager's cacheID for this endpoint).
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Reads `bytes` at `addr`; the request flit leaves the switch at
    /// `now`, and the returned instant is when the last response byte
    /// arrives back at the switch.
    pub fn read(&mut self, now: SimTime, addr: u64, bytes: u64) -> SimTime {
        self.accesses += 1;
        let at_device = self.req_link.transfer(now, crate::M2sReq::WIRE_BYTES);
        let data_ready = self.dram.access_span(at_device, addr, bytes, MemOp::Read);
        self.rsp_link
            .transfer(data_ready, bytes + crate::M2sReq::WIRE_BYTES)
    }

    /// Writes `bytes` at `addr`; returns when the device has absorbed the
    /// data burst.
    pub fn write(&mut self, now: SimTime, addr: u64, bytes: u64) -> SimTime {
        self.accesses += 1;
        let at_device = self
            .req_link
            .transfer(now, bytes + crate::M2sReq::WIRE_BYTES);
        self.dram.access_span(at_device, addr, bytes, MemOp::Write)
    }

    /// Total accesses served (Fig 13(b)'s per-device access frequency).
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Underlying DRAM statistics.
    pub fn dram_stats(&self) -> memsim::DramStats {
        self.dram.stats()
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.dram.config().org.capacity_bytes
    }

    /// Earliest time the device and both its links are idle.
    pub fn quiet_at(&self) -> SimTime {
        self.dram
            .all_quiet_at()
            .max(self.req_link.free_at())
            .max(self.rsp_link.free_at())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_includes_link_and_dram_latency() {
        let p = CxlParams::default();
        let mut dev = Type3Device::new(0, p);
        let done = dev.read(SimTime::ZERO, 0, 64);
        // At minimum: two port hops + an ACT+CAS+burst DRAM access.
        assert!(done.as_ns() >= 2 * p.port_latency_ns + 20, "done={done}");
    }

    #[test]
    fn reads_to_one_device_contend_on_its_links_and_banks() {
        let mut dev = Type3Device::new(0, CxlParams::default());
        let a = dev.read(SimTime::ZERO, 0, 4096);
        let b = dev.read(SimTime::ZERO, 1 << 20, 4096);
        assert!(b > a);
    }

    #[test]
    fn writes_count_as_accesses() {
        let mut dev = Type3Device::new(0, CxlParams::default());
        dev.write(SimTime::ZERO, 0, 64);
        dev.read(SimTime::ZERO, 0, 64);
        assert_eq!(dev.access_count(), 2);
        assert_eq!(dev.dram_stats().writes, 1);
    }

    #[test]
    fn big_reads_serialize_on_the_response_link() {
        let mut dev = Type3Device::new(0, CxlParams::default());
        // 64 KB at 64 GB/s = 1 µs of serialization; dwarfs DRAM latency.
        let done = dev.read(SimTime::ZERO, 0, 64 * 1024);
        assert!(done.as_ns() >= 1000, "done={done}");
    }
}
