//! CXL.mem memory opcodes, including the two codepoints the paper adds.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The 4-bit `MemOpcode` field of an M2S request.
///
/// `MemRd`/`MemWr` are the standard CXL.mem operations a Type 3 device
/// understands. `DataFetch` (0b1110) and `Configuration` (0b1111) are the
/// enhancements of Fig 9: `DataFetch` asks the fabric switch to fetch a
/// row vector and fold it into an accumulation cluster; `Configuration`
/// programs the Accumulate Configuration Register with a cluster's
/// `SumCandidateCount` and result address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOpcode {
    /// Standard CXL.mem read.
    MemRd,
    /// Standard CXL.mem write.
    MemWr,
    /// PIFS enhanced: fetch a row vector for in-switch accumulation.
    DataFetch,
    /// PIFS enhanced: configure an accumulation cluster.
    Configuration,
}

/// Error returned when decoding an unknown opcode bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOpcodeError(pub u8);

impl fmt::Display for DecodeOpcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown MemOpcode bit pattern {:#06b}", self.0)
    }
}

impl std::error::Error for DecodeOpcodeError {}

impl MemOpcode {
    /// Encodes the opcode into its 4-bit field value.
    pub fn bits(self) -> u8 {
        match self {
            MemOpcode::MemRd => 0b0000,
            MemOpcode::MemWr => 0b0001,
            MemOpcode::DataFetch => 0b1110,
            MemOpcode::Configuration => 0b1111,
        }
    }

    /// Decodes a 4-bit field value.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeOpcodeError`] for patterns this model does not
    /// define.
    pub fn from_bits(bits: u8) -> Result<Self, DecodeOpcodeError> {
        match bits {
            0b0000 => Ok(MemOpcode::MemRd),
            0b0001 => Ok(MemOpcode::MemWr),
            0b1110 => Ok(MemOpcode::DataFetch),
            0b1111 => Ok(MemOpcode::Configuration),
            other => Err(DecodeOpcodeError(other)),
        }
    }

    /// `true` for the PIFS-enhanced opcodes the MemOpcode checker routes
    /// to the process core; standard opcodes bypass it (§IV-A2).
    pub fn is_pifs_enhanced(self) -> bool {
        matches!(self, MemOpcode::DataFetch | MemOpcode::Configuration)
    }
}

impl fmt::Display for MemOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemOpcode::MemRd => "MemRd",
            MemOpcode::MemWr => "MemWr",
            MemOpcode::DataFetch => "DataFetch",
            MemOpcode::Configuration => "Configuration",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_variants() {
        for op in [
            MemOpcode::MemRd,
            MemOpcode::MemWr,
            MemOpcode::DataFetch,
            MemOpcode::Configuration,
        ] {
            assert_eq!(MemOpcode::from_bits(op.bits()), Ok(op));
        }
    }

    #[test]
    fn paper_codepoints_match_fig9() {
        assert_eq!(MemOpcode::DataFetch.bits(), 0b1110);
        assert_eq!(MemOpcode::Configuration.bits(), 0b1111);
    }

    #[test]
    fn unknown_patterns_error() {
        let err = MemOpcode::from_bits(0b0101).unwrap_err();
        assert_eq!(err, DecodeOpcodeError(0b0101));
        assert!(err.to_string().contains("0b0101"));
    }

    #[test]
    fn only_enhanced_opcodes_hit_the_process_core() {
        assert!(!MemOpcode::MemRd.is_pifs_enhanced());
        assert!(!MemOpcode::MemWr.is_pifs_enhanced());
        assert!(MemOpcode::DataFetch.is_pifs_enhanced());
        assert!(MemOpcode::Configuration.is_pifs_enhanced());
    }
}
