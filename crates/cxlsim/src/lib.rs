//! `cxlsim` — a CXL 2.0/3.0 fabric substrate model.
//!
//! The paper builds PIFS-Rec on three CXL ingredients (§II-B): the
//! FlexBus/PCIe physical layer, the fabric switch that every multi-node
//! CXL topology must route through, and Type 3 (memory-only) devices.
//! This crate models all three plus the instruction format the paper
//! modifies (Fig 9):
//!
//! * [`FlexBusLink`] — a 64 GB/s (PCIe 5.0 ×16) serialized link with
//!   port/retimer latency, so flex-bus congestion appears under load;
//! * [`M2sReq`] / [`MemOpcode`] — bit-exact encode/decode of the enhanced
//!   CXL.mem M2S request, including the paper's added `sumtag`,
//!   `vectorsize` and `SumCandidateCount` fields;
//! * [`Type3Device`] — a DDR4 expander behind a downstream port
//!   ([`memsim::DramDevice`] plus link serialization);
//! * [`FabricSwitch`] — port bookkeeping, device binding (the Fabric
//!   Manager endpoint's job) and switch transit latency;
//! * [`BiasTable`] — host-bias/device-bias coherence regions (§II-B1);
//! * [`Topology`] — multi-switch scale-out graphs for §IV-C.
//!
//! # Examples
//!
//! ```
//! use cxlsim::{CxlParams, Type3Device};
//! use simkit::SimTime;
//!
//! let mut dev = Type3Device::new(0, CxlParams::default());
//! let done = dev.read(SimTime::ZERO, 0x1000, 64);
//! // The device-side round trip alone (two port hops + DDR4 access) costs
//! // tens of ns; the host↔switch hops add the rest of the ~100 ns penalty.
//! assert!(done.as_ns() >= 60);
//! ```

#![warn(missing_docs)]

pub mod bias;
pub mod instr;
pub mod link;
pub mod opcode;
pub mod switch;
pub mod topology;
pub mod type3;

pub use bias::{BiasMode, BiasTable};
pub use instr::M2sReq;
pub use link::{CxlParams, FlexBusLink};
pub use opcode::MemOpcode;
pub use switch::{FabricSwitch, PortId};
pub use topology::{SwitchId, Topology};
pub use type3::Type3Device;
