//! The CXL fabric switch: ports, device binding, and transit timing.
//!
//! In CXL 2.0+ the fabric switch is compulsory, non-bypass hardware in
//! any multi-node interconnect (§II-B2). The Fabric Manager endpoint
//! inside the switch binds devices to Virtual PCI-to-PCI Bridges (VPPBs)
//! and assigns each a cacheID. This module models that control plane plus
//! the data-plane costs: per-upstream-port FlexBus serialization and a
//! fixed transit delay through the VCS.

use simkit::hash::FastMap;

use simkit::{SimDuration, SimTime};

use crate::link::{CxlParams, FlexBusLink};

/// Identifies one switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

/// A fabric switch with `n_upstream` host-facing ports.
///
/// Downstream (device-facing) serialization is modeled inside
/// [`crate::Type3Device`]; the switch owns the upstream links, the
/// binding table, and transit timing.
///
/// # Examples
///
/// ```
/// use cxlsim::{CxlParams, FabricSwitch, PortId};
/// use simkit::SimTime;
///
/// let mut sw = FabricSwitch::new(0, 2, CxlParams::default());
/// let cache_id = sw.bind_device(PortId(0));
/// assert_eq!(sw.device_port(cache_id), Some(PortId(0)));
/// let arrived = sw.upstream_transfer(SimTime::ZERO, 0, 64);
/// let routed = sw.transit(arrived);
/// assert!(routed > arrived);
/// ```
#[derive(Debug, Clone)]
pub struct FabricSwitch {
    id: u16,
    params: CxlParams,
    upstream: Vec<FlexBusLink>,
    /// FM endpoint binding: cacheID → downstream port.
    bindings: FastMap<u16, PortId>,
    next_cache_id: u16,
    /// Whether this switch carries a PIFS process core (CNV bit, §IV-C2).
    has_process_core: bool,
}

impl FabricSwitch {
    /// Creates switch `id` with `n_upstream` host ports.
    pub fn new(id: u16, n_upstream: usize, params: CxlParams) -> Self {
        FabricSwitch {
            id,
            params,
            upstream: (0..n_upstream.max(1))
                .map(|_| FlexBusLink::new(&params))
                .collect(),
            bindings: FastMap::default(),
            next_cache_id: 0,
            has_process_core: true,
        }
    }

    /// Switch id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Registers a device on downstream `port`; returns its cacheID
    /// ("each device is assigned a cacheID when recognized by the FM
    /// endpoint", §II-B2).
    pub fn bind_device(&mut self, port: PortId) -> u16 {
        let id = self.next_cache_id;
        self.next_cache_id += 1;
        self.bindings.insert(id, port);
        id
    }

    /// Downstream port bound to `cache_id`, if any.
    pub fn device_port(&self, cache_id: u16) -> Option<PortId> {
        self.bindings.get(&cache_id).copied()
    }

    /// Number of bound devices.
    pub fn bound_devices(&self) -> usize {
        self.bindings.len()
    }

    /// Moves `bytes` across upstream port `port` arriving at `now`;
    /// returns delivery time at the switch (or host, symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn upstream_transfer(&mut self, now: SimTime, port: usize, bytes: u64) -> SimTime {
        self.upstream[port].transfer(now, bytes)
    }

    /// Adds VCS routing/arbitration transit to a message at `t`.
    pub fn transit(&self, t: SimTime) -> SimTime {
        simkit::stats::record_events(1);
        t + SimDuration::from_ns(self.params.switch_transit_ns)
    }

    /// Marks whether this switch carries a process core; read as the CNV
    /// field during multi-switch configuration (§IV-C2).
    pub fn set_process_core(&mut self, present: bool) {
        self.has_process_core = present;
    }

    /// CNV: `true` when the switch can run in-switch accumulation.
    pub fn cnv(&self) -> bool {
        self.has_process_core
    }

    /// Upstream link utilization for port `port` over `[0, horizon]`.
    pub fn upstream_utilization(&self, port: usize, horizon: SimDuration) -> f64 {
        self.upstream[port].utilization(horizon)
    }

    /// Total bytes through upstream port `port`.
    pub fn upstream_bytes(&self, port: usize) -> u64 {
        self.upstream[port].total_bytes()
    }

    /// The switch's fabric parameters.
    pub fn params(&self) -> &CxlParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_assigns_sequential_cache_ids() {
        let mut sw = FabricSwitch::new(0, 1, CxlParams::default());
        assert_eq!(sw.bind_device(PortId(0)), 0);
        assert_eq!(sw.bind_device(PortId(1)), 1);
        assert_eq!(sw.bound_devices(), 2);
        assert_eq!(sw.device_port(1), Some(PortId(1)));
        assert_eq!(sw.device_port(9), None);
    }

    #[test]
    fn transit_adds_fixed_delay() {
        let sw = FabricSwitch::new(0, 1, CxlParams::default());
        let t = sw.transit(SimTime::from_ns(100));
        assert_eq!(t.as_ns(), 100 + sw.params().switch_transit_ns);
    }

    #[test]
    fn upstream_ports_are_independent() {
        let mut sw = FabricSwitch::new(0, 2, CxlParams::default());
        let a = sw.upstream_transfer(SimTime::ZERO, 0, 64 * 1024);
        let b = sw.upstream_transfer(SimTime::ZERO, 1, 64);
        // Port 1 is idle — its small transfer beats port 0's big one.
        assert!(b < a);
    }

    #[test]
    fn same_port_congests() {
        let mut sw = FabricSwitch::new(0, 1, CxlParams::default());
        let a = sw.upstream_transfer(SimTime::ZERO, 0, 64 * 1024);
        let b = sw.upstream_transfer(SimTime::ZERO, 0, 64);
        // The second transfer queues behind the first (64 KB ≈ 1 µs at 64 GB/s).
        assert!(b > a, "b={b} a={a}");
        assert_eq!(sw.upstream_bytes(0), 64 * 1024 + 64);
    }

    #[test]
    fn cnv_defaults_on_and_toggles() {
        let mut sw = FabricSwitch::new(0, 1, CxlParams::default());
        assert!(sw.cnv());
        sw.set_process_core(false);
        assert!(!sw.cnv());
    }
}
