//! Criterion bench: `simkit::EventQueue` — the ordering primitive every
//! event-driven component sits on. Exercises the three shapes the
//! simulation produces: time-ordered streams, random interleavings, and
//! heavy same-instant ties (where the sequence-number tie-break path
//! does the work).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simkit::{DetRng, EventQueue, SimTime};

const N: u64 = 4096;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_ordered", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..N {
                q.push(SimTime::from_ns(i), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.bench_function("push_pop_random", |b| {
        b.iter(|| {
            let mut rng = DetRng::new(11);
            let mut q = EventQueue::new();
            for i in 0..N {
                q.push(SimTime::from_ns(rng.below(1 << 20)), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.bench_function("tie_heavy", |b| {
        // 64 events per instant: the FIFO tie-break (seq compare) is the
        // discriminating comparison for most of the sift path.
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..N {
                q.push(SimTime::from_ns(i / 64), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.bench_function("sliding_window", |b| {
        // Steady-state simulator shape: the queue stays small while
        // events push and pop interleaved.
        b.iter(|| {
            let mut rng = DetRng::new(5);
            let mut q = EventQueue::new();
            let mut now = 0u64;
            for i in 0..64 {
                q.push(SimTime::from_ns(i), i);
            }
            let mut acc = 0u64;
            for i in 0..N {
                if let Some((t, e)) = q.pop() {
                    now = t.as_ns();
                    acc = acc.wrapping_add(e);
                }
                q.push(SimTime::from_ns(now + 1 + rng.below(128)), i);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
