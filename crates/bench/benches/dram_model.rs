//! Criterion bench: simulation throughput of the DDR timing model
//! (events simulated per second, not simulated hardware speed).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsim::{DramConfig, DramDevice, MemOp};
use simkit::SimTime;

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_model");
    g.bench_function("sequential_1k_lines", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(DramConfig::ddr5_4800_local());
            let mut done = SimTime::ZERO;
            for i in 0..1000u64 {
                done = done.max(dev.access(SimTime::ZERO, black_box(i * 64), MemOp::Read));
            }
            done
        })
    });
    g.bench_function("random_1k_lines", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(DramConfig::ddr4_cxl_expander());
            let mut done = SimTime::ZERO;
            let mut x = 9u64;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                done = done.max(dev.access(SimTime::ZERO, black_box(x % (1 << 33)), MemOp::Read));
            }
            done
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
