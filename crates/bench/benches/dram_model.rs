//! Criterion bench: simulation throughput of the DDR timing model
//! (events simulated per second, not simulated hardware speed), from the
//! bank state machine up through the whole multi-channel device.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsim::bank::BankState;
use memsim::channel::Channel;
use memsim::{DramConfig, DramDevice, DramOrg, DramTimings, Location, MemOp};
use simkit::SimTime;

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_model");
    g.bench_function("sequential_1k_lines", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(DramConfig::ddr5_4800_local());
            let mut done = SimTime::ZERO;
            for i in 0..1000u64 {
                done = done.max(dev.access(SimTime::ZERO, black_box(i * 64), MemOp::Read));
            }
            done
        })
    });
    g.bench_function("random_1k_lines", |b| {
        b.iter(|| {
            let mut dev = DramDevice::new(DramConfig::ddr4_cxl_expander());
            let mut done = SimTime::ZERO;
            let mut x = 9u64;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                done = done.max(dev.access(SimTime::ZERO, black_box(x % (1 << 33)), MemOp::Read));
            }
            done
        })
    });
    g.finish();
}

fn bench_bank(c: &mut Criterion) {
    let t = DramTimings::ddr5_4800().durations();
    let mut g = c.benchmark_group("bank_state");
    g.bench_function("row_hit", |b| {
        let mut bank = BankState::new();
        let mut now = SimTime::ZERO;
        bank.prepare(now, now, 1, &t);
        b.iter(|| {
            let (cas, _) = bank.prepare(black_box(now), now, 1, &t);
            bank.complete_read(cas, &t);
            now = cas;
            cas
        })
    });
    g.bench_function("row_conflict", |b| {
        let mut bank = BankState::new();
        let mut now = SimTime::ZERO;
        let mut row = 0u64;
        b.iter(|| {
            row += 1;
            let (cas, _) = bank.prepare(black_box(now), now, row, &t);
            bank.complete_read(cas, &t);
            now = cas;
            cas
        })
    });
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    let t = DramTimings::ddr5_4800().durations();
    let org = DramOrg {
        channels: 1,
        ..DramOrg::table2_local()
    };
    let mut g = c.benchmark_group("channel");
    g.bench_function("bank_interleaved_stream", |b| {
        // The FR-FCFS gap scan plus tFAW window tracking, across all
        // banks of one channel.
        let mut ch = Channel::new(org);
        let mut now = SimTime::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let loc = Location {
                channel: 0,
                rank: (i / org.banks as u64 % org.ranks as u64) as u32,
                bank: (i % org.banks as u64) as u32,
                row: i / 97,
            };
            let done = ch.access(black_box(now), &loc, MemOp::Read, &t);
            now += simkit::SimDuration::from_ns(2);
            done
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dram, bench_bank, bench_channel);
criterion_main!(benches);
