//! Criterion bench: full-system simulation throughput for each scheme
//! (how fast the simulator itself runs one small trace).

use baselines::Scheme;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlrm::ModelConfig;
use pifs_core::system::SlsSystem;
use tracegen::{Distribution, TraceSpec};

fn bench_e2e(c: &mut Criterion) {
    let model = ModelConfig::rmc1().scaled_down(16);
    let trace = TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: 16,
        n_batches: 2,
        bag_size: model.bag_size,
        seed: 5,
    }
    .generate();
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(20);
    for scheme in Scheme::all() {
        g.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let mut sys = SlsSystem::new(scheme.config(model.clone()));
                black_box(sys.run_trace(&trace))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
