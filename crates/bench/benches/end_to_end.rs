//! Criterion bench: full-system simulation throughput for each scheme
//! (how fast the simulator itself runs one small trace), plus the
//! standard RMC4 workload every `repro` figure runs — the end-to-end
//! number PERFORMANCE.md tracks across optimization PRs.

use baselines::Scheme;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlrm::ModelConfig;
use pifs_core::system::{SlsSystem, SystemConfig};
use tracegen::{Distribution, TraceSpec};

fn bench_e2e(c: &mut Criterion) {
    let model = ModelConfig::rmc1().scaled_down(16);
    let trace = TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: 16,
        n_batches: 2,
        bag_size: model.bag_size,
        seed: 5,
    }
    .generate();
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(20);
    for scheme in Scheme::all() {
        g.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let mut sys = SlsSystem::new(scheme.config(model.clone()));
                black_box(sys.run_trace(&trace))
            })
        });
    }
    g.finish();
}

fn bench_rmc4_std(c: &mut Criterion) {
    // One iteration = one grid point of the Fig 13 sweeps: the standard
    // scaled RMC4 workload on the full PIFS-Rec configuration (switch
    // compute + HTR buffer + page management). This is the number the
    // hot-path optimization PRs are judged by.
    let mut g = c.benchmark_group("pipeline_rmc4");
    g.sample_size(10);
    g.bench_function("pifs_rec_std", |b| {
        let model = pifs_bench::scaled(ModelConfig::rmc4());
        b.iter(|| black_box(pifs_bench::run_std(SystemConfig::pifs_rec(model.clone()))).total_ns)
    });
    g.finish();
}

criterion_group!(benches, bench_e2e, bench_rmc4_std);
criterion_main!(benches);
