//! Criterion bench: bit-level encode/decode of the enhanced M2S request.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cxlsim::M2sReq;

fn bench_codec(c: &mut Criterion) {
    let req = M2sReq::data_fetch(0x1234_5678_9ABC, 311, 8, 42);
    let bits = req.encode();
    let mut g = c.benchmark_group("instr_codec");
    g.bench_function("encode", |b| b.iter(|| black_box(&req).encode()));
    g.bench_function("decode", |b| {
        b.iter(|| M2sReq::decode(black_box(bits)).unwrap())
    });
    g.bench_function("repack", |b| {
        b.iter(|| black_box(&req).repack_for_device(500, 7))
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
