//! Criterion bench: bit-level encode/decode of the enhanced M2S request.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cxlsim::M2sReq;

fn bench_codec(c: &mut Criterion) {
    let req = M2sReq::data_fetch(0x1234_5678_9ABC, 311, 8, 42);
    let bits = req.encode();
    let mut g = c.benchmark_group("instr_codec");
    g.bench_function("encode", |b| b.iter(|| black_box(&req).encode()));
    g.bench_function("decode", |b| {
        b.iter(|| M2sReq::decode(black_box(bits)).unwrap())
    });
    g.bench_function("repack", |b| {
        b.iter(|| black_box(&req).repack_for_device(500, 7))
    });
    // A switch-sized DataFetch burst through the batched codec, with the
    // output buffer reused across iterations (the pipeline's shape).
    let slab: Vec<u128> = (0..64)
        .map(|i| M2sReq::data_fetch(0x1000 + i * 64, (i % 512) as u16, 8, 3).encode())
        .collect();
    g.bench_function("decode_batch_64", |b| {
        let mut out = Vec::with_capacity(slab.len());
        b.iter(|| {
            M2sReq::decode_batch(black_box(&slab), &mut out).unwrap();
            black_box(out.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
