//! Criterion bench: on-switch buffer policy overhead per access.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pifs_core::{BufferPolicy, OnSwitchBuffer};
use simkit::DetRng;

fn bench_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_policies");
    for (label, policy) in [
        ("htr", BufferPolicy::Htr),
        ("lru", BufferPolicy::Lru),
        ("fifo", BufferPolicy::Fifo),
    ] {
        g.bench_function(label, |b| {
            let mut buf = OnSwitchBuffer::new(policy, 512 * 1024, 256);
            let mut rng = DetRng::new(3);
            b.iter(|| {
                let key = if rng.unit_f64() < 0.3 {
                    rng.below(64)
                } else {
                    1000 + rng.below(100_000)
                };
                buf.access(black_box(key))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_buffer);
criterion_main!(benches);
