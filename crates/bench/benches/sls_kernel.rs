//! Criterion bench: the functional SparseLengthSum kernel (the operation
//! every compute site executes per row).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlrm::sls::{accumulate_row, sls_reference};
use dlrm::EmbeddingTable;

fn bench_sls(c: &mut Criterion) {
    let mut g = c.benchmark_group("sls_kernel");
    for dim in [16u32, 64, 128] {
        let table = EmbeddingTable::new(0, 65_536, dim, 0);
        let indices: Vec<u64> = (0..8).map(|i| (i * 7919) % 65_536).collect();
        g.bench_function(format!("bag8_dim{dim}"), |b| {
            b.iter(|| sls_reference(black_box(&table), black_box(&indices), None))
        });
        g.bench_function(format!("fold_dim{dim}"), |b| {
            let mut acc = vec![0.0f32; dim as usize];
            b.iter(|| accumulate_row(black_box(&mut acc), &table, black_box(indices[0]), 1.0))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sls);
criterion_main!(benches);
