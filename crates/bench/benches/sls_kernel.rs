//! Criterion bench: the functional SparseLengthSum kernel (the operation
//! every compute site executes per row).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlrm::sls::{accumulate_row, sls_reference};
use dlrm::EmbeddingTable;

fn bench_sls(c: &mut Criterion) {
    let mut g = c.benchmark_group("sls_kernel");
    for dim in [16u32, 64, 128] {
        let table = EmbeddingTable::new(0, 65_536, dim, 0);
        let indices: Vec<u64> = (0..8).map(|i| (i * 7919) % 65_536).collect();
        g.bench_function(format!("bag8_dim{dim}"), |b| {
            b.iter(|| sls_reference(black_box(&table), black_box(&indices), None))
        });
        g.bench_function(format!("fold_dim{dim}"), |b| {
            let mut acc = vec![0.0f32; dim as usize];
            b.iter(|| accumulate_row(black_box(&mut acc), &table, black_box(indices[0]), 1.0))
        });
    }
    // Serving-sized batch: one open-loop dispatch folds ~32 rows per bag.
    {
        let table = EmbeddingTable::new(0, 65_536, 128, 0);
        let indices: Vec<u64> = (0..32).map(|i| (i * 7919) % 65_536).collect();
        g.bench_function("bag32_dim128", |b| {
            b.iter(|| sls_reference(black_box(&table), black_box(&indices), None))
        });
    }
    // The pipeline's SoA shape: gather the bag's rows into one contiguous
    // arena (memcpy from a materialized table), then stream the slab
    // through the wide fold — what `BagBatch` does per bag.
    {
        let table = EmbeddingTable::new(1, 4096, 128, 0);
        assert!(table.is_materialized(), "4096x128 must sit under the cap");
        let indices: Vec<u64> = (0..8).map(|i| (i * 7919) % 4096).collect();
        g.bench_function("soa_bag8_dim128", |b| {
            let mut arena = vec![0.0f32; indices.len() * 128];
            let mut acc = vec![0.0f32; 128];
            b.iter(|| {
                for (slot, &r) in arena.chunks_exact_mut(128).zip(&indices) {
                    slot.copy_from_slice(table.row_slice(r).expect("materialized"));
                }
                acc.iter_mut().for_each(|v| *v = 0.0);
                dlrm::sls::simd::fold_rows_soa(black_box(&mut acc), black_box(&arena), None);
                black_box(&acc);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sls);
criterion_main!(benches);
