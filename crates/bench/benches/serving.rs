//! Criterion bench: the open-loop serving layer — arrival generation,
//! the latency histogram, batch formation, and one end-to-end serving
//! point. These are the paths a `latency_qps` sweep spends its time in
//! beyond the (already-benched) bag pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pifs_bench::{meta_distribution, scaled};
use pifs_core::system::{SlsSystem, SystemConfig};
use simkit::LatencyHist;
use tracegen::{ArrivalProcess, TraceSpec};

const N: usize = 4096;

fn bench_serving(c: &mut Criterion) {
    let mut g = c.benchmark_group("serving");

    g.bench_function("arrival_poisson", |b| {
        let p = ArrivalProcess::Poisson { qps: 1_000_000.0 };
        b.iter(|| black_box(p.times(N, 7).len()))
    });
    g.bench_function("arrival_bursty", |b| {
        let p = ArrivalProcess::Bursty {
            qps: 1_000_000.0,
            burst: 0.8,
            dwell_us: 200.0,
        };
        b.iter(|| black_box(p.times(N, 7).len()))
    });

    g.bench_function("fault_schedule_generate", |b| {
        // Seeded fault-event generation: the per-point setup cost a
        // cluster_faults sweep adds over its fault-free sibling.
        let spec = simkit::FaultSpec::parse("failstop:16000").expect("fault spec");
        b.iter(|| {
            let sched = simkit::FaultSchedule::generate(spec, 2024, 4, 100_000_000);
            black_box(sched.events().len())
        })
    });

    g.bench_function("latency_hist_record", |b| {
        // Record + tail read: the per-query accounting cost.
        let samples: Vec<u64> = {
            let mut rng = simkit::DetRng::new(3);
            (0..N).map(|_| rng.below(1 << 24)).collect()
        };
        b.iter(|| {
            let mut h = LatencyHist::new();
            for &s in &samples {
                h.record_ns(s);
            }
            black_box(h.percentile(0.99))
        })
    });
    g.bench_function("latency_hist_merge", |b| {
        let mut parts: Vec<LatencyHist> = Vec::new();
        let mut rng = simkit::DetRng::new(4);
        for _ in 0..8 {
            let mut h = LatencyHist::new();
            for _ in 0..N / 8 {
                h.record_ns(rng.below(1 << 24));
            }
            parts.push(h);
        }
        b.iter(|| {
            let mut all = LatencyHist::new();
            for p in &parts {
                all.merge(p);
            }
            black_box(all.percentile(0.99))
        })
    });

    g.bench_function("controller_tick", |b| {
        // The adaptive controller's steady-state per-batch cost:
        // record + on_batch + epoch_due across a mixed load pattern.
        // This path runs at every batch boundary of every adaptive
        // serving point, so it must stay O(ns)-cheap relative to batch
        // service time.
        use pifs_core::engine::controller::ServingController;
        use pifs_core::engine::serving::ServingConfig;
        let cfg = ServingConfig {
            controller: pifs_core::engine::controller::ControllerPolicy::Adaptive,
            ..ServingConfig::default()
        };
        let mut hotness = pagemgmt::GlobalHotness::new(4);
        for p in 0..256u64 {
            hotness
                .host_mut((p % 4) as usize)
                .record(pagemgmt::PageId(p));
        }
        b.iter(|| {
            let mut ctl = ServingController::new(&cfg);
            let mut moved = 0u32;
            for i in 0..256u64 {
                ctl.record_latency(simkit::SimDuration::from_ns((i % 64) * 1_000));
                if ctl.on_batch((i % 40) as u32, (i % 3) * 60_000).is_some() {
                    moved += 1;
                }
                black_box(ctl.epoch_due(&hotness));
            }
            black_box((moved, ctl.batch_size(), ctl.epoch_period()))
        })
    });

    // One end-to-end open-loop point near the PIFS-Rec knee: the number
    // a latency_qps sweep pays per grid point.
    g.bench_function("open_loop_pifs_rec", |b| {
        let model = scaled(dlrm::ModelConfig::rmc1());
        let trace = TraceSpec {
            distribution: meta_distribution(),
            n_tables: model.n_tables,
            rows_per_table: model.emb_num,
            batch_size: 32,
            n_batches: 3,
            bag_size: model.bag_size,
            seed: 11,
        }
        .generate();
        let arrivals = ArrivalProcess::Poisson { qps: 8_000_000.0 }.times(96, 13);
        b.iter(|| {
            let mut sys = SlsSystem::new(SystemConfig::pifs_rec(model.clone()));
            let met = sys.run_open_loop(&trace, &arrivals);
            black_box(met.latency.percentile(0.99))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
