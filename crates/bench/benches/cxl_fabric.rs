//! Criterion bench: CXL fabric data-plane costs — FlexBus link
//! serialization (per-flit vs batched arbitration), switch
//! upstream-port transfer + VCS transit, and the full switch→device
//! round trip through a Type 3 expander.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cxlsim::{CxlParams, FabricSwitch, FlexBusLink, M2sReq, Type3Device};
use simkit::{SimDuration, SimTime};

fn bench_link(c: &mut Criterion) {
    let p = CxlParams::default();
    let mut g = c.benchmark_group("cxl_link");
    g.bench_function("transfer_per_flit", |b| {
        let mut bus = FlexBusLink::new(&p);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_ns(2);
            bus.transfer(black_box(t), M2sReq::WIRE_BYTES)
        })
    });
    g.bench_function("transfer_batch_64", |b| {
        let mut bus = FlexBusLink::new(&p);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_ns(128);
            bus.transfer_batch_into(
                black_box(t),
                SimDuration::from_ns(2),
                M2sReq::WIRE_BYTES,
                64,
                &mut out,
            );
            out.last().copied()
        })
    });
    g.finish();
}

fn bench_switch(c: &mut Criterion) {
    let p = CxlParams::default();
    let mut g = c.benchmark_group("cxl_switch");
    g.bench_function("upstream_hop", |b| {
        let mut sw = FabricSwitch::new(0, 4, p);
        let mut t = SimTime::ZERO;
        let mut port = 0usize;
        b.iter(|| {
            t += SimDuration::from_ns(3);
            port = (port + 1) % 4;
            let arrived = sw.upstream_transfer(black_box(t), port, 64);
            sw.transit(arrived)
        })
    });
    g.bench_function("device_round_trip", |b| {
        let mut dev = Type3Device::new(0, p);
        let mut t = SimTime::ZERO;
        let mut addr = 0u64;
        b.iter(|| {
            t += SimDuration::from_ns(40);
            addr = addr.wrapping_add(0x9E37_79B9) & ((1 << 33) - 1);
            dev.read(black_box(t), addr & !63, 512)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_link, bench_switch);
criterion_main!(benches);
