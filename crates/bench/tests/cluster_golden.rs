//! Golden-snapshot and determinism regression for the sharded-cluster
//! `cluster_qps` sweep.
//!
//! `tests/golden/cluster_qps.jsonl` was captured when the cluster layer
//! landed. The sweep's JSONL output must stay byte-identical to it for
//! any runner thread count — the serving determinism bar extended
//! through the shard router, the per-node sub-point parts, and the
//! cross-node completion merge. If a change to the *model* legitimately
//! alters the numbers, recapture with `repro -- cluster_qps` and say so
//! in the commit.

use pifs_bench::runner::SweepRunner;
use pifs_bench::scenario::{find, point_seed, Point, Scenario};
use serde_json::Value;

fn golden_lines() -> Vec<String> {
    let raw = include_str!("golden/cluster_qps.jsonl");
    raw.lines().map(str::to_string).collect()
}

/// Rebuilds the grid points at `indices` exactly as the full grid
/// assigns them, so their rows are byte-comparable against the matching
/// golden lines.
fn cluster_points(scenario: &dyn Scenario, indices: &[usize]) -> Vec<Point> {
    let all = scenario.points();
    indices
        .iter()
        .map(|&i| {
            let p = &all[i];
            assert_eq!(p.index, i, "registry grid must be in row-major order");
            assert_eq!(p.seed, point_seed(pifs_bench::SEED, i));
            Point::new(p.index, p.seed, p.params().to_vec())
        })
        .collect()
}

/// Debug-friendly 4-point subset: both policies at 1 and 8 nodes, each
/// at one pre-knee (8 M) and one post-knee (32 M) offered rate,
/// byte-compared against the golden lines — the CI smoke gate.
#[test]
fn cluster_qps_subset_rows_match_golden_snapshot() {
    let scenario = find("cluster_qps").expect("cluster_qps registered");
    let golden = golden_lines();
    assert_eq!(golden.len(), scenario.points().len());
    // Grid: policy (2) × nodes (4) × qps (4), qps fastest. Row 1 =
    // row_hash/n1 @ 8M, 14 = row_hash/n8 @ 32M, 17 = table_partition/n1
    // @ 8M, 30 = table_partition/n8 @ 32M.
    let indices = [1usize, 14, 17, 30];
    let points = cluster_points(scenario, &indices);
    assert_eq!(points[0].str("policy"), "row_hash");
    assert_eq!(points[1].u64("nodes"), 8);
    assert_eq!(points[2].str("policy"), "table_partition");
    assert_eq!(points[3].u64("qps"), 32_000_000);
    let rows = SweepRunner::new(2).run_points(scenario, points);
    for (row, &i) in rows.iter().zip(&indices) {
        assert_eq!(
            row.to_jsonl(),
            golden[i],
            "cluster_qps row {i} drifted from the golden snapshot"
        );
    }
}

/// The cluster sweep is byte-identical across runner thread counts —
/// rows and summary both. This is the path that exercises the per-node
/// sub-point parts: at 4 threads different workers simulate different
/// shards of the same point, and the merge must not care.
#[test]
fn cluster_qps_is_thread_count_independent() {
    let scenario = find("cluster_qps").expect("cluster_qps registered");
    let points = |_: ()| {
        let all = scenario.points();
        if cfg!(debug_assertions) {
            // Same subset as the golden smoke test (keeps debug CI fast)
            // — 18 node-simulations across the 4 points.
            cluster_points(scenario, &[1, 14, 17, 30])
        } else {
            all
        }
    };
    let serial = SweepRunner::new(1).run_points(scenario, points(()));
    let parallel = SweepRunner::new(4).run_points(scenario, points(()));
    let jsonl = |rows: &[pifs_bench::scenario::ResultRow]| {
        rows.iter().map(|r| r.to_jsonl()).collect::<Vec<_>>()
    };
    assert_eq!(jsonl(&serial), jsonl(&parallel), "cluster_qps rows drifted");
    let summary = |rows| serde_json::to_string_pretty(&scenario.summarize(rows)).unwrap();
    assert_eq!(
        summary(&serial),
        summary(&parallel),
        "cluster_qps summary drifted"
    );
}

/// The full 32-point grid, byte-identical end to end, plus the
/// acceptance properties: every (policy, nodes) curve detects a knee,
/// the merged functional checksum is identical down every qps column
/// (shard-count and policy invariance at sweep scale), table
/// partitioning scales its stable throughput with nodes, and the
/// capacity summary answers for every swept rate. Release-only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full grid is release-only; run with --release -- --ignored"
)]
fn cluster_qps_full_grid_matches_golden_snapshot() {
    let scenario = find("cluster_qps").expect("cluster_qps registered");
    let golden = golden_lines();
    let rows = SweepRunner::new(4).run(scenario);
    let produced: Vec<String> = rows.iter().map(|r| r.to_jsonl()).collect();
    assert_eq!(produced, golden);

    // Checksum invariance: all 8 (policy, nodes) cells of a qps column
    // merged the exact same f64 result, bit for bit.
    let mut by_qps: Vec<(String, u64)> = Vec::new();
    for row in &rows {
        let qps = row
            .params
            .iter()
            .find(|(n, _)| n == "qps")
            .map(|(_, v)| v.to_string())
            .expect("qps param");
        let bits = row
            .data
            .get("checksum")
            .and_then(Value::as_f64)
            .expect("checksum")
            .to_bits();
        match by_qps.iter().find(|(q, _)| *q == qps) {
            Some((_, b)) => assert_eq!(*b, bits, "checksum drifted within qps column {qps}"),
            None => by_qps.push((qps, bits)),
        }
    }
    assert_eq!(by_qps.len(), 4, "one checksum per offered rate");

    let summary = scenario.summarize(&rows);
    let curves = summary
        .get("curves")
        .and_then(Value::as_object)
        .expect("curves map");
    assert_eq!(curves.len(), 8, "2 policies x 4 node counts");
    for (label, curve) in curves.iter() {
        assert!(
            curve.get("knee_qps").is_some_and(|v| v.as_f64().is_some()),
            "{label}: no saturation knee detected across the sweep"
        );
    }
    let stable = |label: &str| -> f64 {
        curves
            .get(label)
            .expect("curve present")
            .get("max_stable_qps")
            .and_then(Value::as_f64)
            .expect("max_stable_qps")
    };
    assert!(
        stable("table_partition/n8") > stable("table_partition/n1"),
        "table partitioning must raise the stable cluster throughput with nodes"
    );
    let capacity = summary
        .get("nodes_for_qps_at_sla")
        .and_then(Value::as_array)
        .expect("capacity summary");
    assert_eq!(capacity.len(), 4, "one capacity answer per offered rate");
}
