//! Golden-snapshot and determinism regression for the resilience
//! `cluster_faults` sweep.
//!
//! `tests/golden/cluster_faults.jsonl` was captured when the fault-
//! injection layer landed. The sweep's JSONL output must stay
//! byte-identical to it for any runner thread count — the cluster
//! determinism bar extended through the seeded fault schedules, the
//! liveness-aware router, the degraded merge, and the SLA shedder. If
//! a change to the *model* legitimately alters the numbers, recapture
//! with `repro -- cluster_faults` and say so in the commit.

use pifs_bench::runner::SweepRunner;
use pifs_bench::scenario::{find, point_seed, Point, Scenario};
use serde_json::Value;

fn golden_lines() -> Vec<String> {
    let raw = include_str!("golden/cluster_faults.jsonl");
    raw.lines().map(str::to_string).collect()
}

/// Rebuilds the grid points at `indices` exactly as the full grid
/// assigns them, so their rows are byte-comparable against the
/// matching golden lines.
fn fault_points(scenario: &dyn Scenario, indices: &[usize]) -> Vec<Point> {
    let all = scenario.points();
    indices
        .iter()
        .map(|&i| {
            let p = &all[i];
            assert_eq!(p.index, i, "registry grid must be in row-major order");
            assert_eq!(p.seed, point_seed(pifs_bench::SEED, i));
            Point::new(p.index, p.seed, p.params().to_vec())
        })
        .collect()
}

/// Debug-friendly 4-point subset covering each resilience mechanism
/// once: the zero-fault bar, a fail-stop cell that degrades, the same
/// cell with replicas failing over, and the deadline shedder at the
/// overload rate — byte-compared against the golden lines (the CI
/// smoke gate), then cross-checked for the semantics each row pins.
#[test]
fn cluster_faults_subset_rows_match_golden_snapshot() {
    let scenario = find("cluster_faults").expect("cluster_faults registered");
    let golden = golden_lines();
    assert_eq!(golden.len(), scenario.points().len());
    // Grid: fault (6) x shed (2) x replicas (2) x qps (3), qps
    // fastest. Row 0 = none/none/r0 @ 4M, 8 = none/deadline/r0 @
    // 128M, 24 = failstop:16000/none/r0 @ 4M, 27 = same fault with 64
    // replicas/table.
    let indices = [0usize, 8, 24, 27];
    let points = fault_points(scenario, &indices);
    assert_eq!(points[0].str("fault"), "none");
    assert_eq!(points[1].str("shed"), "deadline");
    assert_eq!(points[2].str("fault"), "failstop:16000");
    assert_eq!(points[3].u64("replicas"), 64);
    let rows = SweepRunner::new(2).run_points(scenario, points);
    for (row, &i) in rows.iter().zip(&indices) {
        assert_eq!(
            row.to_jsonl(),
            golden[i],
            "cluster_faults row {i} drifted from the golden snapshot"
        );
    }
    let get = |r: usize, key: &str| -> f64 {
        rows[r]
            .data
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("row {r} carries {key}"))
    };
    assert_eq!(
        get(0, "availability"),
        1.0,
        "fault-free runs answer everything"
    );
    assert!(
        get(1, "shed") > 0.0,
        "overload must trip the deadline shedder"
    );
    assert!(
        get(2, "availability") < 1.0,
        "fail-stop deaths must cost availability"
    );
    assert!(
        get(3, "mean_coverage") > get(2, "mean_coverage"),
        "replication must recover coverage"
    );
    assert!(get(3, "failovers") > 0.0, "replicas must absorb failovers");
}

/// The fault sweep is byte-identical across runner thread counts —
/// rows and summary both. At 4 threads different workers simulate
/// different nodes of the same faulted point, and the degraded merge
/// must not care.
#[test]
fn cluster_faults_is_thread_count_independent() {
    let scenario = find("cluster_faults").expect("cluster_faults registered");
    let points = |_: ()| {
        let all = scenario.points();
        if cfg!(debug_assertions) {
            // Same subset as the golden smoke test (keeps debug CI
            // fast) — 16 node-simulations across the 4 points.
            fault_points(scenario, &[0, 8, 24, 27])
        } else {
            all
        }
    };
    let serial = SweepRunner::new(1).run_points(scenario, points(()));
    let parallel = SweepRunner::new(4).run_points(scenario, points(()));
    let jsonl = |rows: &[pifs_bench::scenario::ResultRow]| {
        rows.iter().map(|r| r.to_jsonl()).collect::<Vec<_>>()
    };
    assert_eq!(
        jsonl(&serial),
        jsonl(&parallel),
        "cluster_faults rows drifted"
    );
    let summary = |rows| serde_json::to_string_pretty(&scenario.summarize(rows)).unwrap();
    assert_eq!(
        summary(&serial),
        summary(&parallel),
        "cluster_faults summary drifted"
    );
}

/// The full 72-point grid, byte-identical end to end, plus the
/// acceptance properties the issue pins: availability falls strictly
/// as the fail-stop rate rises (at the stable rate, bare fleet),
/// replication strictly recovers coverage at every fail-stop rate,
/// timing-only faults keep every query answered at full coverage, the
/// deadline shedder never worsens the overload tail, and the stable-
/// QPS frontier answers (with a TCO figure) for every recoverable
/// fault family. Release-only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full grid is release-only; run with --release -- --ignored"
)]
fn cluster_faults_full_grid_matches_golden_snapshot() {
    let scenario = find("cluster_faults").expect("cluster_faults registered");
    let golden = golden_lines();
    let rows = SweepRunner::new(4).run(scenario);
    let produced: Vec<String> = rows.iter().map(|r| r.to_jsonl()).collect();
    assert_eq!(produced, golden);

    let cell = |fault: &str, shed: &str, replicas: u64, qps: u64| {
        rows.iter()
            .find(|r| {
                let p = |n: &str| {
                    r.params
                        .iter()
                        .find(|(name, _)| name == n)
                        .map(|(_, v)| v.to_string())
                        .expect("param")
                };
                p("fault") == fault
                    && p("shed") == shed
                    && p("replicas") == replicas.to_string()
                    && p("qps") == qps.to_string()
            })
            .unwrap_or_else(|| panic!("cell {fault}/{shed}/r{replicas}/{qps} present"))
    };
    let get = |row: &pifs_bench::scenario::ResultRow, key: &str| -> f64 {
        row.data
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("row carries {key}"))
    };

    // Availability strictly decreasing as the fail-stop rate rises.
    let failstops = ["none", "failstop:4000", "failstop:16000", "failstop:64000"];
    let avail: Vec<f64> = failstops
        .iter()
        .map(|f| get(cell(f, "none", 0, 4_000_000), "availability"))
        .collect();
    for (pair, w) in avail.windows(2).enumerate() {
        assert!(
            w[0] > w[1],
            "availability must fall strictly with the fail-stop rate \
             ({} -> {}: {} vs {})",
            failstops[pair],
            failstops[pair + 1],
            w[0],
            w[1]
        );
    }
    // Replication strictly recovers coverage at every fail-stop rate.
    for fault in &failstops[1..] {
        let bare = get(cell(fault, "none", 0, 4_000_000), "mean_coverage");
        let replicated = get(cell(fault, "none", 64, 4_000_000), "mean_coverage");
        assert!(
            replicated > bare,
            "{fault}: replication must recover coverage ({replicated} vs {bare})"
        );
    }
    // Timing-only faults lose nothing: every query answered, full
    // coverage, and the same functional checksum as the clean run.
    for fault in ["slow:16000:4", "link:16000:8"] {
        for qps in [4_000_000, 16_000_000] {
            let row = cell(fault, "none", 0, qps);
            assert_eq!(get(row, "availability"), 1.0, "{fault}@{qps}: availability");
            assert_eq!(get(row, "mean_coverage"), 1.0, "{fault}@{qps}: coverage");
            assert_eq!(
                get(row, "checksum").to_bits(),
                get(cell("none", "none", 0, qps), "checksum").to_bits(),
                "{fault}@{qps}: timing faults cannot move a checksum bit"
            );
        }
    }
    // The deadline shedder sheds at the overload rate and never
    // worsens the tail of the answers that do complete.
    let open = cell("none", "none", 0, 128_000_000);
    let shedding = cell("none", "deadline", 0, 128_000_000);
    assert!(
        get(shedding, "shed") > 0.0,
        "overload must trip the shedder"
    );
    assert!(
        get(shedding, "p99_ns") <= get(open, "p99_ns"),
        "shedding must not worsen the overload tail"
    );

    let summary = scenario.summarize(&rows);
    let frontier = summary
        .get("stable_qps_frontier")
        .and_then(Value::as_array)
        .expect("frontier");
    assert_eq!(frontier.len(), 6, "one frontier answer per fault family");
    let entry = |fault: &str| -> &Value {
        frontier
            .iter()
            .find(|e| e.get("fault").and_then(Value::as_str) == Some(fault))
            .expect("frontier entry")
    };
    assert_eq!(
        entry("none")
            .get("overprovision_factor")
            .and_then(Value::as_f64),
        Some(1.0),
        "the fault-free fleet needs no headroom"
    );
    for fault in ["slow:16000:4", "link:16000:8"] {
        assert!(
            entry(fault)
                .get("extra_fleet_tco_usd")
                .is_some_and(|v| v.as_f64().is_some()),
            "{fault}: recoverable families price their headroom"
        );
    }
}
