//! Golden-snapshot and determinism regression for the `latency_diurnal`
//! long-trace streaming sweep.
//!
//! `tests/golden/latency_diurnal.jsonl` was captured when the streaming
//! serving path landed. Byte-identity here pins three things at once:
//! the lazy `QueryStream` workload (against its seeded recipe), the
//! windowed-latency bookkeeping, and the checkpoint warm-start cache —
//! rows must come out identical whether a point ran cold, resumed a
//! shorter point's checkpoint, or raced other points across runner
//! threads. If a change to the *model* legitimately alters the numbers,
//! recapture with `repro -- latency_diurnal` and say so in the commit.

use pifs_bench::runner::SweepRunner;
use pifs_bench::scenario::{find, point_seed, Point, ResultRow, Scenario};
use serde_json::Value;

fn golden_lines() -> Vec<String> {
    let raw = include_str!("golden/latency_diurnal.jsonl");
    raw.lines().map(str::to_string).collect()
}

/// Rebuilds the grid points at `indices` exactly as the full grid
/// assigns them, so their rows are byte-comparable against the matching
/// golden lines.
fn diurnal_points(scenario: &dyn Scenario, indices: &[usize]) -> Vec<Point> {
    let all = scenario.points();
    indices
        .iter()
        .map(|&i| {
            let p = &all[i];
            assert_eq!(p.index, i, "registry grid must be in row-major order");
            assert_eq!(p.seed, point_seed(pifs_bench::SEED, i));
            Point::new(p.index, p.seed, p.params().to_vec())
        })
        .collect()
}

fn jsonl(rows: &[ResultRow]) -> Vec<String> {
    rows.iter().map(|r| r.to_jsonl()).collect()
}

fn windows_series(row_json: &str, key: &str) -> Vec<u64> {
    let v: Value = serde_json::from_str(row_json).expect("golden row parses");
    v.get("data")
        .and_then(|d| d.get("windows"))
        .and_then(|w| w.get(key))
        .and_then(Value::as_array)
        .expect("windowed series")
        .iter()
        .map(|n| n.as_u64().expect("u64 series"))
        .collect()
}

/// Debug-friendly smoke: the shortest duration point (15 s of simulated
/// traffic, streamed) byte-matches its golden line — the CI smoke gate.
#[test]
fn latency_diurnal_first_point_matches_golden_snapshot() {
    let scenario = find("latency_diurnal").expect("latency_diurnal registered");
    let golden = golden_lines();
    assert_eq!(golden.len(), scenario.points().len());
    let points = diurnal_points(scenario, &[0]);
    assert_eq!(points[0].u64("duration_s"), 15);
    let rows = SweepRunner::new(2).run_points(scenario, points);
    assert_eq!(
        rows[0].to_jsonl(),
        golden[0],
        "latency_diurnal row 0 drifted from the golden snapshot"
    );
}

/// Rows and summary are byte-identical across runner thread counts —
/// which also races the warm-start checkpoint cache: with 4 threads the
/// duration points run concurrently (mostly cold), serially they chain
/// warm-starts, and the output must not tell the difference.
#[test]
fn latency_diurnal_is_thread_count_independent() {
    let scenario = find("latency_diurnal").expect("latency_diurnal registered");
    let points = |_: ()| {
        if cfg!(debug_assertions) {
            // 15 s + 30 s points only: the debug-budget subset (the 30 s
            // point still warm-starts off the 15 s checkpoint serially).
            diurnal_points(scenario, &[0, 1])
        } else {
            scenario.points()
        }
    };
    let serial = SweepRunner::new(1).run_points(scenario, points(()));
    let parallel = SweepRunner::new(4).run_points(scenario, points(()));
    assert_eq!(jsonl(&serial), jsonl(&parallel), "rows drifted");
    let summary = |rows| serde_json::to_string_pretty(&scenario.summarize(rows)).unwrap();
    assert_eq!(summary(&serial), summary(&parallel), "summary drifted");
}

/// The full grid, byte-identical end to end, plus the acceptance
/// properties: a ≥60 s simulated-traffic point, a clear diurnal swing
/// in the per-window counts, and the shared-prefix window property
/// (shorter durations' retired windows are a prefix of the longest
/// run's — the observable face of the checkpoint warm-start contract).
/// Release-only (the full grid streams ~52k queries).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full grid is release-only; run with --release -- --ignored"
)]
fn latency_diurnal_full_grid_matches_golden_snapshot() {
    let scenario = find("latency_diurnal").expect("latency_diurnal registered");
    let golden = golden_lines();
    let rows = SweepRunner::new(4).run(scenario);
    assert_eq!(jsonl(&rows), golden);

    // ≥60 s of simulated traffic served by the registered scenario.
    let longest = rows.last().expect("grid has rows");
    let simulated = longest
        .data
        .get("simulated_s")
        .and_then(Value::as_f64)
        .expect("simulated_s");
    assert!(
        simulated >= 60.0,
        "longest point simulated only {simulated} s"
    );

    // The windowed count series traces the diurnal modulation: with
    // amplitude 0.9 the peak/trough rate ratio is 19×; demand at least
    // a 5× swing so a flattened arrival process cannot pass.
    let summary = scenario.summarize(&rows);
    let ratio = summary
        .get("diurnal_swing")
        .and_then(|s| s.get("modulation_ratio"))
        .and_then(Value::as_f64)
        .expect("modulation_ratio");
    assert!(ratio >= 5.0, "diurnal swing washed out: ratio {ratio}");

    // Shared-prefix windows: every fully-retired window of a shorter
    // duration equals the same window of the longest run (the boundary
    // window is phase-clipped on the shorter side, so stop before it).
    for key in ["start_ns", "count", "p50_ns", "p99_ns"] {
        let long = windows_series(&rows.last().unwrap().to_jsonl(), key);
        for short_row in &rows[..rows.len() - 1] {
            let short = windows_series(&short_row.to_jsonl(), key);
            let shared = short.len() - 1;
            assert_eq!(
                short[..shared],
                long[..shared],
                "windows.{key}: shorter duration is not a prefix of the longest"
            );
        }
    }
}
