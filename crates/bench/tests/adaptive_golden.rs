//! Golden-snapshot and determinism regression for the
//! `latency_adaptive` controller sweep.
//!
//! `tests/golden/latency_adaptive.jsonl` was captured when the serving
//! controllers landed. The sweep's JSONL output must stay byte-identical
//! to it for any runner thread count — the controllers read only
//! sim-time-visible state, so an adaptive run is as reproducible as a
//! fixed-knob one. If a change to the *model* legitimately alters the
//! numbers, recapture with `repro -- latency_adaptive` and say so in
//! the commit.

use pifs_bench::runner::SweepRunner;
use pifs_bench::scenario::{find, point_seed, Point, Scenario};
use serde_json::Value;

fn golden_lines() -> Vec<String> {
    let raw = include_str!("golden/latency_adaptive.jsonl");
    raw.lines().map(str::to_string).collect()
}

/// Rebuilds the grid points at `indices` exactly as the full grid
/// assigns them, so their rows are byte-comparable against the matching
/// golden lines.
fn adaptive_points(scenario: &dyn Scenario, indices: &[usize]) -> Vec<Point> {
    let all = scenario.points();
    indices
        .iter()
        .map(|&i| {
            let p = &all[i];
            assert_eq!(p.index, i, "registry grid must be in row-major order");
            assert_eq!(p.seed, point_seed(pifs_bench::SEED, i));
            Point::new(p.index, p.seed, p.params().to_vec())
        })
        .collect()
}

/// Debug-friendly 4-point subset straddling the interesting corners:
/// the fixed and fully-adaptive controllers, each at one light-load
/// bursty point and at the 16 M QPS knee of the two-tenant mix —
/// byte-compared against the golden lines (the CI smoke gate).
///
/// Grid order: controller (4) × traffic (3) × qps (5), qps innermost,
/// so index = controller·15 + traffic·5 + qps.
#[test]
fn latency_adaptive_subset_rows_match_golden_snapshot() {
    let scenario = find("latency_adaptive").expect("latency_adaptive registered");
    let golden = golden_lines();
    assert_eq!(golden.len(), scenario.points().len());
    let indices = [0usize, 14, 45, 59];
    let points = adaptive_points(scenario, &indices);
    assert_eq!(points[0].str("controller"), "fixed");
    assert_eq!(points[0].str("traffic"), "bursty");
    assert_eq!(points[1].str("controller"), "fixed");
    assert_eq!(points[1].str("traffic"), "mix");
    assert_eq!(points[2].str("controller"), "adaptive");
    assert_eq!(points[3].str("controller"), "adaptive");
    assert_eq!(points[3].str("traffic"), "mix");
    let rows = SweepRunner::new(2).run_points(scenario, points);
    for (row, &i) in rows.iter().zip(&indices) {
        assert_eq!(
            row.to_jsonl(),
            golden[i],
            "latency_adaptive row {i} drifted from the golden snapshot"
        );
    }
}

/// The adaptive sweep is byte-identical across runner thread counts —
/// rows and summary both. This is the controller determinism bar: a
/// policy that peeked at wall-clock time, thread ids, or cross-point
/// state would diverge here.
#[test]
fn latency_adaptive_is_thread_count_independent() {
    let scenario = find("latency_adaptive").expect("latency_adaptive registered");
    // Subset grid in debug builds to keep the test fast; the full grid
    // runs in release (and in the release golden test below).
    let points = |_: ()| {
        let all = scenario.points();
        if cfg!(debug_assertions) {
            let idx: Vec<usize> = (0..all.len()).step_by(all.len().div_ceil(6)).collect();
            adaptive_points(scenario, &idx)
        } else {
            all
        }
    };
    let serial = SweepRunner::new(1).run_points(scenario, points(()));
    let parallel = SweepRunner::new(4).run_points(scenario, points(()));
    let jsonl = |rows: &[pifs_bench::scenario::ResultRow]| {
        rows.iter().map(|r| r.to_jsonl()).collect::<Vec<_>>()
    };
    assert_eq!(jsonl(&serial), jsonl(&parallel), "adaptive rows drifted");
    let summary = |rows| serde_json::to_string_pretty(&scenario.summarize(rows)).unwrap();
    assert_eq!(
        summary(&serial),
        summary(&parallel),
        "adaptive summary drifted"
    );
}

/// The full 60-point grid, byte-identical end to end, plus the PR's
/// acceptance property: on every traffic shape, the fully-adaptive
/// controller's p99 at the fixed policy's saturation knee is strictly
/// below the fixed policy's own p99 there — same queries, same arrival
/// instants, so the delta is pure controller effect. Release-only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full grid is release-only; run with --release -- --ignored"
)]
fn latency_adaptive_full_grid_matches_golden_snapshot() {
    let scenario = find("latency_adaptive").expect("latency_adaptive registered");
    let golden = golden_lines();
    let rows = SweepRunner::new(4).run(scenario);
    let produced: Vec<String> = rows.iter().map(|r| r.to_jsonl()).collect();
    assert_eq!(produced, golden);

    let summary = scenario.summarize(&rows);
    let at_knee = summary
        .get("p99_at_fixed_knee")
        .and_then(Value::as_array)
        .expect("p99_at_fixed_knee array");
    assert_eq!(at_knee.len(), 3, "one headline entry per traffic shape");
    for entry in at_knee {
        let traffic = entry
            .get("traffic")
            .and_then(Value::as_str)
            .expect("traffic");
        assert!(
            entry
                .get("fixed_knee_qps")
                .is_some_and(|v| v.as_f64().is_some()),
            "{traffic}: fixed policy never knees — the sweep no longer reaches saturation"
        );
        let p99 = |controller: &str| -> f64 {
            entry
                .get("p99_at_fixed_knee")
                .and_then(|m| m.get(controller))
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{traffic}: {controller} p99 at the fixed knee"))
        };
        let (fixed, adaptive) = (p99("fixed"), p99("adaptive"));
        assert!(
            adaptive < fixed,
            "{traffic}: adaptive p99 {adaptive} is not below fixed {fixed} at the fixed knee"
        );
        // The combined policy never loses to the better of its halves
        // by more than it wins: just require it beats fixed alongside
        // at least one single-mechanism policy, so a regression in
        // either mechanism is visible.
        assert!(
            p99("load") < fixed || p99("epoch") < fixed,
            "{traffic}: neither single-mechanism controller beats fixed at the knee"
        );
    }

    // Every curve reports honest stability nulls: `knee_qps` and
    // `max_stable_qps` are either numbers or null, never 0-as-absent.
    let curves = summary
        .get("curves")
        .and_then(Value::as_object)
        .expect("curves map");
    assert_eq!(curves.len(), 12, "4 controllers x 3 traffic shapes");
    for (label, curve) in curves.iter() {
        for key in ["knee_qps", "max_stable_qps", "sla_stable_qps"] {
            let v = curve.get(key).unwrap_or_else(|| panic!("{label}: {key}"));
            assert!(
                matches!(v, Value::Null) || v.as_f64().is_some_and(|x| x > 0.0),
                "{label}: {key} is {v:?} — must be a positive rate or an honest null"
            );
        }
    }
}
