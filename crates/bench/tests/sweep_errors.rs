//! Sweep-level rejection of degenerate serving knobs — the `repro`
//! binary itself, end to end.
//!
//! The regression this pins: `repro sweep ... --param batch_size=0`
//! used to launch the grid and panic inside a worker thread (a
//! half-written `results/` directory and a backtrace instead of a
//! usable message). Every invalid axis value or free-form knob must
//! now die *before any simulation starts*: exit code 2, the parser's
//! own reason on stderr, and no panic anywhere.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        // Keep any accidental grid launch tiny and off the real
        // results/ directory.
        .current_dir(env!("CARGO_TARGET_TMPDIR"))
        .output()
        .expect("spawn repro")
}

/// Asserts a sweep invocation dies cleanly: exit 2 (the CLI error
/// code), a stderr mentioning every given needle, and no panic.
fn assert_dies(args: &[&str], needles: &[&str]) {
    let out = repro(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?}: expected the clean CLI exit, got {:?}\nstderr: {stderr}",
        out.status
    );
    assert!(
        !stderr.contains("panicked"),
        "{args:?}: worker panic leaked to the user\nstderr: {stderr}"
    );
    for needle in needles {
        assert!(
            stderr.contains(needle),
            "{args:?}: stderr lacks {needle:?}\nstderr: {stderr}"
        );
    }
}

#[test]
fn zero_batch_size_is_a_sweep_level_error_not_a_worker_panic() {
    // Declared axis on `latency_wait`...
    assert_dies(
        &["sweep", "latency_wait", "--param", "batch_size=0"],
        &["batch_size", "must be positive"],
    );
    // ...and the free-form knob route through `custom`.
    assert_dies(
        &["sweep", "custom", "--param", "serving.batch_size=0"],
        &["serving.batch_size", "must be positive"],
    );
}

#[test]
fn degenerate_serving_knobs_die_with_the_parsers_reason() {
    assert_dies(
        &["sweep", "latency_wait", "--param", "max_wait_us=-1"],
        &["max_wait_us"],
    );
    assert_dies(
        &["sweep", "latency_adaptive", "--param", "controller=pid"],
        &["controller", "unknown serving controller"],
    );
    assert_dies(
        &["sweep", "latency_adaptive", "--param", "traffic=sawtooth"],
        &["traffic", "unknown arrival process"],
    );
    // Free-form knobs that don't exist at all.
    assert_dies(
        &["sweep", "custom", "--param", "serving.warp_factor=9"],
        &["unknown SystemConfig knob"],
    );
    // Non-free-form scenarios must not silently absorb unknown keys.
    assert_dies(
        &["sweep", "latency_qps", "--param", "serving.batch_size=0"],
        &["no parameter", "custom"],
    );
}

#[test]
fn the_cli_still_answers_when_asked_politely() {
    let out = repro(&["list"]);
    assert_eq!(out.status.code(), Some(0), "repro list must succeed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("latency_adaptive"),
        "registry listing lost the adaptive scenario"
    );
}
