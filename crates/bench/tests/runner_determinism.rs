//! Runner/registry invariants: a scenario sweep is bit-identical for
//! any thread count, and the registry resolves every id `repro -- all`
//! executes.

use pifs_bench::runner::SweepRunner;
use pifs_bench::scenario::{cartesian_points, find, registry, ParamSpec};

/// A 1-thread and an N-thread sweep of the same scenario must produce
/// identical JSONL rows and an identical summary (the acceptance bar
/// for the parallel runner).
#[test]
fn one_thread_and_many_threads_produce_identical_rows() {
    let scenario = find("fig6").expect("fig6 registered");
    let serial = SweepRunner::new(1).run(scenario);
    let parallel = SweepRunner::new(4).run(scenario);

    let jsonl = |rows: &[pifs_bench::scenario::ResultRow]| {
        rows.iter().map(|r| r.to_jsonl()).collect::<Vec<_>>()
    };
    assert_eq!(jsonl(&serial), jsonl(&parallel));

    let summary = |rows| serde_json::to_string_pretty(&scenario.summarize(rows)).unwrap();
    assert_eq!(summary(&serial), summary(&parallel));
}

/// Sweep grids with overridden axes are equally thread-count-independent
/// (covers the `repro -- sweep` path, including per-point seeds).
#[test]
fn sweep_grids_are_thread_count_independent() {
    let scenario = find("custom").expect("custom registered");
    let mut specs = scenario.params();
    // An off-paper grid: Pond vs PIFS-Rec on a 4-device pool.
    specs
        .iter_mut()
        .find(|s| s.name == "scheme")
        .unwrap()
        .values = vec![
        pifs_bench::scenario::ParamValue::Str("Pond".into()),
        pifs_bench::scenario::ParamValue::Str("PIFS-Rec".into()),
    ];
    specs.push(ParamSpec::u64s("n_devices", [4]));
    let serial: Vec<String> = SweepRunner::new(1)
        .run_points(scenario, cartesian_points(&specs))
        .iter()
        .map(|r| r.to_jsonl())
        .collect();
    let parallel = SweepRunner::new(3).run_points(scenario, cartesian_points(&specs));
    assert_eq!(
        serial,
        parallel.iter().map(|r| r.to_jsonl()).collect::<Vec<_>>()
    );
    assert_eq!(serial.len(), 2);
    // Points differing only in scheme share the same workload seed (and
    // therefore the same trace), so their rows are directly comparable.
    let seed = |i: usize| {
        parallel[i]
            .data
            .get("seed")
            .and_then(serde_json::Value::as_u64)
            .expect("seed")
    };
    assert_eq!(seed(0), seed(1));
}

/// Every id `repro -- all` iterates must resolve through the registry,
/// cover the complete historical experiment list, and declare a
/// non-empty grid.
#[test]
fn every_repro_all_id_resolves_with_a_nonempty_grid() {
    let historical = [
        "table1", "table2", "fig5", "fig6", "fig12a", "fig12b", "fig12c", "fig12d", "fig12e",
        "fig13a", "fig13b", "fig13c", "fig13d", "fig14", "fig15", "fig16", "fig17", "fig18",
        "energy",
    ];
    let all_ids: Vec<&str> = registry()
        .into_iter()
        .filter(|s| s.in_all())
        .map(|s| s.id())
        .collect();
    assert_eq!(
        all_ids, historical,
        "`all` must cover the paper set in order"
    );
    for s in registry() {
        assert!(find(s.id()).is_some(), "{} must resolve", s.id());
        assert!(!s.points().is_empty(), "{} has an empty grid", s.id());
        assert!(!s.title().is_empty(), "{} has no title", s.id());
    }
    // The sweep-only scenarios exist but stay out of `all` (it remains
    // the paper set).
    for id in ["custom", "latency_qps", "latency_wait"] {
        assert!(find(id).is_some_and(|s| !s.in_all()), "{id}");
    }
}

/// Grid shapes of the ported scenarios match the historical loop sizes.
#[test]
fn ported_grids_have_the_historical_point_counts() {
    let count = |id: &str| find(id).expect(id).points().len();
    assert_eq!(count("fig5"), 2 * 3 * 4 * 7);
    assert_eq!(count("fig6"), 5);
    assert_eq!(count("fig12a"), 4 * 5);
    assert_eq!(count("fig12b"), 5 * 5);
    assert_eq!(count("fig12c"), 4 * 5);
    assert_eq!(count("fig12d"), 3 * 5);
    assert_eq!(count("fig12e"), 4 * 5);
    assert_eq!(count("fig13a"), 9 * 2);
    assert_eq!(count("fig13b"), 2);
    assert_eq!(count("fig13c"), 3 * 6);
    assert_eq!(count("fig13d"), 10);
    assert_eq!(count("fig14"), 2 * 3 * 5);
    assert_eq!(count("fig15"), 4 * 16);
    assert_eq!(count("table2"), 1);
    assert_eq!(count("fig18"), 1);
}

/// EXPERIMENTS.md documents every registered scenario id (the doc and
/// the registry must not drift apart).
#[test]
fn experiments_doc_mentions_every_scenario() {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md"))
        .expect("EXPERIMENTS.md exists at the workspace root");
    for s in registry() {
        assert!(
            doc.contains(&format!("`{}`", s.id())),
            "EXPERIMENTS.md is missing a row for `{}`",
            s.id()
        );
    }
}
