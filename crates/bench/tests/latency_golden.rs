//! Golden-snapshot and determinism regression for the open-loop
//! `latency_qps` sweep.
//!
//! `tests/golden/latency_qps.jsonl` was captured when the serving layer
//! landed. The sweep's JSONL output must stay byte-identical to it for
//! any runner thread count — the same determinism bar the fig13a golden
//! enforces for the closed-loop engine, extended to the batcher,
//! arrival generator and latency-histogram paths. If a change to the
//! *model* legitimately alters the numbers, recapture with
//! `repro -- latency_qps` and say so in the commit.

use pifs_bench::runner::SweepRunner;
use pifs_bench::scenario::{find, point_seed, Point, Scenario};
use serde_json::Value;

fn golden_lines() -> Vec<String> {
    let raw = include_str!("golden/latency_qps.jsonl");
    raw.lines().map(str::to_string).collect()
}

/// Rebuilds the grid points at `indices` exactly as the full grid
/// assigns them, so their rows are byte-comparable against the matching
/// golden lines.
fn latency_points(scenario: &dyn Scenario, indices: &[usize]) -> Vec<Point> {
    let all = scenario.points();
    indices
        .iter()
        .map(|&i| {
            let p = &all[i];
            assert_eq!(p.index, i, "registry grid must be in row-major order");
            assert_eq!(p.seed, point_seed(pifs_bench::SEED, i));
            Point::new(p.index, p.seed, p.params().to_vec())
        })
        .collect()
}

/// Debug-friendly 4-point subset: Pond and PIFS-Rec, each at one
/// pre-knee and one post-knee offered rate, byte-compared against the
/// golden lines — the CI smoke gate.
#[test]
fn latency_qps_subset_rows_match_golden_snapshot() {
    let scenario = find("latency_qps").expect("latency_qps registered");
    let golden = golden_lines();
    assert_eq!(golden.len(), scenario.points().len());
    // 7 qps values per scheme: Pond rows 0..7, PIFS-Rec rows 28..35.
    // Indices 1/5 (1M / 16M) straddle Pond's knee; 29/33 PIFS-Rec's.
    let indices = [1usize, 5, 29, 33];
    let points = latency_points(scenario, &indices);
    assert_eq!(points[0].str("scheme"), "Pond");
    assert_eq!(points[2].str("scheme"), "PIFS-Rec");
    let rows = SweepRunner::new(2).run_points(scenario, points);
    for (row, &i) in rows.iter().zip(&indices) {
        assert_eq!(
            row.to_jsonl(),
            golden[i],
            "latency_qps row {i} drifted from the golden snapshot"
        );
    }
}

/// The new scenarios are byte-identical across runner thread counts —
/// rows and summary both (the serving determinism bar).
#[test]
fn latency_scenarios_are_thread_count_independent() {
    for id in ["latency_qps", "latency_wait"] {
        let scenario = find(id).expect("latency scenario registered");
        // Subset grid in debug builds to keep the test fast; the full
        // grid runs in release (and in the release golden test below).
        let points = |_: ()| {
            let all = scenario.points();
            if cfg!(debug_assertions) {
                let idx: Vec<usize> = (0..all.len()).step_by(all.len().div_ceil(6)).collect();
                latency_points(scenario, &idx)
            } else {
                all
            }
        };
        let serial = SweepRunner::new(1).run_points(scenario, points(()));
        let parallel = SweepRunner::new(4).run_points(scenario, points(()));
        let jsonl = |rows: &[pifs_bench::scenario::ResultRow]| {
            rows.iter().map(|r| r.to_jsonl()).collect::<Vec<_>>()
        };
        assert_eq!(jsonl(&serial), jsonl(&parallel), "{id} rows drifted");
        let summary = |rows| serde_json::to_string_pretty(&scenario.summarize(rows)).unwrap();
        assert_eq!(summary(&serial), summary(&parallel), "{id} summary drifted");
    }
}

/// The full 35-point grid, byte-identical end to end, plus the
/// monotone-or-saturating acceptance property on every scheme's curve.
/// Release-only (the full grid is ~35 serving simulations).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full grid is release-only; run with --release -- --ignored"
)]
fn latency_qps_full_grid_matches_golden_snapshot() {
    let scenario = find("latency_qps").expect("latency_qps registered");
    let golden = golden_lines();
    let rows = SweepRunner::new(4).run(scenario);
    let produced: Vec<String> = rows.iter().map(|r| r.to_jsonl()).collect();
    assert_eq!(produced, golden);

    // Acceptance: per scheme, p99 never ends below where it started
    // (flat batching floor, then the saturation knee), every scheme
    // saturates by the top offered rate, and the knee is detected.
    let summary = scenario.summarize(&rows);
    let schemes = summary
        .get("schemes")
        .and_then(Value::as_object)
        .expect("schemes map");
    assert_eq!(schemes.len(), baselines::Scheme::all().len());
    for (label, curve) in schemes.iter() {
        let p99: Vec<f64> = curve
            .get("p99_ns")
            .and_then(Value::as_array)
            .expect("p99 series")
            .iter()
            .map(|v| v.as_f64().expect("numeric p99"))
            .collect();
        assert!(
            p99.last() >= p99.first(),
            "{label}: overload p99 {:?} fell below the light-load floor {:?}",
            p99.last(),
            p99.first()
        );
        assert!(
            curve.get("knee_qps").is_some_and(|v| v.as_f64().is_some()),
            "{label}: no saturation knee detected across the sweep"
        );
        let max_stable = curve
            .get("max_stable_qps")
            .and_then(Value::as_f64)
            .expect("max_stable_qps");
        assert!(max_stable > 0.0, "{label}: no stable operating point");
    }
}
