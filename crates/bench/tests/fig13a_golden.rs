//! Golden-snapshot regression for the `fig13a` sweep.
//!
//! `tests/golden/fig13a.jsonl` was captured from the pre-optimization
//! engine (before the scratch-buffer, lazy-eviction-heap, index-heap and
//! decode-cache changes). Every hot-path optimization must keep the
//! sweep's JSONL output byte-identical to this snapshot — the
//! determinism bar stated in ARCHITECTURE.md's hot-path section. If a
//! change to the *model* (not an optimization) legitimately alters the
//! numbers, recapture the snapshot with `repro -- fig13a` and say so in
//! the commit.

use pifs_bench::runner::SweepRunner;
use pifs_bench::scenario::{find, point_seed, ParamValue, Point, Scenario};

fn golden_lines() -> Vec<String> {
    let raw = include_str!("golden/fig13a.jsonl");
    raw.lines().map(str::to_string).collect()
}

/// Rebuilds the grid points at `indices` exactly as the full fig13a grid
/// assigns them (same index, same per-point seed, same params), so their
/// rows are byte-comparable against the matching golden lines.
fn fig13a_points(scenario: &dyn Scenario, indices: &[usize]) -> Vec<Point> {
    let all = scenario.points();
    indices
        .iter()
        .map(|&i| {
            let p = &all[i];
            assert_eq!(p.index, i, "registry grid must be in row-major order");
            assert_eq!(p.seed, point_seed(pifs_bench::SEED, i));
            Point::new(p.index, p.seed, p.params().to_vec())
        })
        .collect()
}

/// Debug-friendly subset: one cheap and one paper-optimum threshold at
/// both migration granularities, compared byte-for-byte against the
/// matching golden lines.
#[test]
fn fig13a_subset_rows_match_pre_optimization_snapshot() {
    let scenario = find("fig13a").expect("fig13a registered");
    let golden = golden_lines();
    assert_eq!(golden.len(), scenario.points().len());
    // Rows 0/1: threshold 0.10; rows 10/11: threshold 0.35 (the paper's
    // optimum), each at cache_line and page_block granularity.
    let indices = [0usize, 1, 10, 11];
    let points = fig13a_points(scenario, &indices);
    // Sanity: the subset really is the thresholds we claim.
    assert_eq!(points[0].params()[1].1, ParamValue::F64(0.10));
    assert_eq!(points[2].params()[1].1, ParamValue::F64(0.35));
    let rows = SweepRunner::new(2).run_points(scenario, points);
    for (row, &i) in rows.iter().zip(&indices) {
        assert_eq!(
            row.to_jsonl(),
            golden[i],
            "fig13a row {i} drifted from the golden snapshot"
        );
    }
}

/// The full 18-point grid, byte-identical end to end. Ignored under
/// debug builds (the RMC4 grid takes tens of seconds unoptimized); run
/// it with `cargo test --release -p pifs-bench -- --ignored` or rely on
/// the CI bench job's release profile.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full grid is release-only; run with --release -- --ignored"
)]
fn fig13a_full_grid_matches_pre_optimization_snapshot() {
    let scenario = find("fig13a").expect("fig13a registered");
    let golden = golden_lines();
    let rows = SweepRunner::new(4).run(scenario);
    let produced: Vec<String> = rows.iter().map(|r| r.to_jsonl()).collect();
    assert_eq!(produced, golden);
}
