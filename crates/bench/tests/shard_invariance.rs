//! The shard-invariance differential suite: sharding is an
//! implementation detail the results must not see.
//!
//! On the same scaled-RMC1 open-loop workload the `latency_qps` debug
//! subset replays (seeded trace, Poisson arrivals at one pre-knee and
//! one post-knee rate):
//!
//! * a **1-shard cluster is byte-identical to plain
//!   [`run_open_loop`](SlsSystem::run_open_loop)** — same latency
//!   histogram, same makespan, same per-node run metrics, zero
//!   aggregation traffic;
//! * **k ∈ {2, 4, 8} shards produce bit-identical merged embeddings and
//!   per-query checksums** under both placement policies — the exact
//!   f64 merge plane (see `pifs_core::engine::cluster`) makes the
//!   partial-sum merge associative, so the shard partition cannot
//!   perturb a single mantissa bit;
//! * the cluster scenario's rows are **byte-identical at 1 and 4 runner
//!   threads**, where 4 threads simulate different shards of one point
//!   concurrently (the acceptance gate: "the shard-invariance suite
//!   passes at 1 and 4 threads").

use pifs_bench::runner::SweepRunner;
use pifs_bench::scenario::{find, workload_seed, ParamValue, Point};
use pifs_bench::{meta_distribution, scale_buffers, SEED, STD_BATCHES, STD_BATCH_SIZE};
use pifs_core::engine::cluster::{
    functional_tables, merged_bag_embedding, query_checksums, ClusterConfig, ShardPlacement,
    ShardPolicy, SlsCluster,
};
use pifs_core::system::{SlsSystem, SystemConfig};
use simkit::SimTime;
use tracegen::{ArrivalProcess, Trace};

const SERVE_QUERIES: usize = (STD_BATCHES * STD_BATCH_SIZE) as usize;
const POLICIES: [ShardPolicy; 2] = [ShardPolicy::RowHash, ShardPolicy::TablePartition];

/// The `latency_qps` workload construction, verbatim: trace seeded from
/// the model, arrivals from `(model, arrival, qps)`.
fn workload(qps: u64) -> (SystemConfig, Trace, Vec<SimTime>) {
    let m = pifs_bench::scaled(dlrm::ModelConfig::rmc1());
    let mut cfg = scale_buffers(SystemConfig::pifs_rec(m.clone()));
    cfg.apply_knob("serving.max_wait_us", "10").expect("knob");
    let model_param = ParamValue::Str("RMC1".into());
    let trace_seed = workload_seed(SEED, &[&model_param]);
    cfg.seed = trace_seed;
    let trace = tracegen::TraceSpec {
        distribution: meta_distribution(),
        n_tables: m.n_tables,
        rows_per_table: m.emb_num,
        batch_size: STD_BATCH_SIZE,
        n_batches: STD_BATCHES,
        bag_size: m.bag_size,
        seed: trace_seed,
    }
    .generate();
    let arrival_seed = workload_seed(
        SEED,
        &[
            &model_param,
            &ParamValue::Str("poisson".into()),
            &ParamValue::U64(qps),
        ],
    );
    let arrivals = ArrivalProcess::Poisson { qps: qps as f64 }.times(SERVE_QUERIES, arrival_seed);
    (cfg, trace, arrivals)
}

/// One pre-knee and one post-knee rate (the single-node knee sits at
/// ≈16 M QPS on the scaled RMC1 workload).
const RATES: [u64; 2] = [8_000_000, 32_000_000];

#[test]
fn one_shard_cluster_is_byte_identical_to_the_node() {
    for qps in RATES {
        let (cfg, trace, arrivals) = workload(qps);
        let plain = SlsSystem::new(cfg.clone()).run_open_loop(&trace, &arrivals);
        for policy in POLICIES {
            let m = SlsCluster::new(ClusterConfig::new(1, policy, cfg.clone()))
                .run_open_loop(&trace, &arrivals);
            assert_eq!(m.latency, plain.latency, "{policy:?} @ {qps}");
            assert_eq!(m.makespan_ns, plain.makespan_ns, "{policy:?} @ {qps}");
            assert_eq!(m.agg_bytes, 0);
            assert_eq!(
                m.per_node[0].run.checksum.to_bits(),
                plain.run.checksum.to_bits()
            );
            assert_eq!(m.per_node[0].run.lookups, plain.run.lookups);
            assert_eq!(m.per_node[0].run.total_ns, plain.run.total_ns);
        }
    }
}

#[test]
fn sharded_merges_are_bit_identical_for_every_shard_count() {
    let (cfg, trace, arrivals) = workload(RATES[0]);
    let tables = functional_tables(&cfg.model);
    // The unsharded reference: k = 1 (== the whole-bag exact sum).
    let reference = query_checksums(
        &ShardPlacement::build(
            &ClusterConfig::new(1, ShardPolicy::RowHash, cfg.clone()),
            &trace,
        ),
        &tables,
        &trace,
        arrivals.len(),
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    for policy in POLICIES {
        for k in [2u16, 4, 8] {
            let cluster_cfg = ClusterConfig::new(k, policy, cfg.clone());
            let placement = ShardPlacement::build(&cluster_cfg, &trace);
            // Per-query checksums, bit for bit.
            let got = query_checksums(&placement, &tables, &trace, arrivals.len());
            assert_eq!(
                bits(&got),
                bits(&reference),
                "{policy:?} k={k}: per-query checksums drifted"
            );
            // And the full merged embeddings of the first batch, element
            // by element, against the exact whole-bag reference.
            for sample in 0..trace.batch_size {
                for (t, table) in tables.iter().enumerate() {
                    let bag = trace.bag(0, t as u32, sample);
                    let merged = merged_bag_embedding(&placement, table, t as u32, bag);
                    let whole = dlrm::sls::sls_reference_exact(table, bag, None);
                    assert_eq!(
                        bits(&merged),
                        bits(&whole),
                        "{policy:?} k={k}: embedding drifted (table {t}, sample {sample})"
                    );
                }
            }
            // End-to-end: the full cluster run reports the same exact
            // checksums it would report unsharded.
            let met = SlsCluster::new(cluster_cfg).run_open_loop(&trace, &arrivals);
            assert_eq!(bits(&met.query_checksums), bits(&reference));
        }
    }
}

#[test]
fn cluster_scenario_rows_are_identical_at_1_and_4_threads() {
    // The same four golden-subset points, through the sub-point runner:
    // 4 workers split one point's shards, 1 worker runs them serially —
    // identical bytes either way.
    let scenario = find("cluster_qps").expect("cluster_qps registered");
    let all = scenario.points();
    let subset = |_: ()| {
        [1usize, 14, 17, 30]
            .iter()
            .map(|&i| Point::new(all[i].index, all[i].seed, all[i].params().to_vec()))
            .collect::<Vec<Point>>()
    };
    let serial = SweepRunner::new(1).run_points(scenario, subset(()));
    let parallel = SweepRunner::new(4).run_points(scenario, subset(()));
    let jsonl = |rows: &[pifs_bench::scenario::ResultRow]| {
        rows.iter().map(|r| r.to_jsonl()).collect::<Vec<_>>()
    };
    assert_eq!(jsonl(&serial), jsonl(&parallel));
}
