//! The parallel sweep runner: executes scenario work across a
//! `std::thread` worker pool and collects rows back in grid order.
//!
//! The schedulable unit is a *task* — one part of one grid point (most
//! points are a single part; scenarios with [`PointParts`] split each
//! point into its independent simulations). Tasks are flattened in grid
//! order and handed out by an atomic cursor, which makes the pool
//! work-stealing at sub-point granularity: when a figure has fewer grid
//! points than workers, idle workers pick up the remaining points'
//! parts instead of idling. Each task writes its value into the slot
//! reserved for its `(point, part)` pair, and rows are merged in part
//! order and read out in point order — so the emitted rows, and
//! therefore the summarized figure JSON, are bit-identical for any
//! thread count, which `tests/runner_determinism.rs` asserts.
//!
//! [`PointParts`]: crate::scenario::PointParts

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use serde_json::Value;

use crate::scenario::{Point, ResultRow, Scenario};

/// Executes scenario grids on a fixed-size worker pool.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    /// Worker threads (1 = the serial reference path).
    pub threads: usize,
}

/// What one sweep cost: wall time, scheduled tasks, and the number of
/// simulated events (DRAM line accesses, link transfers, switch
/// transits — see [`simkit::stats::record_events`]) its simulations
/// recorded. `events / wall` is the simulator-throughput figure the
/// `repro -- all` summary table reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Grid points executed.
    pub points: usize,
    /// Tasks scheduled (= points unless a scenario splits parts).
    pub tasks: usize,
    /// Simulated events recorded across all workers.
    pub events: u64,
}

impl RunStats {
    /// Simulated events per wall-clock second (0.0 when unmeasurable).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::with_default_threads()
    }
}

impl SweepRunner {
    /// A runner with an explicit thread count (minimum 1).
    pub fn new(threads: usize) -> SweepRunner {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// A runner sized to the machine: `REPRO_THREADS` if set, otherwise
    /// the available hardware parallelism.
    pub fn with_default_threads() -> SweepRunner {
        let threads = std::env::var("REPRO_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        SweepRunner::new(threads)
    }

    /// Runs every point of `scenario`'s default grid. Rows come back in
    /// grid order regardless of which worker finished first.
    pub fn run(&self, scenario: &dyn Scenario) -> Vec<ResultRow> {
        self.run_points(scenario, scenario.points())
    }

    /// Runs an explicit point list (the `sweep` subcommand's override
    /// grids) through the pool.
    pub fn run_points(&self, scenario: &dyn Scenario, points: Vec<Point>) -> Vec<ResultRow> {
        self.run_points_stats(scenario, points).0
    }

    /// [`Self::run`] plus the sweep's [`RunStats`].
    pub fn run_stats(&self, scenario: &dyn Scenario) -> (Vec<ResultRow>, RunStats) {
        self.run_points_stats(scenario, scenario.points())
    }

    /// Runs `points` through the pool, also reporting [`RunStats`].
    pub fn run_points_stats(
        &self,
        scenario: &dyn Scenario,
        points: Vec<Point>,
    ) -> (Vec<ResultRow>, RunStats) {
        let started = std::time::Instant::now();
        // Flatten (point, part) tasks in grid order.
        let parts_of: Vec<usize> = points.iter().map(|p| scenario.parts(p).max(1)).collect();
        let tasks: Vec<(usize, usize)> = parts_of
            .iter()
            .enumerate()
            .flat_map(|(pi, &n)| (0..n).map(move |part| (pi, part)))
            .collect();
        let slots: Vec<Vec<Mutex<Option<Value>>>> = parts_of
            .iter()
            .map(|&n| (0..n).map(|_| Mutex::new(None)).collect())
            .collect();
        let cursor = AtomicUsize::new(0);
        let events = AtomicU64::new(0);
        let workers = self.threads.min(tasks.len()).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let events_before = simkit::stats::events_recorded();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        let (pi, part) = tasks[i];
                        let value = scenario.run_part(&points[pi], part);
                        *slots[pi][part].lock().expect("runner slot poisoned") = Some(value);
                    }
                    let delta = simkit::stats::events_recorded() - events_before;
                    events.fetch_add(delta, Ordering::Relaxed);
                });
            }
        });

        let rows: Vec<ResultRow> = slots
            .into_iter()
            .zip(&points)
            .map(|(point_slots, point)| {
                let values: Vec<Value> = point_slots
                    .into_iter()
                    .map(|slot| {
                        slot.into_inner()
                            .expect("runner slot poisoned")
                            .expect("every task produced a value")
                    })
                    .collect();
                ResultRow {
                    index: point.index,
                    params: point.params().to_vec(),
                    data: scenario.merge_parts(point, values),
                }
            })
            .collect();
        let stats = RunStats {
            wall: started.elapsed(),
            points: rows.len(),
            tasks: tasks.len(),
            events: events.load(Ordering::Relaxed),
        };
        (rows, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{cartesian_points, ParamSpec, PointParts};
    use serde_json::json;

    struct Doubler;
    impl Scenario for Doubler {
        fn id(&self) -> &'static str {
            "doubler"
        }
        fn title(&self) -> &'static str {
            "test scenario"
        }
        fn params(&self) -> Vec<ParamSpec> {
            vec![ParamSpec::u64s("x", 0..32)]
        }
        fn run(&self, point: &Point) -> Value {
            json!(point.u64("x") * 2)
        }
        fn summarize(&self, rows: &[ResultRow]) -> Value {
            Value::Array(rows.iter().map(|r| r.data.clone()).collect())
        }
    }

    /// A scenario whose points split into three independent parts.
    struct Tripler;
    impl Scenario for Tripler {
        fn id(&self) -> &'static str {
            "tripler"
        }
        fn title(&self) -> &'static str {
            "split-point test scenario"
        }
        fn params(&self) -> Vec<ParamSpec> {
            vec![ParamSpec::u64s("x", 0..4)]
        }
        fn run(&self, point: &Point) -> Value {
            let parts = (0..3).map(|part| self.run_part(point, part)).collect();
            self.merge_parts(point, parts)
        }
        fn parts(&self, _point: &Point) -> usize {
            3
        }
        fn run_part(&self, point: &Point, part: usize) -> Value {
            json!(point.u64("x") * 10 + part as u64)
        }
        fn merge_parts(&self, _point: &Point, values: Vec<Value>) -> Value {
            // Order-sensitive merge: catches any part reordering.
            Value::Array(values)
        }
        fn summarize(&self, rows: &[ResultRow]) -> Value {
            Value::Array(rows.iter().map(|r| r.data.clone()).collect())
        }
    }

    #[test]
    fn rows_come_back_in_grid_order_for_any_thread_count() {
        let serial = SweepRunner::new(1).run(&Doubler);
        for threads in [2, 5, 32] {
            let parallel = SweepRunner::new(threads).run(&Doubler);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.to_jsonl(), b.to_jsonl());
            }
        }
    }

    #[test]
    fn split_points_merge_identically_for_any_thread_count() {
        let serial = SweepRunner::new(1).run(&Tripler);
        // The merged rows equal a direct run() of each point.
        for (row, point) in serial.iter().zip(Tripler.points()) {
            assert_eq!(row.data, Tripler.run(&point));
        }
        for threads in [2, 7, 16] {
            let parallel = SweepRunner::new(threads).run(&Tripler);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.to_jsonl(), b.to_jsonl());
            }
        }
    }

    #[test]
    fn split_points_outnumber_workers_gracefully() {
        // 1 point × 3 parts with 8 requested threads must still complete
        // (this is the fewer-points-than-threads shape parts exist for).
        let mut points = cartesian_points(&[ParamSpec::u64s("x", [3])]);
        assert_eq!(points.len(), 1);
        let (rows, stats) =
            SweepRunner::new(8).run_points_stats(&Tripler, std::mem::take(&mut points));
        assert_eq!(rows.len(), 1);
        assert_eq!(stats.points, 1);
        assert_eq!(stats.tasks, 3);
        assert_eq!(rows[0].data, json!([30u64, 31u64, 32u64]));
    }

    #[test]
    fn grid_scenario_point_parts_round_trip() {
        // A GridScenario with PointParts: run() must equal the
        // part-split path exactly.
        static SPLIT: crate::scenario::GridScenario = crate::scenario::GridScenario {
            id: "split-test",
            title: "grid parts",
            params: || vec![ParamSpec::u64s("x", 0..3)],
            points: None,
            run: |p| json!([p.u64("x"), p.u64("x") + 1]),
            parts: Some(PointParts {
                count: |_| 2,
                run: |p, part| json!(p.u64("x") + part as u64),
                merge: |_, values| Value::Array(values),
            }),
            summarize: |rows| Value::Array(rows.iter().map(|r| r.data.clone()).collect()),
            free_params: false,
            in_all: false,
        };
        let rows = SweepRunner::new(4).run(&SPLIT);
        for (row, point) in rows.iter().zip(SPLIT.points()) {
            assert_eq!(row.data, (SPLIT.run)(&point));
        }
    }

    #[test]
    fn pool_never_spawns_more_workers_than_points() {
        // A 1-point grid with 8 requested threads must still complete.
        let mut points = cartesian_points(&[ParamSpec::u64s("x", [3])]);
        assert_eq!(points.len(), 1);
        let rows = SweepRunner::new(8).run_points(&Doubler, std::mem::take(&mut points));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].data, json!(6u64));
    }

    #[test]
    fn stats_report_wall_tasks_and_points() {
        let (rows, stats) = SweepRunner::new(2).run_stats(&Doubler);
        assert_eq!(stats.points, rows.len());
        assert_eq!(stats.tasks, rows.len()); // unsplit scenario
        assert_eq!(stats.events, 0); // no simulation behind Doubler
    }

    #[test]
    fn thread_env_override_is_respected() {
        assert_eq!(SweepRunner::new(0).threads, 1);
        assert!(SweepRunner::with_default_threads().threads >= 1);
    }
}
