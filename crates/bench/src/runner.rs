//! The parallel sweep runner: executes a scenario's grid points across a
//! `std::thread` worker pool and collects rows back in grid order.
//!
//! Points are independent simulations (each builds its own
//! `SlsSystem`), so the pool is a plain work-stealing-free design: an
//! atomic cursor hands out point indices, each worker writes its row
//! into the slot reserved for that index, and the final row vector is
//! read out in index order. Because every [`Point`] carries a seed
//! derived from its index alone, the emitted rows — and therefore the
//! summarized figure JSON — are bit-identical for any thread count,
//! which `tests/runner_determinism.rs` asserts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::scenario::{Point, ResultRow, Scenario};

/// Executes scenario grids on a fixed-size worker pool.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    /// Worker threads (1 = the serial reference path).
    pub threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::with_default_threads()
    }
}

impl SweepRunner {
    /// A runner with an explicit thread count (minimum 1).
    pub fn new(threads: usize) -> SweepRunner {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// A runner sized to the machine: `REPRO_THREADS` if set, otherwise
    /// the available hardware parallelism.
    pub fn with_default_threads() -> SweepRunner {
        let threads = std::env::var("REPRO_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        SweepRunner::new(threads)
    }

    /// Runs every point of `scenario`'s default grid. Rows come back in
    /// grid order regardless of which worker finished first.
    pub fn run(&self, scenario: &dyn Scenario) -> Vec<ResultRow> {
        self.run_points(scenario, scenario.points())
    }

    /// Runs an explicit point list (the `sweep` subcommand's override
    /// grids) through the pool.
    pub fn run_points(&self, scenario: &dyn Scenario, points: Vec<Point>) -> Vec<ResultRow> {
        let n = points.len();
        let slots: Vec<Mutex<Option<ResultRow>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(n).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let point = &points[i];
                    let row = ResultRow {
                        index: point.index,
                        params: point.params().to_vec(),
                        data: scenario.run(point),
                    };
                    *slots[i].lock().expect("runner slot poisoned") = Some(row);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("runner slot poisoned")
                    .expect("every point produced a row")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{cartesian_points, ParamSpec};
    use serde_json::{json, Value};

    struct Doubler;
    impl Scenario for Doubler {
        fn id(&self) -> &'static str {
            "doubler"
        }
        fn title(&self) -> &'static str {
            "test scenario"
        }
        fn params(&self) -> Vec<ParamSpec> {
            vec![ParamSpec::u64s("x", 0..32)]
        }
        fn run(&self, point: &Point) -> Value {
            json!(point.u64("x") * 2)
        }
        fn summarize(&self, rows: &[ResultRow]) -> Value {
            Value::Array(rows.iter().map(|r| r.data.clone()).collect())
        }
    }

    #[test]
    fn rows_come_back_in_grid_order_for_any_thread_count() {
        let serial = SweepRunner::new(1).run(&Doubler);
        for threads in [2, 5, 32] {
            let parallel = SweepRunner::new(threads).run(&Doubler);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.to_jsonl(), b.to_jsonl());
            }
        }
    }

    #[test]
    fn pool_never_spawns_more_workers_than_points() {
        // A 1-point grid with 8 requested threads must still complete.
        let mut points = cartesian_points(&[ParamSpec::u64s("x", [3])]);
        assert_eq!(points.len(), 1);
        let rows = SweepRunner::new(8).run_points(&Doubler, std::mem::take(&mut points));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].data, json!(6u64));
    }

    #[test]
    fn thread_env_override_is_respected() {
        assert_eq!(SweepRunner::new(0).threads, 1);
        assert!(SweepRunner::with_default_threads().threads >= 1);
    }
}
