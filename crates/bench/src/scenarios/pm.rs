//! Page-management scenarios (§IV-B / Fig 13): migration-threshold and
//! cold-age sweeps plus the device-balance before/after study.

use pagemgmt::{InitialPlacement, MigrationGranularity};
use pifs_core::system::{PmConfig, PmStyle, SystemConfig};
use serde_json::{json, Value};
use tracegen::Distribution;

use crate::scenario::{GridScenario, ParamSpec, ParamValue, ResultRow};
use crate::{run_std, run_with, scale_buffers, std_trace, STD_BATCH_SIZE};

/// Fig 13a: migrate-threshold sweep at both migration granularities.
pub static FIG13A: GridScenario = GridScenario {
    id: "fig13a",
    title: "Migrate-threshold sweep (Fig 13a; paper optimum 35%, cache-line up to 5.1x cheaper)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC4"]),
            ParamSpec::f64s(
                "threshold",
                [0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50],
            ),
            ParamSpec::strs("granularity", ["cache_line", "page_block"]),
        ]
    },
    points: None,
    run: |p| {
        let m = p.model();
        let gran = match p.str("granularity") {
            "cache_line" => MigrationGranularity::CacheLineBlock,
            "page_block" => MigrationGranularity::PageBlock,
            other => panic!("param \"granularity\": unknown granularity {other:?}"),
        };
        let mut cfg = SystemConfig::pifs_rec(m);
        cfg.page_mgmt = Some(PmConfig {
            migrate_threshold: p.f64("threshold"),
            granularity: gran,
            ..PmConfig::default()
        });
        let met = run_std(cfg);
        json!({
            "latency_ns": met.total_ns,
            "migration_cost": met.migration_cost_frac(),
        })
    },
    parts: None,
    summarize: |rows| {
        let mut out = Vec::new();
        for chunk in rows.chunks(2) {
            let mut row = serde_json::Map::new();
            row.insert("threshold".into(), chunk[0].params[1].1.to_json());
            for r in chunk {
                let label = r.params[2].1.to_string();
                row.insert(
                    format!("{label}_latency_ns"),
                    r.data.get("latency_ns").expect("latency_ns").clone(),
                );
                row.insert(
                    format!("{label}_migration_cost"),
                    r.data
                        .get("migration_cost")
                        .expect("migration_cost")
                        .clone(),
                );
            }
            out.push(Value::Object(row));
        }
        Value::Array(out)
    },
    free_params: false,
    in_all: true,
};

/// Fig 13b: per-device access balance with and without page management.
pub static FIG13B: GridScenario = GridScenario {
    id: "fig13b",
    title: "Device access balance before/after PM (Fig 13b; paper std dev 20.6 -> 7.8)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC4"]),
            ParamSpec::strs("phase", ["before", "after"]),
        ]
    },
    points: None,
    run: |p| {
        let m = p.model();
        // The "before" system inherits the Fig 10(b) worst case: tables
        // laid out in contiguous blocks, concentrating the workload's
        // spatial hotspot on a few devices.
        let n_pages = SystemConfig::pifs_rec(m.clone()).n_pages();
        let dist = Distribution::ZipfianHead { s: 0.8 };
        // Longer run: the spreading strategy rebalances periodically, so
        // give it several rebalance rounds before measuring.
        let trace = std_trace(&m, dist, STD_BATCH_SIZE, 36);
        let mut cfg = scale_buffers(SystemConfig::pifs_rec(m));
        cfg.n_devices = 16;
        cfg.placement = InitialPlacement::AllCxlBlocked {
            total_pages: n_pages,
        };
        cfg.warmup_batches = 24;
        if p.str("phase") == "before" {
            cfg.page_mgmt = None;
        }
        let met = run_with(cfg, &trace);
        json!({ "accesses": met.device_accesses })
    },
    parts: None,
    summarize: |rows| {
        let accesses = |row: &ResultRow| -> Vec<u64> {
            row.data
                .get("accesses")
                .and_then(Value::as_array)
                .expect("accesses array")
                .iter()
                .map(|v| v.as_u64().expect("access count"))
                .collect()
        };
        // The paper plots *relative* access frequency (percent of the
        // busiest device) and quotes the std dev of that series.
        let rel = |v: &Vec<u64>| {
            let max = (*v.iter().max().unwrap_or(&1)).max(1) as f64;
            v.iter()
                .map(|&x| x as f64 / max * 100.0)
                .collect::<Vec<f64>>()
        };
        // Coefficient of variation (std dev as % of mean): comparable
        // across runs whose total CXL traffic differs (PM also promotes
        // pages away from CXL, shrinking the absolute counts).
        let std_of = |v: &Vec<u64>| {
            let xs: Vec<f64> = v.iter().map(|&x| x as f64).collect();
            let s = simkit::Summary::of(&xs);
            if s.mean > 0.0 {
                s.std_dev / s.mean * 100.0
            } else {
                0.0
            }
        };
        let phase = |row: &ResultRow| {
            let v = accesses(row);
            json!({
                "accesses": v.clone(),
                "relative": rel(&v),
                "cv_percent": std_of(&v),
            })
        };
        json!({ "before": phase(&rows[0]), "after": phase(&rows[1]) })
    },
    free_params: false,
    in_all: true,
};

/// Fig 13d: cold-age demotion threshold sweep vs the TPP baseline.
pub static FIG13D: GridScenario = GridScenario {
    id: "fig13d",
    title: "Cold-age threshold sweep vs TPP (Fig 13d; paper optimum 16%, 12% below TPP)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC4"]),
            ParamSpec {
                name: "policy",
                values: std::iter::once(ParamValue::Str("TPP".into()))
                    .chain(
                        [0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16, 0.18, 0.20]
                            .into_iter()
                            .map(ParamValue::F64),
                    )
                    .collect(),
            },
        ]
    },
    points: None,
    run: |p| {
        let m = p.model();
        let mut cfg = SystemConfig::pifs_rec(m);
        cfg.page_mgmt = Some(match p.get("policy") {
            Some(ParamValue::Str(s)) if s == "TPP" => PmConfig {
                style: PmStyle::Tpp,
                ..PmConfig::default()
            },
            Some(ParamValue::F64(t)) => PmConfig {
                cold_age_threshold: *t,
                ..PmConfig::default()
            },
            other => panic!("param \"policy\": expected \"TPP\" or a threshold, got {other:?}"),
        });
        let met = run_std(cfg);
        json!({
            "latency_ns": met.total_ns,
            "migration_cost": met.migration_cost_frac(),
        })
    },
    parts: None,
    summarize: |rows| {
        let out: Vec<Value> = rows
            .iter()
            .map(|r| {
                let label = match &r.params[1].1 {
                    ParamValue::Str(s) => s.clone(),
                    ParamValue::F64(t) => format!("{}%", (t * 100.0).round() as u32),
                    ParamValue::U64(t) => format!("{t}%"),
                };
                json!({
                    "policy": label,
                    "latency_ns": r.data.get("latency_ns").expect("latency_ns").clone(),
                    "migration_cost": r.data.get("migration_cost").expect("migration_cost").clone(),
                })
            })
            .collect();
        Value::Array(out)
    },
    free_params: false,
    in_all: true,
};
