//! Analytic scenarios: no simulation, just the paper's closed-form
//! models — Table I/II dumps, TCO (Fig 16), GPU serving roofline
//! (Fig 17), hardware overheads (Fig 18), and the §VI-D energy model.
//!
//! These all operate on the *unscaled* Table I models: they describe
//! deployment-size hardware, not the scaled simulation workload.

use baselines::GpuParameterServer;
use dlrm::ModelConfig;
use serde_json::{json, Value};
use tco::{EnergyModel, HardwareOverheads, SystemBom};

use crate::scenario::{GridScenario, ParamSpec, Point, ResultRow};

fn raw_model(p: &Point) -> ModelConfig {
    let name = p.str("model");
    ModelConfig::by_name(name)
        .unwrap_or_else(|| panic!("param \"model\": unknown Table I model {name:?}"))
}

fn rows_array(rows: &[ResultRow]) -> Value {
    Value::Array(rows.iter().map(|r| r.data.clone()).collect())
}

fn single(rows: &[ResultRow]) -> Value {
    rows[0].data.clone()
}

/// Table I: the four model configurations.
pub static TABLE1: GridScenario = GridScenario {
    id: "table1",
    title: "Model parameters (Table I)",
    params: || vec![ParamSpec::models()],
    points: None,
    run: |p| {
        let m = raw_model(p);
        json!({
            "name": m.name, "emb_num": m.emb_num, "emb_dim": m.emb_dim,
            "bottom_mlp": m.bottom_mlp.0, "top_mlp": m.top_mlp.0,
            "row_bytes": m.row_bytes(),
        })
    },
    parts: None,
    summarize: rows_array,
    free_params: false,
    in_all: true,
};

/// Table II: the simulated hardware configuration.
pub static TABLE2: GridScenario = GridScenario {
    id: "table2",
    title: "Hardware configuration (Table II)",
    params: Vec::new,
    points: None,
    run: |_| {
        let local = memsim::DramConfig::ddr5_4800_local();
        let cxl = memsim::DramConfig::ddr4_cxl_expander();
        let params = cxlsim::CxlParams::default();
        let dram_json = |cfg: &memsim::DramConfig| {
            json!({
                "timings": json!({
                    "cl": cfg.timings.cl, "rcd": cfg.timings.rcd, "rp": cfg.timings.rp,
                    "ras": cfg.timings.ras, "rc": cfg.timings.rc, "wr": cfg.timings.wr,
                    "rtp": cfg.timings.rtp, "cwl": cfg.timings.cwl, "rfc": cfg.timings.rfc,
                    "faw": cfg.timings.faw, "rrd": cfg.timings.rrd,
                    "burst_length": cfg.timings.burst_length,
                    "refi_ns": cfg.timings.refi_ns, "tck_ps": cfg.timings.tck_ps,
                }),
                "org": json!({
                    "channels": cfg.org.channels, "ranks": cfg.org.ranks,
                    "banks": cfg.org.banks, "row_bytes": cfg.org.row_bytes,
                    "bus_bytes": cfg.org.bus_bytes, "capacity_bytes": cfg.org.capacity_bytes,
                }),
                "peak_gbps": cfg.peak_bandwidth_gbps(),
            })
        };
        json!({
            "dram_local": dram_json(&local),
            "dram_cxl_expander": dram_json(&cxl),
            "cxl": json!({
                "downstream_port_gbps": params.link_gbps,
                "round_trip_penalty_ns": params.round_trip_ns(),
            }),
        })
    },
    parts: None,
    summarize: single,
    free_params: false,
    in_all: true,
};

fn tco_memory_gb(model: &ModelConfig) -> u64 {
    (GpuParameterServer::deployment_bytes(model) >> 30).max(64)
}

/// Fig 16: three-year TCO of PIFS-Rec vs 2–4-GPU budgets.
pub static FIG16: GridScenario = GridScenario {
    id: "fig16",
    title: "TCO vs GPU budgets (Fig 16; paper: 3.38x cheaper on RMC1, 2.53x on RMC4 vs 1 GPU)",
    params: || vec![ParamSpec::models()],
    points: None,
    run: |p| {
        let model = raw_model(p);
        let mem = tco_memory_gb(&model);
        let pifs = SystemBom::pifs_rec(mem / 5, mem * 4 / 5).tco();
        let mut entry = serde_json::Map::new();
        entry.insert("model".into(), json!(model.name));
        entry.insert(
            "pifs".into(),
            json!({ "capex": pifs.bom.capex_usd, "opex": pifs.opex_usd,
                     "total": pifs.total_usd() }),
        );
        for n in [2u32, 3, 4] {
            let gpu = SystemBom::gpu_server(n, mem).tco();
            entry.insert(
                format!("gpu_x{n}"),
                json!({ "capex": gpu.bom.capex_usd, "opex": gpu.opex_usd,
                         "total": gpu.total_usd(),
                         "pifs_cost_advantage": gpu.total_usd() / pifs.total_usd() }),
            );
        }
        Value::Object(entry)
    },
    parts: None,
    summarize: rows_array,
    free_params: false,
    in_all: true,
};

/// Fig 17: serving throughput and performance-per-watt vs GPU servers.
pub static FIG17: GridScenario = GridScenario {
    id: "fig17",
    title: "Serving throughput (Fig 17; paper: GPU wins RMC1, PIFS 1.6x over 4 GPUs on RMC4; PPW 1.22-1.61x)",
    params: || vec![ParamSpec::models()],
    points: None,
    run: |p| {
        let model = raw_model(p);
        let pifs = baselines::gpu::pifs_throughput_samples_per_us(
            &model,
            baselines::gpu::PIFS_EFFECTIVE_SLS_GBPS,
        );
        let mut vals = vec![];
        for n in [2u32, 3, 4] {
            vals.push(GpuParameterServer::new(n).throughput_samples_per_us(&model));
        }
        vals.push(pifs);
        let ppw: Vec<f64> = [2u32, 3, 4]
            .iter()
            .map(|&n| vals[(n - 2) as usize] / GpuParameterServer::new(n).power_w())
            .chain(std::iter::once(pifs / (360.0 + 400.0 + 2048.0 * 0.34)))
            .collect();
        json!({
            "model": model.name,
            "series": ["GPUX2", "GPUX3", "GPUX4", "PIFS-Rec"],
            "throughput_samples_per_us": vals,
            "normalized": crate::by_max(&vals),
            "pifs_over_gpux4": vals[3] / vals[2],
            "performance_per_watt": ppw,
        })
    },
    parts: None,
    summarize: rows_array,
    free_params: false,
    in_all: true,
};

/// Fig 18: synthesized power/area of the process core blocks.
pub static FIG18: GridScenario = GridScenario {
    id: "fig18",
    title: "Hardware overheads (Fig 18)",
    params: Vec::new,
    points: None,
    run: |_| {
        let hw = HardwareOverheads::default();
        let block = |b: &tco::BlockCost| json!({ "name": b.name, "power_mw": b.power_mw, "area_um2": b.area_um2 });
        json!({
            "process_core": block(&hw.process_core),
            "control_logic_registers": block(&hw.control),
            "on_switch_buffer": block(&hw.buffer),
            "recnmp_base_x8": block(&hw.recnmp_x8),
            "pifs_total_power_mw": hw.pifs_total_power_mw(),
            "power_ratio_vs_recnmp": hw.power_ratio_vs_recnmp(),
            "area_ratio_vs_recnmp": hw.area_ratio_vs_recnmp(),
        })
    },
    parts: None,
    summarize: single,
    free_params: false,
    in_all: true,
};

/// §VI-D: per-bag energy vs the DIMM+CPU baseline.
pub static ENERGY: GridScenario = GridScenario {
    id: "energy",
    title: "Energy vs DIMM+CPU (§VI-D; paper: -15.3% average)",
    params: || vec![ParamSpec::models()],
    points: None,
    run: |p| {
        let m = raw_model(p);
        let model = EnergyModel::default();
        json!({
            "model": m.name,
            "baseline_nj_per_bag": model.baseline_bag_nj(&m),
            "pifs_nj_per_bag": model.pifs_bag_nj(&m),
            "saving_frac": model.saving_frac(&m),
        })
    },
    parts: None,
    summarize: |rows| {
        let avg: f64 = rows
            .iter()
            .map(|r| {
                r.data
                    .get("saving_frac")
                    .and_then(Value::as_f64)
                    .expect("saving_frac")
            })
            .sum::<f64>()
            / rows.len() as f64;
        json!({ "per_model": rows_array(rows), "average_saving": avg })
    },
    free_params: false,
    in_all: true,
};
