//! Characterization scenarios (§III): host-compute lookups over static
//! placements — Fig 5's table-size sweep and Fig 6's CXL bandwidth
//! contribution.

use dlrm::{ModelConfig, ThreadingMode};
use pagemgmt::InitialPlacement;
use pifs_core::system::{RunMetrics, SystemConfig};
use serde_json::{json, Value};

use crate::scenario::{point_seed, GridScenario, ParamSpec, ParamValue, Point, ResultRow};

/// Characterization base: host-compute lookups over a given placement.
fn characterization_cfg(
    emb_dim: u32,
    rows: u64,
    placement: InitialPlacement,
    threading: ThreadingMode,
) -> SystemConfig {
    let model = ModelConfig {
        name: format!("char-{emb_dim}d"),
        emb_num: rows,
        emb_dim,
        n_tables: 8,
        bag_size: 8,
        ..ModelConfig::rmc1()
    };
    let mut cfg = SystemConfig::pond(model);
    cfg.placement = placement;
    cfg.threading = threading;
    cfg.local_capacity_frac = 1.1; // capacity never binds in Fig 5
    cfg
}

/// Runs `cfg` over the short characterization trace (16-sample batches).
pub(crate) fn run_small(cfg: SystemConfig) -> RunMetrics {
    let trace = crate::std_trace(&cfg.model, crate::meta_distribution(), 16, 4);
    crate::run_with(cfg, &trace)
}

const FIG5_SIZES: [u64; 7] = [1024, 2048, 4096, 8192, 16384, 32768, 65536];

/// One half of a Fig 5 point: part 0 is the measured placement, part 1
/// the baseline it normalizes against.
fn fig5_part(p: &Point, part: usize) -> Value {
    let threading = match p.str("panel") {
        "batch" => ThreadingMode::Batch,
        "table" => ThreadingMode::Table,
        other => panic!("param \"panel\": unknown panel {other:?}"),
    };
    let (placement, norm_vs_cxl) = match p.str("case") {
        "remote" => (InitialPlacement::RemoteFraction { remote_frac: 0.2 }, false),
        "cxl" => (InitialPlacement::CxlFraction { cxl_frac: 0.2 }, false),
        "interleave" => (InitialPlacement::CxlFraction { cxl_frac: 0.2 }, true),
        other => panic!("param \"case\": unknown case {other:?}"),
    };
    let dim = p.u64("dim") as u32;
    let rows = p.u64("size");
    let placement = match part {
        0 => placement,
        1 if norm_vs_cxl => InitialPlacement::AllCxl,
        1 => InitialPlacement::AllLocal,
        other => panic!("fig5 has two parts, got {other}"),
    };
    let cfg = characterization_cfg(dim, rows, placement, threading);
    json!(run_small(cfg).app_bandwidth_gbps(4 * dim as u64))
}

/// Ratio of the measured bandwidth (part 0) over the baseline (part 1).
fn fig5_merge(_p: &Point, values: Vec<Value>) -> Value {
    let bw = values[0].as_f64().expect("fig5 part 0 is numeric");
    let base = values[1].as_f64().expect("fig5 part 1 is numeric");
    json!(if base > 0.0 { bw / base } else { 0.0 })
}

/// Fig 5: normalized app bandwidth vs table size across placements.
pub static FIG5: GridScenario = GridScenario {
    id: "fig5",
    title: "Normalized app bandwidth vs table size (Fig 5; a-d vs all-local, e-f vs all-CXL)",
    params: || {
        vec![
            ParamSpec::strs("panel", ["batch", "table"]),
            ParamSpec::strs("case", ["remote", "cxl", "interleave"]),
            ParamSpec::u64s("dim", [16, 32, 64, 128]),
            ParamSpec::u64s("size", FIG5_SIZES),
        ]
    },
    points: None,
    run: |p| fig5_merge(p, vec![fig5_part(p, 0), fig5_part(p, 1)]),
    // The measured run and the baseline it normalizes against are
    // independent simulations, so they split into two runner tasks:
    // with more workers than grid points, the two halves of each ratio
    // compute concurrently and merge deterministically.
    parts: Some(crate::scenario::PointParts {
        count: |_| 2,
        run: fig5_part,
        merge: fig5_merge,
    }),
    summarize: |rows| {
        let mut out = serde_json::Map::new();
        let mut it = rows.iter();
        for panel in ["batch", "table"] {
            for case in ["remote", "cxl", "interleave"] {
                let mut series = serde_json::Map::new();
                for dim in [16u32, 32, 64, 128] {
                    let vals: Vec<f64> = FIG5_SIZES
                        .iter()
                        .map(|_| {
                            it.next()
                                .and_then(|r| r.data.as_f64())
                                .expect("fig5 expects 168 numeric rows")
                        })
                        .collect();
                    series.insert(format!("dim{dim}"), json!(vals));
                }
                out.insert(format!("{case}_{panel}"), Value::Object(series));
            }
        }
        json!({ "sizes": FIG5_SIZES, "panels": out })
    },
    free_params: false,
    in_all: true,
};

/// Fig 6: DIMM vs CXL share of delivered bandwidth per thread/dim mix.
pub static FIG6: GridScenario = GridScenario {
    id: "fig6",
    title: "CXL bandwidth contribution (Fig 6)",
    params: || {
        vec![
            ParamSpec::u64s("cores", [4, 8]),
            ParamSpec::u64s("dim", [32, 64, 128]),
        ]
    },
    // The paper plots five hand-picked (threads, dim) mixes, not the
    // full product; sweeps over the declared axes explore the rest.
    points: Some(|| {
        [(4u64, 32u64), (4, 64), (4, 128), (8, 32), (8, 64)]
            .iter()
            .enumerate()
            .map(|(i, &(cores, dim))| {
                Point::new(
                    i,
                    point_seed(crate::SEED, i),
                    vec![
                        ("cores".into(), ParamValue::U64(cores)),
                        ("dim".into(), ParamValue::U64(dim)),
                    ],
                )
            })
            .collect()
    }),
    run: |p| {
        let cores = p.u64("cores") as u32;
        let dim = p.u64("dim") as u32;
        let model = ModelConfig {
            name: format!("{cores}c{dim}d"),
            emb_num: 8192,
            emb_dim: dim,
            ..ModelConfig::rmc2()
        };
        let mut cfg = SystemConfig::pond(model);
        cfg.placement = InitialPlacement::CxlFraction { cxl_frac: 0.2 };
        cfg.cores_per_host = cores;
        cfg.local_capacity_frac = 1.1;
        let m = run_small(cfg);
        let total_bytes = (m.lookups * 4 * dim as u64) as f64;
        let cxl_frac = m.cxl_lookups as f64 / m.lookups as f64;
        let bw = total_bytes / m.total_ns as f64;
        json!({
            "threads_and_dim": format!("{cores}&{dim}"),
            "dimm_gbps": bw * (1.0 - cxl_frac),
            "cxl_gbps": bw * cxl_frac,
        })
    },
    parts: None,
    summarize: |rows: &[ResultRow]| Value::Array(rows.iter().map(|r| r.data.clone()).collect()),
    free_params: false,
    in_all: true,
};
