//! The `cluster_faults` scenario: resilient serving under injected
//! faults.
//!
//! [`CLUSTER_FAULTS`] holds a 4-node RMC1 cluster at fixed placement
//! (`row_hash`, Poisson arrivals) and sweeps the seeded fault schedule
//! (fail-stop, slow-down, link degradation — [`simkit::faults`]) ×
//! SLA-aware shedding × hot-row replication × offered rate, reporting
//! the three resilience curves the fault-free `cluster_qps` family
//! cannot: **p99 of the answers that did complete, availability
//! (full-coverage fraction), and mean per-query coverage**. The
//! summary turns the curves into the capacity question operators
//! actually ask — how much *stable* QPS does each fault family cost
//! against the fault-free frontier, and what does re-buying that
//! headroom cost in [`tco`] dollars.
//!
//! Comparability conventions match `cluster_qps`: trace seeded from
//! the model, arrivals from `(model, arrival, qps)` — and the fault
//! schedule from `(model, fault)` only, so every (shed, replicas, qps)
//! cell of a fault row faces the *identical* event sequence (the
//! horizon-prefix property of [`FaultSchedule::generate`] keeps
//! schedules agreeing across qps-dependent horizons). The `fault=none`
//! column is byte-identical to an un-faulted build of the same
//! workload — the zero-overhead bar the golden suite pins.
//!
//! Points decompose into one sub-point part per node, exactly as
//! `cluster_qps`: parts re-derive the seeded stream, route it with the
//! liveness-aware router, and return completion vectors plus the
//! local qids their shedder refused; `merge` replays the degraded
//! router merge and the exact functional plane.

use pifs_core::engine::cluster::{
    merge_streamed, route_stream, ClusterConfig, ShardPlacement, ShardPolicy,
};
use pifs_core::system::{OpenLoopOpts, SlsSystem, SystemConfig};
use serde_json::{json, Value};
use simkit::{FaultSchedule, FaultSpec, SimTime};
use tracegen::{ArrivalProcess, QueryStreamSpec};

use super::stability;
use crate::scenario::{workload_seed, GridScenario, ParamSpec, Point, PointParts, ResultRow};
use crate::{scale_buffers, STD_BATCHES, STD_BATCH_SIZE};

/// Queries per serving run (matches the cluster family).
const SERVE_QUERIES: usize = (STD_BATCHES * STD_BATCH_SIZE) as usize;

/// Fleet size. Fixed: the resilience axes are the sweep, not scale-out
/// (that is `cluster_qps`).
const NODES: u16 = 4;

/// Batcher max-wait, µs (same floor as the latency/cluster families).
const MAX_WAIT_US: &str = "10";

/// Deadline the SLA-aware shedder refuses work against, µs. Tighter
/// than the frontier's p99 bar ([`P99_SLA_NS`]): a query is refused
/// only when even the least-loaded host cannot *start* it inside this
/// budget, which a 25 µs end-to-end p99 run never trips — 8 µs puts
/// the trigger right at the overload knee of the swept rates.
const SLA_US: &str = "8";

/// Router-side deadline for cross-shard partials, ns. 100 µs: far
/// above the healthy merge tail, so only fault-stretched partials
/// trip it.
const PARTIAL_TIMEOUT_NS: u64 = 100_000;

/// Saturation fraction (see `latency.rs`).
const SATURATION_FRAC: f64 = 0.90;

/// The p99 SLA of the stable-QPS frontier, ns (same bar as
/// `cluster_qps`).
const P99_SLA_NS: f64 = 25_000.0;

/// Availability floor of the frontier: a cell must answer at least
/// this fraction of offered queries at full coverage to count as
/// stable.
const AVAILABILITY_BAR: f64 = 0.5;

/// The fault axis: the fault-free bar, three fail-stop rates (events
/// per node-second — chosen so deaths land inside the ~100 µs serving
/// window), one slow-down family and one link-degradation family.
const FAULT_AXIS: [&str; 6] = [
    "none",
    "failstop:4000",
    "failstop:16000",
    "failstop:64000",
    "slow:16000:4",
    "link:16000:8",
];

/// Everything a point's parts and merge share, rebuilt
/// deterministically on both sides.
struct FaultSetup {
    cfg: ClusterConfig,
    spec: QueryStreamSpec,
    placement: ShardPlacement,
}

fn setup(p: &Point) -> FaultSetup {
    let m = p.model();
    let qps = p.f64("qps");
    let fault = FaultSpec::parse(p.str("fault")).unwrap_or_else(|e| panic!("param \"fault\": {e}"));
    let process =
        ArrivalProcess::parse("poisson", qps).unwrap_or_else(|e| panic!("param \"qps\": {e}"));

    let mut node = scale_buffers(SystemConfig::pifs_rec(m.clone()));
    node.apply_knob("serving.max_wait_us", MAX_WAIT_US)
        .expect("max_wait_us knob");
    node.apply_knob("serving.shed_policy", p.str("shed"))
        .unwrap_or_else(|e| panic!("param \"shed\": {e}"));
    node.apply_knob("serving.sla_us", SLA_US)
        .expect("sla_us knob");

    // Same queries for every point of a model; same timestamps for
    // every (fault, shed, replicas) cell at a given qps; same fault
    // events for every (shed, replicas, qps) cell of a fault row.
    let trace_seed = workload_seed(crate::SEED, &[p.get("model").expect("model param")]);
    let arrival_seed = workload_seed(
        crate::SEED,
        &[
            p.get("model").expect("model param"),
            p.get("qps").expect("qps param"),
        ],
    );
    let fault_seed = workload_seed(
        crate::SEED,
        &[
            p.get("model").expect("model param"),
            p.get("fault").expect("fault param"),
        ],
    );
    node.seed = trace_seed;
    let spec = QueryStreamSpec {
        trace: tracegen::TraceSpec {
            distribution: crate::meta_distribution(),
            n_tables: m.n_tables,
            rows_per_table: m.emb_num,
            batch_size: STD_BATCH_SIZE,
            n_batches: STD_BATCHES,
            bag_size: m.bag_size,
            seed: trace_seed,
        },
        arrival: process,
        arrival_seed,
    };

    // Cover the offered window with headroom; the horizon-prefix
    // property keeps the schedule consistent across qps cells.
    let horizon_ns = (SERVE_QUERIES as f64 / qps * 1.5e9).ceil() as u64;
    let mut cfg = ClusterConfig::new(NODES, ShardPolicy::RowHash, node);
    cfg.hot_rows_per_table = p.u64("replicas") as u32;
    cfg.faults = FaultSchedule::generate(fault, fault_seed, NODES, horizon_ns);
    cfg.partial_timeout_ns = Some(PARTIAL_TIMEOUT_NS);
    let placement = ShardPlacement::build_streamed(&cfg, &spec.stream());
    FaultSetup {
        cfg,
        spec,
        placement,
    }
}

/// Runs node `part` of the point's cluster: streams the shared
/// workload through the liveness-aware router, pushing only this
/// shard's routed sub-bags into a fresh (slowdown-scheduled, possibly
/// shedding) node session.
fn run_node_part(p: &Point, part: usize) -> Value {
    let s = setup(p);
    let mut node = SlsSystem::new(s.cfg.node.clone());
    node.set_slowdowns(s.cfg.faults.slow_intervals(part as u16));
    node.open_loop_begin(s.spec.trace.n_tables, OpenLoopOpts::default());
    let mut stream = s.spec.stream();
    route_stream(
        &s.placement,
        &s.cfg.faults,
        &mut stream,
        |shard, _tenant, at, sub| {
            if shard == part {
                node.open_loop_push(at, sub);
            }
        },
    );
    let met = node.open_loop_finish();
    json!({
        "completions_ns": met.completion.iter().map(|t| t.as_ns()).collect::<Vec<u64>>(),
        "shed_qids": met.shed_qids,
        "queries": met.queries,
        "shed": met.shed,
        "makespan_ns": met.makespan_ns,
    })
}

/// Merges the nodes' part values into the point row: replay the
/// degraded router merge (failover, sheds, timeouts, hedges) over the
/// completion vectors, then attach the exact functional checksum and
/// the resilience accounting.
fn merge_node_parts(p: &Point, parts: Vec<Value>) -> Value {
    let s = setup(p);
    let completions: Vec<Vec<SimTime>> = parts
        .iter()
        .map(|v| {
            v.get("completions_ns")
                .and_then(Value::as_array)
                .expect("part carries completions_ns")
                .iter()
                .map(|n| SimTime::from_ns(n.as_u64().expect("ns value")))
                .collect()
        })
        .collect();
    let refs: Vec<&[SimTime]> = completions.iter().map(Vec::as_slice).collect();
    let makespans: Vec<u64> = parts
        .iter()
        .map(|v| {
            v.get("makespan_ns")
                .and_then(Value::as_u64)
                .expect("part carries makespan_ns")
        })
        .collect();
    let mut stream = s.spec.stream();
    let replay = stream.clone();
    let routed = route_stream(&s.placement, &s.cfg.faults, &mut stream, |_, _, _, _| {});
    // Nodes shed by local qid; the merge keys on global qids.
    let sheds: Vec<Vec<u64>> = parts
        .iter()
        .enumerate()
        .map(|(n, v)| {
            v.get("shed_qids")
                .and_then(Value::as_array)
                .expect("part carries shed_qids")
                .iter()
                .map(|lq| routed.qids[n][lq.as_u64().expect("local qid") as usize])
                .collect()
        })
        .collect();
    let shed_refs: Vec<&[u64]> = sheds.iter().map(Vec::as_slice).collect();
    let met = merge_streamed(
        &s.cfg,
        &s.placement,
        &replay,
        &routed,
        &refs,
        &shed_refs,
        &makespans,
    );

    let qps = p.f64("qps");
    let last_arrival_ns = routed.arrivals.last().map_or(0, |t| t.as_ns());
    let saturated = (last_arrival_ns as f64) < SATURATION_FRAC * met.makespan_ns as f64;
    json!({
        "offered_qps": qps,
        "achieved_qps": met.achieved_qps(),
        "saturated": saturated,
        "p50_ns": met.latency.percentile(0.50),
        "p99_ns": met.latency.percentile(0.99),
        "mean_ns": met.latency.mean_ns(),
        "queries": met.queries,
        "fully_served": met.fully_served,
        "degraded": met.degraded,
        "shed": met.shed,
        "lost": met.lost,
        "timeouts": met.timeouts,
        "hedges": met.hedges,
        "failovers": met.failovers,
        "availability": met.availability(),
        "mean_coverage": met.mean_coverage,
        "total_lookups": met.total_lookups,
        "served_lookups": met.served_lookups,
        "makespan_ns": met.makespan_ns,
        "mean_fanout": met.mean_fanout,
        "agg_bytes": met.agg_bytes,
        "checksum": met.checksum,
        "fault_events": s.cfg.faults.events().len(),
    })
}

/// Composes parts + merge so the plain `run` contract holds by
/// construction.
fn run_faults_point(p: &Point) -> Value {
    let n = NODES as usize;
    merge_node_parts(p, (0..n).map(|i| run_node_part(p, i)).collect())
}

fn get_f64(row: &ResultRow, key: &str) -> f64 {
    row.data
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("row carries {key}"))
}

fn param(row: &ResultRow, name: &str) -> String {
    row.params
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.to_string())
        .unwrap_or_else(|| panic!("row carries param {name}"))
}

fn is_saturated(row: &ResultRow) -> bool {
    row.data.get("saturated").and_then(Value::as_bool) == Some(true)
}

/// A resilience curve's key: (fault, shed, replicas).
type CurveKey = (String, String, u64);

/// Groups rows by (fault, shed, replicas), preserving grid order
/// (`qps` is the innermost axis, so each group is a contiguous
/// ascending-qps chunk).
fn curves(rows: &[ResultRow]) -> Vec<(CurveKey, Vec<&ResultRow>)> {
    let mut out: Vec<(CurveKey, Vec<&ResultRow>)> = Vec::new();
    for row in rows {
        let key = (
            param(row, "fault"),
            param(row, "shed"),
            param(row, "replicas")
                .parse::<u64>()
                .expect("replicas param"),
        );
        match out.last_mut() {
            Some((k, group)) if *k == key => group.push(row),
            _ => out.push((key, vec![row])),
        }
    }
    out
}

/// The operator headline: per fault family, the highest offered rate
/// any (shed, replicas) cell sustains — unsaturated, p99 under the
/// SLA, availability above the bar — and what re-buying the headroom
/// the fault ate costs at [`tco::SystemBom::pifs_rec`] node pricing.
fn stable_frontier(rows: &[ResultRow]) -> Value {
    let node_tco = tco::SystemBom::pifs_rec(410, 1638).tco().total_usd();
    // The fault frontier folds the *offered* rate, and its stability
    // predicate layers the SLA and availability bars on top of plain
    // saturation — expressed as stability points so the max-stable
    // reduction (and its honest null when no cell is stable) is the
    // shared one.
    let stable_qps = |fault: &str| -> Option<f64> {
        let points: Vec<stability::StabilityPoint> = rows
            .iter()
            .filter(|r| param(r, "fault") == fault)
            .map(|r| {
                let offered = get_f64(r, "offered_qps");
                stability::StabilityPoint {
                    stable_qps: offered,
                    offered_qps: offered,
                    p99_ns: get_f64(r, "p99_ns"),
                    saturated: is_saturated(r)
                        || get_f64(r, "p99_ns") > P99_SLA_NS
                        || get_f64(r, "availability") < AVAILABILITY_BAR,
                }
            })
            .collect();
        stability::max_stable_qps(&points)
    };
    let baseline = stable_qps("none");
    let mut per_fault: Vec<Value> = Vec::new();
    for fault in FAULT_AXIS {
        let stable = stable_qps(fault);
        // Fleet factor to restore the fault-free frontier: extra
        // nodes bought pro rata to the stable-QPS shortfall. Null when
        // no cell of the fault row (or of the baseline) is stable.
        let (overprovision, extra_tco) = match (baseline, stable) {
            (Some(base), Some(stable)) if stable > 0.0 => {
                let f = base / stable;
                (json!(f), json!(node_tco * NODES as f64 * (f - 1.0)))
            }
            _ => (Value::Null, Value::Null),
        };
        per_fault.push(json!({
            "fault": fault,
            "max_stable_qps": stable,
            "overprovision_factor": overprovision,
            "extra_fleet_tco_usd": extra_tco,
        }));
    }
    json!(per_fault)
}

/// `cluster_faults`: resilience curves (p99 / availability / coverage
/// vs offered QPS) per fault family × shed policy × replication, with
/// the fault-tax stable-QPS frontier.
pub static CLUSTER_FAULTS: GridScenario = GridScenario {
    id: "cluster_faults",
    title: "Cluster serving under injected faults (availability, coverage, fault-tax frontier)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC1"]),
            ParamSpec::strs("fault", FAULT_AXIS),
            ParamSpec::strs("shed", ["none", "deadline"]),
            ParamSpec::u64s("replicas", [0, 64]),
            ParamSpec::u64s("qps", [4_000_000, 16_000_000, 128_000_000]),
        ]
    },
    points: None,
    run: run_faults_point,
    parts: Some(PointParts {
        count: |_| NODES as usize,
        run: run_node_part,
        merge: merge_node_parts,
    }),
    summarize: |rows| {
        let mut curve_objs = serde_json::Map::new();
        for ((fault, shed, replicas), group) in curves(rows) {
            curve_objs.insert(
                format!("{fault}/{shed}/r{replicas}"),
                json!({
                    "offered_qps": group.iter().map(|r| get_f64(r, "offered_qps")).collect::<Vec<f64>>(),
                    "p99_ns": group.iter().map(|r| get_f64(r, "p99_ns")).collect::<Vec<f64>>(),
                    "availability": group.iter().map(|r| get_f64(r, "availability")).collect::<Vec<f64>>(),
                    "mean_coverage": group.iter().map(|r| get_f64(r, "mean_coverage")).collect::<Vec<f64>>(),
                    "shed": group.iter().map(|r| get_f64(r, "shed")).collect::<Vec<f64>>(),
                    "failovers": group.iter().map(|r| get_f64(r, "failovers")).collect::<Vec<f64>>(),
                }),
            );
        }
        json!({
            "queries_per_point": SERVE_QUERIES,
            "nodes": NODES,
            "p99_sla_ns": P99_SLA_NS,
            "availability_bar": AVAILABILITY_BAR,
            "partial_timeout_ns": PARTIAL_TIMEOUT_NS,
            "curves": Value::Object(curve_objs),
            "stable_qps_frontier": stable_frontier(rows),
        })
    },
    free_params: false,
    in_all: false,
};
