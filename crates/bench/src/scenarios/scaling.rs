//! Scale-out scenarios: fabric-switch scaling (Fig 13c), multi-host
//! end-to-end speedup (Fig 14), and the on-switch buffer sweep (Fig 15).

use dlrm::CostModel;
use pifs_core::system::{BufferConfig, SystemConfig};
use serde_json::{json, Value};

use crate::scenario::{point_seed, GridScenario, ParamSpec, ParamValue, Point, ResultRow};
use crate::scenarios::schemes::lat_ns;
use crate::{meta_distribution, run_std, run_with, std_trace, with_warmup};

/// Fig 13c: latency vs fabric-switch count per batch size.
pub static FIG13C: GridScenario = GridScenario {
    id: "fig13c",
    title: "Fabric-switch scaling (Fig 13c; paper: 1.8-20.8x from 2x to 32x in the largest batch)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC4"]),
            ParamSpec::u64s("batch", [8, 64, 256]),
            ParamSpec::u64s("switches", [1, 2, 4, 8, 16, 32]),
        ]
    },
    points: None,
    run: |p| {
        let m = p.model();
        let switches = p.u64("switches") as u16;
        let batch = p.u64("batch") as u32;
        let mut cfg = SystemConfig::pifs_rec(m.clone());
        cfg.n_switches = switches;
        cfg.n_devices = switches.max(8);
        cfg.n_hosts = switches;
        let trace = std_trace(&m, meta_distribution(), batch, 6);
        json!({ "total_ns": run_with(cfg, &trace).total_ns })
    },
    parts: None,
    summarize: |rows| {
        let mut out = Vec::new();
        let switch_counts = [1u16, 2, 4, 8, 16, 32];
        for chunk in rows.chunks(switch_counts.len()) {
            let batch = chunk[0].params[1].1.to_json();
            let lat: Vec<f64> = chunk.iter().map(lat_ns).collect();
            out.push(json!({
                "batch": batch,
                "switches": switch_counts,
                "latency_ns": lat,
                "normalized": crate::by_max(&lat),
                "improvement_1_to_32": lat[0] / lat[5],
            }));
        }
        Value::Array(out)
    },
    free_params: false,
    in_all: true,
};

/// Fig 14: multi-host end-to-end speedup (`hosts = 0` is the Pond
/// baseline every speedup normalizes against).
pub static FIG14: GridScenario = GridScenario {
    id: "fig14",
    title: "Multi-host end-to-end speedup (Fig 14; paper: 1.9-4.7x from 2 to 8 hosts)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC1", "RMC2"]),
            ParamSpec::u64s("batch", [8, 64, 256]),
            ParamSpec::u64s("hosts", [0, 1, 2, 4, 8]),
        ]
    },
    points: None,
    run: |p| {
        let m = p.model();
        let batch = p.u64("batch") as u32;
        let hosts = p.u64("hosts") as u16;
        if hosts == 0 {
            // Pond baseline: one host, one request stream.
            let trace = std_trace(&m, meta_distribution(), batch, 6);
            let met = run_with(with_warmup(SystemConfig::pond(m)), &trace);
            json!({ "lookups": met.lookups, "total_ns": met.total_ns })
        } else {
            // Each host carries its own request stream: work scales with
            // host count, and the figure reports throughput speedup.
            let trace = std_trace(&m, meta_distribution(), batch, 6 * hosts as u32);
            let mut cfg = with_warmup(SystemConfig::pifs_rec(m));
            cfg.n_hosts = hosts;
            let met = run_with(cfg, &trace);
            json!({
                "lookups": met.lookups,
                "total_ns": met.total_ns,
                "batches": trace.batches.len() as u64,
            })
        }
    },
    parts: None,
    summarize: |rows| {
        let mut out = Vec::new();
        let cpu = CostModel::epyc_9654();
        for chunk in rows.chunks(5) {
            let name = chunk[0].params[0].1.to_string();
            let m = crate::scaled(dlrm::ModelConfig::by_name(&name).expect("fig14 model resolves"));
            let batch = chunk[0].params[1].1.to_json().as_u64().expect("batch") as u32;
            // Per-batch dense cost; the SLS time share grows with batch
            // size because the dense stages amortize across samples.
            let dense_batch_ns = cpu
                .latency(m.dense_flops_per_sample() * batch as u64, 0)
                .as_ns() as f64;
            let metric = |r: &ResultRow, key: &str| -> u64 {
                r.data
                    .get(key)
                    .and_then(Value::as_u64)
                    .expect("fig14 metric")
            };
            let base_thru =
                metric(&chunk[0], "lookups") as f64 / metric(&chunk[0], "total_ns") as f64;
            let mut speedups = Vec::new();
            for r in &chunk[1..] {
                let total_ns = metric(r, "total_ns");
                let thru = metric(r, "lookups") as f64 / total_ns as f64;
                let sls_speedup = thru / base_thru;
                // End-to-end: weight the SLS speedup by its per-batch
                // time share on the baseline system (Fig 14 "weighting
                // the speedup of both SLS and non-SLS operators").
                let batches_measured = (metric(r, "batches") as u32).saturating_sub(4).max(1);
                let sls_batch_ns = total_ns as f64 / batches_measured as f64 * sls_speedup;
                let f = sls_batch_ns / (sls_batch_ns + dense_batch_ns);
                let e2e = 1.0 / ((1.0 - f) + f / sls_speedup);
                speedups.push(e2e);
            }
            out.push(json!({
                "model": m.name, "batch": batch,
                "hosts": [1, 2, 4, 8],
                "e2e_speedup": speedups,
            }));
        }
        Value::Array(out)
    },
    free_params: false,
    in_all: true,
};

/// Fig 15: on-switch buffer capacity and replacement-policy sweep (the
/// `capacity_kb = 0, policy = none` anchor is the buffer-less baseline).
pub static FIG15: GridScenario = GridScenario {
    id: "fig15",
    title:
        "On-switch buffer capacity & policy (Fig 15; paper: HTR 7.6-14.8% on RMC4, 1MB degrades)",
    params: || {
        vec![
            ParamSpec::models(),
            ParamSpec::u64s("capacity_kb", [64, 128, 256, 512, 1024]),
            ParamSpec::strs("policy", ["HTR", "LRU", "FIFO"]),
        ]
    },
    // One buffer-less anchor point per model ahead of the 5×3 grid; a
    // plain cartesian product would re-run that baseline per policy.
    points: Some(|| {
        let mut points = Vec::new();
        let mut push = |model: &str, cap: u64, policy: &str| {
            let index = points.len();
            points.push(Point::new(
                index,
                point_seed(crate::SEED, index),
                vec![
                    ("model".into(), ParamValue::Str(model.into())),
                    ("capacity_kb".into(), ParamValue::U64(cap)),
                    ("policy".into(), ParamValue::Str(policy.into())),
                ],
            ));
        };
        for model in ["RMC1", "RMC2", "RMC3", "RMC4"] {
            push(model, 0, "none");
            for cap in [64, 128, 256, 512, 1024] {
                for policy in ["HTR", "LRU", "FIFO"] {
                    push(model, cap, policy);
                }
            }
        }
        points
    }),
    run: |p| {
        use pifs_core::BufferPolicy;
        let m = p.model();
        let cap_kb = p.u64("capacity_kb");
        if cap_kb == 0 {
            let mut no_buffer = SystemConfig::pifs_rec(m);
            no_buffer.buffer = None;
            json!({ "total_ns": run_std(no_buffer).total_ns })
        } else {
            let policy = match p.str("policy") {
                "HTR" => BufferPolicy::Htr,
                "LRU" => BufferPolicy::Lru,
                "FIFO" => BufferPolicy::Fifo,
                other => panic!("param \"policy\": unknown buffer policy {other:?}"),
            };
            let mut cfg = SystemConfig::pifs_rec(m);
            cfg.buffer = Some(BufferConfig {
                policy,
                capacity_bytes: cap_kb * 1024,
            });
            let met = run_std(cfg);
            json!({ "total_ns": met.total_ns, "hit_ratio": met.buffer_hit_ratio() })
        }
    },
    parts: None,
    summarize: |rows| {
        let mut out = Vec::new();
        for chunk in rows.chunks(16) {
            let name = chunk[0].params[0].1.to_string();
            let base = lat_ns(&chunk[0]);
            let mut points = Vec::new();
            for r in &chunk[1..] {
                points.push(json!({
                    "capacity_kb": r.params[1].1.to_json(),
                    "policy": r.params[2].1.to_string(),
                    "speedup_pct": (base / lat_ns(r) - 1.0) * 100.0,
                    "hit_ratio": r.data.get("hit_ratio").expect("hit_ratio").clone(),
                }));
            }
            out.push(json!({ "model": name, "baseline_ns": base, "points": points }));
        }
        Value::Array(out)
    },
    free_params: false,
    in_all: true,
};
