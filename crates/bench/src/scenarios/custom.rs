//! The free-form `custom` scenario: a scheme × model × trace grid whose
//! remaining parameters are forwarded verbatim to
//! [`SystemConfig::apply_knob`](pifs_core::system::SystemConfig::apply_knob),
//! so `repro -- sweep custom --param n_devices=4,8,16 --param ooo=true`
//! explores configurations the paper never ran without any bench-side
//! code. Each point's trace is seeded from [`workload_seed`] over the
//! workload-defining parameters (`model`, `trace`): points that differ
//! only in scheme or topology knobs simulate the exact same trace, so
//! rows are directly comparable along those axes, and a grid's results
//! do not change when unrelated axes are added or reordered.

use pifs_core::system::SlsSystem;
use serde_json::{json, Value};
use tracegen::{Distribution, TraceSpec};

use crate::scenario::{workload_seed, GridScenario, ParamSpec, ResultRow};
use crate::{scale_buffers, STD_BATCHES, STD_BATCH_SIZE};

/// The sweep-only knob-exploration scenario (`in_all = false`).
pub static CUSTOM: GridScenario = GridScenario {
    id: "custom",
    title: "Free-form scheme/model/knob sweep (not a paper figure)",
    params: || {
        vec![
            ParamSpec::strs("scheme", ["PIFS-Rec"]),
            ParamSpec::strs("model", ["RMC1"]),
            ParamSpec::strs("trace", ["Meta"]),
        ]
    },
    points: None,
    run: |p| {
        let m = p.model();
        let spec = p.str("trace");
        let dist = Distribution::parse(spec)
            .unwrap_or_else(|| panic!("param \"trace\": unknown distribution {spec:?}"));
        let seed = workload_seed(
            crate::SEED,
            &[
                p.get("model").expect("model param"),
                p.get("trace").expect("trace param"),
            ],
        );
        let mut cfg = scale_buffers(p.scheme().config(m.clone()));
        cfg.seed = seed;
        for (name, value) in p.params() {
            if matches!(name.as_str(), "scheme" | "model" | "trace") {
                continue;
            }
            cfg.apply_knob(name, &value.to_string())
                .unwrap_or_else(|e| panic!("--param {name}: {e}"));
        }
        let trace = TraceSpec {
            distribution: dist,
            n_tables: m.n_tables,
            rows_per_table: m.emb_num,
            batch_size: STD_BATCH_SIZE,
            n_batches: STD_BATCHES,
            bag_size: m.bag_size,
            seed,
        }
        .generate();
        let met = SlsSystem::new(cfg).run_trace(&trace);
        json!({
            "seed": seed,
            "total_ns": met.total_ns,
            "mean_bag_ns": met.mean_bag_ns,
            "lookups": met.lookups,
            "local_lookups": met.local_lookups,
            "remote_lookups": met.remote_lookups,
            "cxl_lookups": met.cxl_lookups,
            "buffer_hit_ratio": met.buffer_hit_ratio(),
            "migrations": met.migrations,
            "migration_cost": met.migration_cost_frac(),
            "checksum": met.checksum,
        })
    },
    parts: None,
    summarize: |rows: &[ResultRow]| {
        Value::Array(
            rows.iter()
                .map(|r| json!({ "params": r.params_json(), "metrics": r.data.clone() }))
                .collect(),
        )
    },
    free_params: true,
    in_all: false,
};
