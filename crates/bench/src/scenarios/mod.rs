//! The registered experiments: every table and figure of the paper's
//! evaluation, declared as [`GridScenario`] data, plus the free-form
//! `custom` sweep scenario.
//!
//! Each submodule groups the scenarios of one evaluation section and
//! owns the helper configuration builders those experiments share. The
//! porting contract: a scenario's `run` computes exactly what one inner
//! iteration of the original hand-written experiment loop computed, and
//! its `summarize` performs all cross-point arithmetic (normalization,
//! ratios, baseline divisions) on the ordered row sequence — so the
//! figure JSON is bit-identical to the historical serial harness for
//! any runner thread count.

use crate::scenario::{GridScenario, Scenario};

pub mod adaptive;
pub mod analytic;
pub mod characterization;
pub mod cluster;
pub mod custom;
pub mod diurnal;
pub mod faults;
pub mod latency;
pub mod pm;
pub mod scaling;
pub mod schemes;
pub mod stability;

/// Every scenario, in the paper's presentation order; the sweep-only
/// entries (the open-loop `latency` family and `custom`) come last.
pub fn all() -> Vec<&'static dyn Scenario> {
    ALL.iter().map(|s| *s as &dyn Scenario).collect()
}

static ALL: [&GridScenario; 26] = [
    &analytic::TABLE1,
    &analytic::TABLE2,
    &characterization::FIG5,
    &characterization::FIG6,
    &schemes::FIG12A,
    &schemes::FIG12B,
    &schemes::FIG12C,
    &schemes::FIG12D,
    &schemes::FIG12E,
    &pm::FIG13A,
    &pm::FIG13B,
    &scaling::FIG13C,
    &pm::FIG13D,
    &scaling::FIG14,
    &scaling::FIG15,
    &analytic::FIG16,
    &analytic::FIG17,
    &analytic::FIG18,
    &analytic::ENERGY,
    &latency::LATENCY_QPS,
    &latency::LATENCY_WAIT,
    &diurnal::LATENCY_DIURNAL,
    &adaptive::LATENCY_ADAPTIVE,
    &cluster::CLUSTER_QPS,
    &faults::CLUSTER_FAULTS,
    &custom::CUSTOM,
];
