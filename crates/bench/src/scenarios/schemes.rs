//! The Fig 12 scheme grids: every baseline scheme crossed with models,
//! trace families, device counts, DRAM capacities, and the ablation
//! ladder.

use baselines::Scheme;
use dlrm::ModelConfig;
use pagemgmt::InitialPlacement;
use pifs_core::system::{ComputeSite, PmConfig, SystemConfig};
use serde_json::{json, Value};
use tracegen::Distribution;

use crate::scenario::{GridScenario, ParamSpec, ResultRow};
use crate::{run_std, run_with, scale_buffers, std_trace, STD_BATCHES, STD_BATCH_SIZE};

/// Extracts `total_ns` from a row as the f64 the legacy harness used.
pub(crate) fn lat_ns(row: &ResultRow) -> f64 {
    row.data
        .get("total_ns")
        .and_then(Value::as_u64)
        .expect("row carries total_ns") as f64
}

fn scheme_labels() -> Vec<String> {
    Scheme::all()
        .iter()
        .map(|s| s.label().to_string())
        .collect()
}

/// Fig 12a: scheme latency per model.
pub static FIG12A: GridScenario = GridScenario {
    id: "fig12a",
    title: "Scheme latency per model (Fig 12a; paper: Pond 3.89x, Pond+PM 3.57x, BEACON 2.03x, RecNMP ~1.09x over PIFS-Rec)",
    params: || vec![ParamSpec::models(), ParamSpec::schemes()],
    points: None,
    run: |p| {
        let m = p.model();
        let met = run_std(scale_buffers(p.scheme().config(m)));
        json!({ "total_ns": met.total_ns })
    },
    parts: None,
    summarize: |rows| {
        let mut per_model = serde_json::Map::new();
        let mut ratios = serde_json::Map::new();
        for chunk in rows.chunks(Scheme::all().len()) {
            let name = chunk[0].params[0].1.to_string();
            let lat: Vec<f64> = chunk.iter().map(lat_ns).collect();
            let labels = scheme_labels();
            let norm = crate::by_max(&lat);
            let pifs = lat[4];
            ratios.insert(
                name.clone(),
                json!({
                    "pond_over_pifs": lat[0] / pifs,
                    "pond_pm_over_pifs": lat[1] / pifs,
                    "beacon_over_pifs": lat[2] / pifs,
                    "recnmp_over_pifs": lat[3] / pifs,
                }),
            );
            per_model.insert(
                name,
                json!({ "schemes": labels, "latency_ns": lat, "normalized": norm }),
            );
        }
        json!({ "models": per_model, "speedups": ratios })
    },
    free_params: false,
    in_all: true,
};

/// Fig 12b: scheme latency across trace distribution families.
pub static FIG12B: GridScenario = GridScenario {
    id: "fig12b",
    title: "Trace generality (Fig 12b)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC3"]),
            ParamSpec::strs(
                "trace",
                Distribution::fig12b_suite()
                    .into_iter()
                    .map(|(label, _)| label),
            ),
            ParamSpec::schemes(),
        ]
    },
    points: None,
    run: |p| {
        let m = p.model();
        let spec = p.str("trace");
        let dist = Distribution::parse(spec)
            .unwrap_or_else(|| panic!("param \"trace\": unknown distribution {spec:?}"));
        let trace = std_trace(&m, dist, STD_BATCH_SIZE, STD_BATCHES);
        let met = run_with(scale_buffers(p.scheme().config(m)), &trace);
        json!({ "total_ns": met.total_ns })
    },
    parts: None,
    summarize: |rows| {
        let mut out = Vec::new();
        for chunk in rows.chunks(Scheme::all().len()) {
            let label = chunk[0].params[1].1.to_string();
            let lat: Vec<f64> = chunk.iter().map(lat_ns).collect();
            out.push(json!({
                "trace": label,
                "latency_ns": lat,
                "normalized": crate::by_max(&lat),
                "pifs_speedup_vs_pond": lat[0] / lat[4],
                "pifs_speedup_vs_beacon": lat[2] / lat[4],
            }));
        }
        Value::Array(out)
    },
    free_params: false,
    in_all: true,
};

/// Fig 12c: scheme latency as the CXL device pool grows.
pub static FIG12C: GridScenario = GridScenario {
    id: "fig12c",
    title: "Memory-device scaling (Fig 12c; paper: 12.5x over Pond at 16 devices)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC4"]),
            ParamSpec::u64s("devices", [2, 4, 8, 16]),
            ParamSpec::schemes(),
        ]
    },
    points: None,
    run: |p| {
        let m = p.model();
        let mut cfg = scale_buffers(p.scheme().config(m));
        cfg.n_devices = p.u64("devices") as u16;
        json!({ "total_ns": run_std(cfg).total_ns })
    },
    parts: None,
    summarize: |rows| {
        let mut out = Vec::new();
        for chunk in rows.chunks(Scheme::all().len()) {
            let devices = chunk[0].params[1]
                .1
                .to_json()
                .as_u64()
                .expect("devices is integral");
            let lat: Vec<f64> = chunk.iter().map(lat_ns).collect();
            out.push(json!({
                "devices": devices,
                "latency_ns": lat,
                "normalized": crate::by_max(&lat),
                "pifs_speedup_vs_pond": lat[0] / lat[4],
            }));
        }
        Value::Array(out)
    },
    free_params: false,
    in_all: true,
};

/// Fig 12d: scheme latency vs local-DRAM capacity.
pub static FIG12D: GridScenario = GridScenario {
    id: "fig12d",
    title: "DRAM capacity sensitivity (Fig 12d; paper: 256GB +4%, 512GB +6%)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC4"]),
            ParamSpec::strs("dram", ["128GB", "X2", "X4"]),
            ParamSpec::schemes(),
        ]
    },
    points: None,
    run: |p| {
        let m = p.model();
        let mut cfg = scale_buffers(p.scheme().config(m));
        cfg.local_capacity_frac = dram_frac(p.get("dram"));
        json!({ "total_ns": run_std(cfg).total_ns })
    },
    parts: None,
    summarize: |rows| {
        let mut out = Vec::new();
        for chunk in rows.chunks(Scheme::all().len()) {
            let label = chunk[0].params[1].1.to_string();
            let lat: Vec<f64> = chunk.iter().map(lat_ns).collect();
            out.push(json!({
                "dram": label,
                "latency_ns": lat,
                "normalized": crate::by_max(&lat),
            }));
        }
        Value::Array(out)
    },
    free_params: false,
    in_all: true,
};

/// Maps the Fig 12d capacity labels to working-set fractions; sweeps may
/// also pass a bare fraction.
fn dram_frac(value: Option<&crate::scenario::ParamValue>) -> f64 {
    use crate::scenario::ParamValue;
    match value {
        Some(ParamValue::Str(label)) => match label.as_str() {
            "128GB" => 0.2,
            "X2" => 0.4,
            "X4" => 0.8,
            other => other
                .parse()
                .unwrap_or_else(|_| panic!("param \"dram\": unknown capacity {other:?}")),
        },
        Some(ParamValue::F64(v)) => *v,
        Some(ParamValue::U64(v)) => *v as f64,
        None => panic!("param \"dram\" missing"),
    }
}

/// The Fig 12e ablation ladder, in cumulative-feature order.
pub(crate) fn ablation_ladder(m: &ModelConfig) -> Vec<(&'static str, SystemConfig)> {
    let pond = SystemConfig::pond(m.clone());
    let mut pc = SystemConfig::pond(m.clone());
    pc.compute = ComputeSite::Switch;
    let mut pc_ooo = pc.clone();
    pc_ooo.ooo = true;
    let mut pc_ooo_pm = pc_ooo.clone();
    pc_ooo_pm.placement = InitialPlacement::CxlFraction { cxl_frac: 0.8 };
    pc_ooo_pm.page_mgmt = Some(PmConfig::default());
    let mut full = pc_ooo_pm.clone();
    full.buffer = Some(Default::default());
    vec![
        ("Baseline", pond),
        ("PC", pc),
        ("PC/OoO", pc_ooo),
        ("PC/OoO/PM", pc_ooo_pm),
        ("PC/OoO/PM/OSB", full),
    ]
}

/// Fig 12e: the feature-ablation ladder per model.
pub static FIG12E: GridScenario = GridScenario {
    id: "fig12e",
    title: "Ablation ladder (Fig 12e; paper deltas: PC +26%, OoO +7.3%, PM +27%, OSB +15%)",
    params: || {
        vec![
            ParamSpec::models(),
            ParamSpec::strs(
                "stage",
                ["Baseline", "PC", "PC/OoO", "PC/OoO/PM", "PC/OoO/PM/OSB"],
            ),
        ]
    },
    points: None,
    run: |p| {
        let m = p.model();
        let stage = p.str("stage");
        let cfg = ablation_ladder(&m)
            .into_iter()
            .find(|(label, _)| *label == stage)
            .unwrap_or_else(|| panic!("param \"stage\": unknown ablation stage {stage:?}"))
            .1;
        json!({ "total_ns": run_std(cfg).total_ns })
    },
    parts: None,
    summarize: |rows| {
        let mut per_model = serde_json::Map::new();
        for chunk in rows.chunks(5) {
            let name = chunk[0].params[0].1.to_string();
            let stages: Vec<String> = chunk.iter().map(|r| r.params[1].1.to_string()).collect();
            let lat: Vec<f64> = chunk.iter().map(lat_ns).collect();
            per_model.insert(
                name,
                json!({
                    "stages": stages,
                    "latency_ns": lat,
                    "normalized": crate::by_max(&lat),
                }),
            );
        }
        Value::Object(per_model)
    },
    free_params: false,
    in_all: true,
};
