//! The open-loop `latency` scenario family: tail latency under load.
//!
//! Every other scenario is closed-loop — it reports how long a fixed
//! bag grid takes. This family instead timestamps queries from an
//! arrival process ([`tracegen::arrival`]) and serves them through the
//! [`run_open_loop`](pifs_core::system::SlsSystem::run_open_loop)
//! batcher, reporting streaming p50/p95/p99 latency:
//!
//! * [`LATENCY_QPS`] (`latency_qps`) — the latency-vs-QPS curve per
//!   scheme, with saturation-knee detection in the summary: p99 stays
//!   on the batching floor while the engine keeps up, then climbs as
//!   the offered rate crosses the scheme's service capacity;
//! * [`LATENCY_WAIT`] (`latency_wait`) — the batcher-knob tradeoff
//!   (batch size × max wait) for PIFS-Rec at a fixed offered rate.
//!
//! Comparability conventions: the trace (which queries are asked) is
//! seeded from the model only, and the arrival stream (when they are
//! asked) from `(model, arrival, qps)` — so points differing in scheme
//! or batcher knobs serve the *identical* workload, and the per-scheme
//! curves differ only in how the engine absorbs it.
//!
//! [`tracegen::arrival`]: ../../../tracegen/arrival/index.html

use pifs_core::system::SlsSystem;
use serde_json::{json, Value};
use tracegen::ArrivalProcess;

use super::stability;
use crate::scenario::{workload_seed, GridScenario, ParamSpec, ResultRow};
use crate::{scale_buffers, STD_BATCHES, STD_BATCH_SIZE};

/// Queries per serving run (the standard closed-loop sample count, so
/// runtimes match the fig12 grids).
const SERVE_QUERIES: usize = (STD_BATCHES * STD_BATCH_SIZE) as usize;

/// Default batcher max-wait for this family, µs. Far below the default
/// 50 µs so the low-load batching floor sits well under the queueing
/// delays the sweep exists to expose.
const DEFAULT_MAX_WAIT_US: &str = "10";

/// An achieved rate below this fraction of the *empirical* offered
/// rate (queries over the realized arrival span, not the nominal
/// process rate — Poisson spans vary several percent at these stream
/// lengths) marks saturation. Equivalently: the engine needed more
/// than `1/0.90` of the arrival span to drain everything. The 10 %
/// slack absorbs the constant drain tail (one max-wait plus one batch
/// service) that short streams would otherwise misreport as overload.
const SATURATION_FRAC: f64 = 0.90;

/// The offered-load axis, queries per second. Spans the batching floor
/// (0.25 M), every scheme's saturation knee (3–15 M), and deep
/// overload (32 M) on the scaled RMC1 workload.
fn qps_axis() -> ParamSpec {
    ParamSpec::u64s(
        "qps",
        [
            250_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000,
        ],
    )
}

/// Runs one open-loop point: build the scheme config, apply batcher
/// knobs, replay the seeded trace against the seeded arrival stream.
fn run_serving_point(p: &crate::scenario::Point) -> Value {
    let m = p.model();
    let qps = p.f64("qps");
    let arrival_spec = p.str("arrival");
    let process = ArrivalProcess::parse(arrival_spec, qps)
        .unwrap_or_else(|e| panic!("param \"arrival\": {e}"));

    let mut cfg = scale_buffers(p.scheme().config(m.clone()));
    cfg.apply_knob(
        "serving.max_wait_us",
        &p.get("max_wait_us")
            .map_or_else(|| DEFAULT_MAX_WAIT_US.to_string(), |v| v.to_string()),
    )
    .expect("max_wait_us knob");
    if let Some(v) = p.get("batch_size") {
        cfg.apply_knob("serving.batch_size", &v.to_string())
            .expect("batch_size knob");
    }

    // Same queries for every point of a model; same timestamps for
    // every scheme/knob at a given (arrival, qps).
    let trace_seed = workload_seed(crate::SEED, &[p.get("model").expect("model param")]);
    let arrival_seed = workload_seed(
        crate::SEED,
        &[
            p.get("model").expect("model param"),
            p.get("arrival").expect("arrival param"),
            p.get("qps").expect("qps param"),
        ],
    );
    cfg.seed = trace_seed;
    let trace = tracegen::TraceSpec {
        distribution: crate::meta_distribution(),
        n_tables: m.n_tables,
        rows_per_table: m.emb_num,
        batch_size: STD_BATCH_SIZE,
        n_batches: STD_BATCHES,
        bag_size: m.bag_size,
        seed: trace_seed,
    }
    .generate();
    let arrivals = process.times(SERVE_QUERIES, arrival_seed);

    let last_arrival_ns = arrivals.last().map_or(0, |t| t.as_ns());
    let met = SlsSystem::new(cfg).run_open_loop(&trace, &arrivals);
    let achieved = met.achieved_qps();
    // saturated ⇔ arrival span < SATURATION_FRAC × makespan.
    let saturated = (last_arrival_ns as f64) < SATURATION_FRAC * met.makespan_ns as f64;
    json!({
        "offered_qps": qps,
        "empirical_qps": if last_arrival_ns == 0 {
            0.0
        } else {
            met.queries as f64 * 1e9 / last_arrival_ns as f64
        },
        "achieved_qps": achieved,
        "saturated": saturated,
        "p50_ns": met.latency.percentile(0.50),
        "p95_ns": met.latency.percentile(0.95),
        "p99_ns": met.latency.percentile(0.99),
        "max_ns": met.latency.max_ns(),
        "mean_ns": met.latency.mean_ns(),
        "mean_wait_ns": met.wait.mean_ns(),
        "queries": met.queries,
        "batches": met.batches,
        "mean_batch_fill": met.mean_batch_fill,
        "makespan_ns": met.makespan_ns,
        "checksum": met.run.checksum,
    })
}

/// Groups rows by every parameter except `qps`, preserving grid order
/// (`qps` is the innermost axis, so each group is a contiguous chunk).
fn curves(rows: &[ResultRow]) -> Vec<(String, Vec<&ResultRow>)> {
    let mut out: Vec<(String, Vec<&ResultRow>)> = Vec::new();
    for row in rows {
        let key = row
            .params
            .iter()
            .filter(|(n, _)| n != "qps")
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        match out.last_mut() {
            Some((k, group)) if *k == key => group.push(row),
            _ => out.push((key, vec![row])),
        }
    }
    out
}

/// `data` field accessor for the latency rows.
fn get_f64(row: &ResultRow, key: &str) -> f64 {
    row.data
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("row carries {key}"))
}

/// Summarizes one group of rows (ascending qps) into a curve object
/// with knee detection: the knee is the first offered rate whose row is
/// flagged `saturated` (arrival span under [`SATURATION_FRAC`] of the
/// makespan — see that constant) or whose p99 exceeds twice the
/// lowest-load p99, whichever the sweep hits first. Degenerate groups
/// (single-point or fully saturated sweeps) report honest `null`s —
/// see [`stability`].
fn curve_json(group: &[&ResultRow]) -> Value {
    let qps: Vec<f64> = group.iter().map(|r| get_f64(r, "offered_qps")).collect();
    let achieved: Vec<f64> = group.iter().map(|r| get_f64(r, "achieved_qps")).collect();
    let p50: Vec<f64> = group.iter().map(|r| get_f64(r, "p50_ns")).collect();
    let p99: Vec<f64> = group.iter().map(|r| get_f64(r, "p99_ns")).collect();
    let (knee, max_stable) = stability::stability_json(&stability::serving_points(group));
    json!({
        "offered_qps": qps,
        "achieved_qps": achieved,
        "p50_ns": p50,
        "p99_ns": p99,
        "knee_qps": knee,
        "max_stable_qps": max_stable,
    })
}

/// `latency_qps`: the latency-vs-QPS curve per scheme.
pub static LATENCY_QPS: GridScenario = GridScenario {
    id: "latency_qps",
    title: "Open-loop tail latency vs offered QPS per scheme (serving mode; knee = saturation)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC1"]),
            ParamSpec::schemes(),
            ParamSpec::strs("arrival", ["poisson"]),
            qps_axis(),
        ]
    },
    points: None,
    run: run_serving_point,
    parts: None,
    summarize: |rows| {
        let mut schemes = serde_json::Map::new();
        for (key, group) in curves(rows) {
            let label = group[0]
                .params
                .iter()
                .find(|(n, _)| n == "scheme")
                .map_or(key, |(_, v)| v.to_string());
            schemes.insert(label, curve_json(&group));
        }
        json!({ "queries_per_point": SERVE_QUERIES, "schemes": Value::Object(schemes) })
    },
    free_params: false,
    in_all: false,
};

/// `latency_wait`: batch-size × max-wait batcher tradeoff at a fixed
/// offered rate (PIFS-Rec).
pub static LATENCY_WAIT: GridScenario = GridScenario {
    id: "latency_wait",
    title: "Batcher knob tradeoff: batch size x max wait at fixed load (PIFS-Rec, serving mode)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC1"]),
            ParamSpec::strs("scheme", ["PIFS-Rec"]),
            ParamSpec::strs("arrival", ["poisson"]),
            ParamSpec::u64s("qps", [4_000_000]),
            ParamSpec::u64s("batch_size", [8, 16, 32, 64]),
            ParamSpec::u64s("max_wait_us", [2, 10, 50]),
        ]
    },
    points: None,
    run: run_serving_point,
    parts: None,
    summarize: |rows| {
        let table: Vec<Value> = rows
            .iter()
            .map(|r| {
                json!({
                    "batch_size": r.params.iter().find(|(n, _)| n == "batch_size")
                        .map(|(_, v)| v.to_string()),
                    "max_wait_us": r.params.iter().find(|(n, _)| n == "max_wait_us")
                        .map(|(_, v)| v.to_string()),
                    "p50_ns": get_f64(r, "p50_ns"),
                    "p99_ns": get_f64(r, "p99_ns"),
                    "mean_wait_ns": get_f64(r, "mean_wait_ns"),
                    "mean_batch_fill": get_f64(r, "mean_batch_fill"),
                    "saturated": r.data.get("saturated"),
                })
            })
            .collect();
        let best = rows
            .iter()
            .filter(|r| r.data.get("saturated").and_then(Value::as_bool) == Some(false))
            .min_by(|a, b| {
                get_f64(a, "p99_ns")
                    .partial_cmp(&get_f64(b, "p99_ns"))
                    .expect("finite p99")
            })
            .map(ResultRow::params_json);
        json!({ "rows": table, "best_stable_p99": best })
    },
    free_params: false,
    in_all: false,
};
