//! The `cluster_qps` scenario: cluster-scale sharded serving.
//!
//! [`CLUSTER_QPS`] sweeps node count × placement policy × offered rate
//! through the [`SlsCluster`](pifs_core::engine::cluster::SlsCluster)
//! router (PIFS-Rec nodes), reporting the
//! per-cluster tail-latency curve and answering the capacity-planning
//! question the single-node `latency_qps` family cannot: **how many
//! PIFS nodes does a target QPS need to stay under a p99 SLA**, and
//! what does that fleet cost per million users ([`tco`] capex/opex
//! model).
//!
//! Comparability conventions match `latency_qps`: the trace is seeded
//! from the model only and the arrival stream from `(model, arrival,
//! qps)`, so points differing in nodes or policy serve the *identical*
//! workload. The merged functional checksum is computed on the exact
//! f64 plane ([`pifs_core::engine::cluster`]) and is therefore
//! bit-identical across every (nodes, policy) cell of a qps column —
//! the shard-invariance suite pins this.
//!
//! Each point decomposes into one sub-point part per node
//! ([`PointParts`]): the per-node open-loop sims are independent given
//! the routed workloads, so the sweep runner work-steals them across
//! cores, and `merge` replays the deterministic router merge from the
//! nodes' completion vectors.
//!
//! The workload is never materialized: each part re-derives the same
//! seeded [`QueryStreamSpec`] (a few dozen bytes) and streams it
//! through [`route_stream`], pushing only its own shard's sub-bags
//! into the node session — O(batch) memory per part instead of a full
//! per-point trace clone, with the differential suite
//! (`pifs-core/tests/streaming_equivalence.rs`) pinning byte-identity
//! to the materialized path.

use pifs_core::engine::cluster::{
    merge_streamed, route_stream, ClusterConfig, ShardPlacement, ShardPolicy,
};
use pifs_core::system::{OpenLoopOpts, SlsSystem, SystemConfig};
use serde_json::{json, Value};
use simkit::SimTime;
use tracegen::{ArrivalProcess, QueryStreamSpec};

use super::stability;
use crate::scenario::{workload_seed, GridScenario, ParamSpec, Point, PointParts, ResultRow};
use crate::{scale_buffers, STD_BATCHES, STD_BATCH_SIZE};

/// Queries per serving run (matches the `latency_qps` family).
const SERVE_QUERIES: usize = (STD_BATCHES * STD_BATCH_SIZE) as usize;

/// Batcher max-wait, µs (same floor as `latency_qps`).
const MAX_WAIT_US: &str = "10";

/// Saturation fraction (see `latency.rs`): achieved below this fraction
/// of the empirical offered rate marks the cluster as saturated.
const SATURATION_FRAC: f64 = 0.90;

/// The p99 SLA the capacity-planning summary answers against, ns. Set
/// at 2× the scaled-RMC1 single-node batching floor (p99 ≈ 11–12 µs at
/// light load with the 10 µs max-wait), so a cell meets the SLA only
/// while queueing delay stays comparable to the batching delay — the
/// pre-knee regime.
const P99_SLA_NS: f64 = 25_000.0;

/// Queries per second one active user generates (feed refreshes ×
/// candidates ranked); used only to convert fleet TCO into the
/// cost-per-million-users headline, so the absolute value shifts the
/// curve without reordering the policies.
const QUERIES_PER_SEC_PER_USER: f64 = 20.0;

/// The offered-load axis, cluster-wide queries per second. Spans the
/// single-node floor (2 M), the single-node knee (≈16 M on scaled
/// RMC1), and rates only multi-node fleets can absorb (32 M, 128 M).
fn qps_axis() -> ParamSpec {
    ParamSpec::u64s("qps", [2_000_000, 8_000_000, 32_000_000, 128_000_000])
}

/// Everything a point's parts and merge share, rebuilt deterministically
/// on both sides: the cluster config, the seeded stream spec (in place
/// of a materialized workload), and the row→shard placement.
struct ClusterSetup {
    cfg: ClusterConfig,
    spec: QueryStreamSpec,
    placement: ShardPlacement,
}

fn setup(p: &Point) -> ClusterSetup {
    let m = p.model();
    let qps = p.f64("qps");
    let arrival_spec = p.str("arrival");
    let process = ArrivalProcess::parse(arrival_spec, qps)
        .unwrap_or_else(|e| panic!("param \"arrival\": {e}"));
    let policy =
        ShardPolicy::parse(p.str("policy")).unwrap_or_else(|e| panic!("param \"policy\": {e}"));
    let nodes = p.u64("nodes") as u16;

    let mut node = scale_buffers(SystemConfig::pifs_rec(m.clone()));
    node.apply_knob("serving.max_wait_us", MAX_WAIT_US)
        .expect("max_wait_us knob");

    // Same queries for every point of a model; same timestamps for
    // every (nodes, policy) cell at a given (arrival, qps).
    let trace_seed = workload_seed(crate::SEED, &[p.get("model").expect("model param")]);
    let arrival_seed = workload_seed(
        crate::SEED,
        &[
            p.get("model").expect("model param"),
            p.get("arrival").expect("arrival param"),
            p.get("qps").expect("qps param"),
        ],
    );
    node.seed = trace_seed;
    let spec = QueryStreamSpec {
        trace: tracegen::TraceSpec {
            distribution: crate::meta_distribution(),
            n_tables: m.n_tables,
            rows_per_table: m.emb_num,
            batch_size: STD_BATCH_SIZE,
            n_batches: STD_BATCHES,
            bag_size: m.bag_size,
            seed: trace_seed,
        },
        arrival: process,
        arrival_seed,
    };

    let cfg = ClusterConfig::new(nodes, policy, node);
    let placement = ShardPlacement::build_streamed(&cfg, &spec.stream());
    ClusterSetup {
        cfg,
        spec,
        placement,
    }
}

/// Runs node `part` of the point's cluster: streams the shared
/// workload through the router and pushes only this shard's routed
/// sub-bags into a fresh node session, returning the completion vector
/// the merge keys on (run-relative ns, local-qid order).
fn run_node_part(p: &Point, part: usize) -> Value {
    let s = setup(p);
    let mut node = SlsSystem::new(s.cfg.node.clone());
    node.open_loop_begin(s.spec.trace.n_tables, OpenLoopOpts::default());
    let mut stream = s.spec.stream();
    route_stream(
        &s.placement,
        &s.cfg.faults,
        &mut stream,
        |shard, _tenant, at, sub| {
            if shard == part {
                node.open_loop_push(at, sub);
            }
        },
    );
    let met = node.open_loop_finish();
    json!({
        "completions_ns": met.completion.iter().map(|t| t.as_ns()).collect::<Vec<u64>>(),
        "queries": met.queries,
        "lookups": met.run.lookups,
        "makespan_ns": met.makespan_ns,
        "service_ns": met.run.total_ns,
    })
}

/// Merges the nodes' part values into the point row: replay the
/// deterministic router merge over the completion vectors, then attach
/// the exact functional checksum and the per-node accounting.
fn merge_node_parts(p: &Point, parts: Vec<Value>) -> Value {
    let s = setup(p);
    let completions: Vec<Vec<SimTime>> = parts
        .iter()
        .map(|v| {
            v.get("completions_ns")
                .and_then(Value::as_array)
                .expect("part carries completions_ns")
                .iter()
                .map(|n| SimTime::from_ns(n.as_u64().expect("ns value")))
                .collect()
        })
        .collect();
    let refs: Vec<&[SimTime]> = completions.iter().map(Vec::as_slice).collect();
    let makespans: Vec<u64> = parts
        .iter()
        .map(|v| {
            v.get("makespan_ns")
                .and_then(Value::as_u64)
                .expect("part carries makespan_ns")
        })
        .collect();
    let mut stream = s.spec.stream();
    let replay = stream.clone();
    let routed = route_stream(&s.placement, &s.cfg.faults, &mut stream, |_, _, _, _| {});
    let sheds: Vec<&[u64]> = vec![&[]; refs.len()];
    let met = merge_streamed(
        &s.cfg,
        &s.placement,
        &replay,
        &routed,
        &refs,
        &sheds,
        &makespans,
    );

    let qps = p.f64("qps");
    let last_arrival_ns = routed.arrivals.last().map_or(0, |t| t.as_ns());
    let saturated = (last_arrival_ns as f64) < SATURATION_FRAC * met.makespan_ns as f64;
    let node_u64 = |key: &str| -> Vec<u64> {
        parts
            .iter()
            .map(|v| v.get(key).and_then(Value::as_u64).expect("part field"))
            .collect()
    };
    json!({
        "offered_qps": qps,
        "empirical_qps": if last_arrival_ns == 0 {
            0.0
        } else {
            met.queries as f64 * 1e9 / last_arrival_ns as f64
        },
        "achieved_qps": met.achieved_qps(),
        "saturated": saturated,
        "p50_ns": met.latency.percentile(0.50),
        "p95_ns": met.latency.percentile(0.95),
        "p99_ns": met.latency.percentile(0.99),
        "max_ns": met.latency.max_ns(),
        "mean_ns": met.latency.mean_ns(),
        "queries": met.queries,
        "makespan_ns": met.makespan_ns,
        "mean_fanout": met.mean_fanout,
        "agg_bytes": met.agg_bytes,
        "checksum": met.checksum,
        "node_queries": node_u64("queries"),
        "node_lookups": node_u64("lookups"),
        "node_service_ns": node_u64("service_ns"),
    })
}

/// Composes parts + merge so the plain `run` contract ("exactly what
/// the parts produce") holds by construction.
fn run_cluster_point(p: &Point) -> Value {
    let n = p.u64("nodes") as usize;
    merge_node_parts(p, (0..n).map(|i| run_node_part(p, i)).collect())
}

/// `data` field accessor.
fn get_f64(row: &ResultRow, key: &str) -> f64 {
    row.data
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("row carries {key}"))
}

fn param(row: &ResultRow, name: &str) -> String {
    row.params
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.to_string())
        .unwrap_or_else(|| panic!("row carries param {name}"))
}

fn is_saturated(row: &ResultRow) -> bool {
    row.data.get("saturated").and_then(Value::as_bool) == Some(true)
}

/// Groups rows by (policy, nodes), preserving grid order (`qps` is the
/// innermost axis, so each group is a contiguous ascending-qps chunk).
fn curves(rows: &[ResultRow]) -> Vec<((String, u64), Vec<&ResultRow>)> {
    let mut out: Vec<((String, u64), Vec<&ResultRow>)> = Vec::new();
    for row in rows {
        let key = (
            param(row, "policy"),
            param(row, "nodes").parse::<u64>().expect("nodes param"),
        );
        match out.last_mut() {
            Some((k, group)) if *k == key => group.push(row),
            _ => out.push((key, vec![row])),
        }
    }
    out
}

/// The capacity-planning answer: for each offered rate, per policy, the
/// smallest fleet whose run is unsaturated *and* meets the p99 SLA —
/// plus what that fleet costs ([`tco::SystemBom::pifs_rec`], the
/// paper's §VII worked configuration) per million active users.
fn nodes_needed(rows: &[ResultRow]) -> Value {
    let node_tco = tco::SystemBom::pifs_rec(410, 1638).tco().total_usd();
    let mut per_qps: Vec<Value> = Vec::new();
    let mut qps_values: Vec<u64> = Vec::new();
    for row in rows {
        let q = param(row, "qps").parse::<u64>().expect("qps param");
        if !qps_values.contains(&q) {
            qps_values.push(q);
        }
    }
    for &q in &qps_values {
        let mut policies = serde_json::Map::new();
        for policy in ["row_hash", "table_partition"] {
            let winner = rows
                .iter()
                .filter(|r| {
                    param(r, "policy") == policy
                        && param(r, "qps").parse::<u64>() == Ok(q)
                        && !is_saturated(r)
                        && get_f64(r, "p99_ns") <= P99_SLA_NS
                })
                .map(|r| param(r, "nodes").parse::<u64>().expect("nodes param"))
                .min();
            let users_m = q as f64 / QUERIES_PER_SEC_PER_USER / 1e6;
            policies.insert(
                policy.to_string(),
                match winner {
                    Some(n) => json!({
                        "nodes": n,
                        "fleet_tco_usd": node_tco * n as f64,
                        "usd_per_million_users": if users_m > 0.0 {
                            node_tco * n as f64 / users_m
                        } else {
                            0.0
                        },
                    }),
                    None => json!(null),
                },
            );
        }
        per_qps.push(json!({
            "offered_qps": q,
            "policies": Value::Object(policies),
        }));
    }
    json!(per_qps)
}

/// `cluster_qps`: sharded-cluster tail latency vs offered QPS, per
/// (placement policy, node count), with the nodes-for-QPS-at-SLA and
/// cost-per-million-users capacity summary.
pub static CLUSTER_QPS: GridScenario = GridScenario {
    id: "cluster_qps",
    title: "Sharded cluster tail latency vs offered QPS (nodes x placement policy; serving mode)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC1"]),
            ParamSpec::strs("policy", ["row_hash", "table_partition"]),
            ParamSpec::u64s("nodes", [1, 2, 4, 8]),
            ParamSpec::strs("arrival", ["poisson"]),
            qps_axis(),
        ]
    },
    points: None,
    run: run_cluster_point,
    parts: Some(PointParts {
        count: |p| p.u64("nodes") as usize,
        run: run_node_part,
        merge: merge_node_parts,
    }),
    summarize: |rows| {
        let mut curve_objs = serde_json::Map::new();
        for ((policy, nodes), group) in curves(rows) {
            let qps: Vec<f64> = group.iter().map(|r| get_f64(r, "offered_qps")).collect();
            let p99: Vec<f64> = group.iter().map(|r| get_f64(r, "p99_ns")).collect();
            let achieved: Vec<f64> = group.iter().map(|r| get_f64(r, "achieved_qps")).collect();
            let (knee, max_stable) = stability::stability_json(&stability::serving_points(&group));
            curve_objs.insert(
                format!("{policy}/n{nodes}"),
                json!({
                    "offered_qps": qps,
                    "achieved_qps": achieved,
                    "p99_ns": p99,
                    "knee_qps": knee,
                    "max_stable_qps": max_stable,
                    "mean_fanout": group.iter().map(|r| get_f64(r, "mean_fanout")).collect::<Vec<f64>>(),
                }),
            );
        }
        json!({
            "queries_per_point": SERVE_QUERIES,
            "p99_sla_ns": P99_SLA_NS,
            "queries_per_sec_per_user": QUERIES_PER_SEC_PER_USER,
            "curves": Value::Object(curve_objs),
            "nodes_for_qps_at_sla": nodes_needed(rows),
        })
    },
    free_params: false,
    in_all: false,
};
