//! The `latency_diurnal` scenario: a long diurnal serving time series,
//! streamed end to end with checkpoint warm-starts.
//!
//! Where the `latency` family asks "what does the tail look like at a
//! fixed offered rate", [`LATENCY_DIURNAL`] asks "what does a whole
//! traffic cycle look like": a sinusoidally modulated arrival process
//! ([`tracegen::arrival`]'s `Diurnal`) served for up to a minute of
//! simulated time, reported as arrival-windowed per-second summaries
//! ([`pifs_core::system::WindowSummary`]) — the per-window query count
//! traces the diurnal swing while the batcher floor pins the latency
//! series.
//!
//! Two properties of the streaming serving path make this scenario
//! possible at all, and it exists partly to exercise them end to end:
//!
//! * **Bounded memory** — the workload is never materialized. Each
//!   point streams a seeded [`QueryStreamSpec`] through
//!   [`run_open_loop_stream`](pifs_core::system::SlsSystem::run_open_loop_stream)-style
//!   push sessions with completion recording off, so a minute of
//!   traffic costs O(batch) heap, not O(trace)
//!   (`pifs-core/tests/alloc_bounded.rs` is the guard).
//! * **Checkpoint warm-starts** — the `duration_s` axis shares one
//!   workload prefix: every point pushes the first `qps × duration`
//!   queries of the *same* stream. A point therefore resumes from the
//!   deepest [`SimCheckpoint`] any shorter point left in the
//!   process-wide cache instead of replaying from zero. Because resume
//!   is state-identical to straight-through execution (pinned at every
//!   query boundary by `pifs-core/tests/streaming_equivalence.rs`),
//!   warm-starting is invisible in the output: rows are byte-identical
//!   whatever subset of points ran before, in whatever order, on
//!   however many runner threads — which is exactly what the golden
//!   snapshot and thread-independence tests assert.
//!
//! Comparability conventions match the family: trace seeded from the
//! model only, arrivals from `(model, arrival, qps)`.
//!
//! [`tracegen::arrival`]: ../../../tracegen/arrival/index.html

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use pifs_core::engine::checkpoint;
use pifs_core::system::{OpenLoopOpts, SlsSystem};
use pifs_core::SimCheckpoint;
use serde_json::{json, Value};
use tracegen::{ArrivalProcess, QueryStream, QueryStreamSpec};

use crate::scenario::{workload_seed, GridScenario, ParamSpec, Point, ResultRow};
use crate::{scale_buffers, STD_BATCH_SIZE};

/// Batcher max-wait, µs (the family floor — see `latency.rs`).
const MAX_WAIT_US: &str = "10";

/// Arrival-window width for the per-second latency series, ns.
const WINDOW_NS: u64 = 1_000_000_000;

/// The longest point of the duration axis, seconds of simulated
/// traffic. The shared stream is sized for this, so every shorter
/// point is a strict prefix of it (the warm-start invariant).
const MAX_DURATION_S: u64 = 60;

/// Process-wide warm-start cache: deepest checkpoint per workload
/// (every point parameter except `duration_s`). Purely an accelerator —
/// see the module docs for why hits and misses are indistinguishable in
/// the output.
fn cache() -> &'static Mutex<HashMap<String, SimCheckpoint>> {
    static CACHE: OnceLock<Mutex<HashMap<String, SimCheckpoint>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The workload identity a checkpoint is valid for: every parameter
/// that shapes the system or the stream — i.e. all of them but the
/// prefix length.
fn workload_key(p: &Point) -> String {
    p.params()
        .iter()
        .filter(|(n, _)| n != "duration_s")
        .map(|(n, v)| format!("{n}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Runs one diurnal point: resume the deepest cached prefix (or start
/// cold), stream queries up to `qps × duration_s`, leave a checkpoint
/// for longer points, and finish the session.
fn run_diurnal_point(p: &Point) -> Value {
    let m = p.model();
    let qps = p.f64("qps");
    let duration_s = p.u64("duration_s");
    assert!(
        duration_s <= MAX_DURATION_S,
        "duration axis exceeds the shared stream length"
    );
    let arrival_spec = p.str("arrival");
    let process = ArrivalProcess::parse(arrival_spec, qps)
        .unwrap_or_else(|e| panic!("param \"arrival\": {e}"));

    let mut cfg = scale_buffers(p.scheme().config(m.clone()));
    cfg.apply_knob("serving.max_wait_us", MAX_WAIT_US)
        .expect("max_wait_us knob");

    let trace_seed = workload_seed(crate::SEED, &[p.get("model").expect("model param")]);
    let arrival_seed = workload_seed(
        crate::SEED,
        &[
            p.get("model").expect("model param"),
            p.get("arrival").expect("arrival param"),
            p.get("qps").expect("qps param"),
        ],
    );
    cfg.seed = trace_seed;

    // One stream recipe per workload, sized for the longest duration;
    // this point serves the first `n_push` queries of it.
    let max_queries = (qps as u64) * MAX_DURATION_S;
    let n_push = (qps as u64) * duration_s;
    let spec = QueryStreamSpec {
        trace: tracegen::TraceSpec {
            distribution: crate::meta_distribution(),
            n_tables: m.n_tables,
            rows_per_table: m.emb_num,
            batch_size: STD_BATCH_SIZE,
            n_batches: max_queries.div_ceil(STD_BATCH_SIZE as u64) as u32,
            bag_size: m.bag_size,
            seed: trace_seed,
        },
        arrival: process,
        arrival_seed,
    };
    let opts = OpenLoopOpts {
        record_completion: false, // O(batch) memory over a minute of traffic
        window_ns: Some(WINDOW_NS),
    };

    let key = workload_key(p);
    let warm: Option<(SlsSystem, QueryStream)> = cache()
        .lock()
        .expect("warm-start cache")
        .get(&key)
        .filter(|c| c.position() <= n_push)
        .map(SimCheckpoint::resume);
    let (mut sys, mut stream) = warm.unwrap_or_else(|| {
        let mut sys = SlsSystem::new(cfg.clone());
        sys.open_loop_begin(spec.trace.n_tables, opts);
        (sys, spec.stream())
    });

    let remaining = n_push - stream.position();
    checkpoint::advance(&mut sys, &mut stream, remaining);

    // Leave the deepest prefix behind for longer points of this
    // workload (finish() below drains the batcher, so capture first).
    {
        let mut g = cache().lock().expect("warm-start cache");
        if g.get(&key).is_none_or(|c| c.position() < n_push) {
            g.insert(key, SimCheckpoint::capture(&sys, &stream));
        }
    }

    let met = sys.open_loop_finish();
    assert_eq!(met.queries, n_push);
    let windows = json!({
        "start_ns": met.windows.iter().map(|w| w.start_ns).collect::<Vec<u64>>(),
        "count": met.windows.iter().map(|w| w.count).collect::<Vec<u64>>(),
        "p50_ns": met.windows.iter().map(|w| w.p50_ns).collect::<Vec<u64>>(),
        "p99_ns": met.windows.iter().map(|w| w.p99_ns).collect::<Vec<u64>>(),
    });
    json!({
        "offered_qps": qps,
        "duration_s": duration_s,
        "queries": met.queries,
        "batches": met.batches,
        "makespan_ns": met.makespan_ns,
        "simulated_s": met.makespan_ns as f64 / 1e9,
        "p50_ns": met.latency.percentile(0.50),
        "p95_ns": met.latency.percentile(0.95),
        "p99_ns": met.latency.percentile(0.99),
        "max_ns": met.latency.max_ns(),
        "mean_ns": met.latency.mean_ns(),
        "mean_wait_ns": met.wait.mean_ns(),
        "mean_batch_fill": met.mean_batch_fill,
        "checksum": met.run.checksum,
        "windows": windows,
    })
}

fn get_u64s(row: &ResultRow, outer: &str, key: &str) -> Vec<u64> {
    row.data
        .get(outer)
        .and_then(|w| w.get(key))
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("row carries {outer}.{key}"))
        .iter()
        .map(|v| v.as_u64().expect("u64 series value"))
        .collect()
}

/// `latency_diurnal`: a minute of diurnally modulated traffic served as
/// a stream, reported as a per-second windowed time series, with the
/// duration axis warm-started from shared-prefix checkpoints.
pub static LATENCY_DIURNAL: GridScenario = GridScenario {
    id: "latency_diurnal",
    title: "Diurnal long-trace serving time series (streamed, checkpoint warm-started durations)",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC1"]),
            ParamSpec::strs("scheme", ["PIFS-Rec"]),
            ParamSpec::strs("arrival", ["diurnal:0.9:20"]),
            ParamSpec::u64s("qps", [500]),
            ParamSpec::u64s("duration_s", [15, 30, 60]),
        ]
    },
    points: None,
    run: run_diurnal_point,
    parts: None,
    summarize: |rows| {
        // The headline: the longest run's per-window count series
        // traces the diurnal swing. Peak/trough over interior windows
        // (the edge windows are phase-clipped).
        let longest = rows
            .iter()
            .max_by_key(|r| {
                r.data
                    .get("duration_s")
                    .and_then(Value::as_u64)
                    .expect("row carries duration_s")
            })
            .expect("at least one row");
        let counts = get_u64s(longest, "windows", "count");
        let interior = &counts[1..counts.len().saturating_sub(1).max(1)];
        let peak = interior.iter().copied().max().unwrap_or(0);
        let trough = interior.iter().copied().min().unwrap_or(0);
        let per_row: Vec<Value> = rows
            .iter()
            .map(|r| {
                let get = |k: &str| r.data.get(k).cloned().unwrap_or(Value::Null);
                json!({
                    "duration_s": get("duration_s"),
                    "queries": get("queries"),
                    "simulated_s": get("simulated_s"),
                    "n_windows": get_u64s(r, "windows", "count").len(),
                    "p99_ns": get("p99_ns"),
                    "checksum": get("checksum"),
                })
            })
            .collect();
        let swing = json!({
            "peak_window_count": peak,
            "trough_window_count": trough,
            "modulation_ratio": if trough > 0 { peak as f64 / trough as f64 } else { 0.0 },
        });
        json!({
            "window_ns": WINDOW_NS,
            "rows": per_row,
            "diurnal_swing": swing,
        })
    },
    free_params: false,
    in_all: false,
};
