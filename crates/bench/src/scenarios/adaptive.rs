//! The `latency_adaptive` scenario: fixed vs adaptive serving
//! controllers over the same bursty / flash-crowd / multi-tenant
//! traffic.
//!
//! The `latency` family measures the serving engine with its batcher
//! knobs pinned; this family races the
//! [`ControllerPolicy`](pifs_core::engine::controller::ControllerPolicy)
//! variants over identical workloads. Comparability is the whole
//! experiment, so the seeding convention is strict: the trace is seeded
//! from the model alone and the arrivals from `(model, traffic, qps)` —
//! never from the controller — so every point of a controller axis
//! serves the *same queries at the same instants*, and any latency
//! difference is the controller's doing.
//!
//! The `traffic` axis covers the three shapes the controllers were
//! built against:
//!
//! * `bursty` — the MMPP-2 arrival process (batcher stress);
//! * `flash:<mult>:<at_s>:<dur_s>` — a crowd spike layered on the
//!   diurnal base ([`ArrivalProcess::Flash`]);
//! * `mix` — a canned two-tenant [`TenantMixStream`]: a
//!   latency-critical Poisson "rank" tenant sharing the node with a
//!   bursty batch-class "backfill" tenant, metrics split per tenant.
//!
//! The summary reduces each (controller, traffic) curve with the shared
//! [`stability`] helpers and reports the headline comparison: each
//! controller's p99 at the *fixed* policy's knee, plus the per-policy
//! max-stable-QPS-under-SLA frontier.

use pifs_core::system::{OpenLoopOpts, SlsSystem};
use serde_json::{json, Map, Value};
use tracegen::{ArrivalProcess, QosClass, QueryStreamSpec, TenantMixStream, TenantSpec};

use super::stability;
use crate::scenario::{workload_seed, GridScenario, ParamSpec, Point, ResultRow};
use crate::{scale_buffers, STD_BATCHES, STD_BATCH_SIZE};

/// Batches per point: 4x the family standard. The load controller
/// ticks every `TICK_BATCHES` dispatches and needs several ticks of
/// sustained backlog before its resizing can show up in the tail, so
/// this family serves a longer stretch than `latency_qps` (and its
/// p99 rests on ~15 tail samples instead of ~4).
const ADAPT_BATCHES: u32 = 4 * STD_BATCHES;

/// Queries per point.
const SERVE_QUERIES: usize = (ADAPT_BATCHES * STD_BATCH_SIZE) as usize;

/// Batcher max-wait, µs (the family floor — see `latency.rs`).
const MAX_WAIT_US: &str = "10";

/// Saturation rule: offered arrivals span less than this fraction of
/// the makespan ⇒ the engine, not the arrival process, is pacing.
const SATURATION_FRAC: f64 = 0.90;

/// The p99 SLA of the under-SLA frontier, ns (the bench family's 25 µs
/// bar, matching the cluster scenarios and the controller default).
const P99_SLA_NS: f64 = 25_000.0;

/// The latency-critical tenant's share of the `mix` traffic (the
/// batch-class backfill tenant carries the rest).
const RANK_FRAC: f64 = 0.75;

/// One value of the `traffic` axis: a single-tenant arrival process or
/// the canned two-tenant mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Traffic {
    /// One tenant timestamped from the named arrival process.
    Single(ArrivalProcess),
    /// The two-tenant rank + backfill mix (see the module docs).
    Mix,
}

/// Parses a `traffic` axis value at a given rate: `mix`, or any
/// [`ArrivalProcess::parse`] spelling. Errors say why the spec was
/// rejected (the sweep-level validation path in `repro` calls this
/// before any simulation starts).
pub fn parse_traffic(spec: &str, qps: f64) -> Result<Traffic, String> {
    if spec.eq_ignore_ascii_case("mix") {
        if !(qps > 0.0 && qps.is_finite()) {
            return Err(format!(
                "arrival rate must be positive and finite, got {qps}"
            ));
        }
        return Ok(Traffic::Mix);
    }
    ArrivalProcess::parse(spec, qps).map(Traffic::Single)
}

/// The canned `mix` tenants at a total offered rate: a latency-critical
/// Poisson rank tenant at [`RANK_FRAC`] of the rate and a bursty
/// batch-class backfill tenant at the rest, both seeded from the
/// point's workload seeds so the mix is identical across controllers.
fn mix_tenants(
    m: &dlrm::ModelConfig,
    qps: f64,
    trace_seed: u64,
    arrival_seed: u64,
) -> Vec<TenantSpec> {
    let trace = |n_batches: u32, seed: u64| tracegen::TraceSpec {
        distribution: crate::meta_distribution(),
        n_tables: m.n_tables,
        rows_per_table: m.emb_num,
        batch_size: STD_BATCH_SIZE,
        n_batches,
        bag_size: m.bag_size,
        seed,
    };
    let rank_batches = (ADAPT_BATCHES as f64 * RANK_FRAC).round() as u32;
    vec![
        TenantSpec {
            name: "rank".to_string(),
            qos: QosClass::LatencyCritical,
            stream: QueryStreamSpec {
                trace: trace(rank_batches, trace_seed),
                arrival: ArrivalProcess::Poisson {
                    qps: qps * RANK_FRAC,
                },
                arrival_seed,
            },
        },
        TenantSpec {
            name: "backfill".to_string(),
            qos: QosClass::Batch,
            stream: QueryStreamSpec {
                trace: trace(ADAPT_BATCHES - rank_batches, trace_seed ^ 0x6261_636b),
                arrival: ArrivalProcess::Bursty {
                    qps: qps * (1.0 - RANK_FRAC),
                    burst: 0.8,
                    dwell_us: 200.0,
                },
                arrival_seed: arrival_seed ^ 0x5eed,
            },
        },
    ]
}

/// Runs one adaptive point: build the scheme config, install the
/// point's controller, serve the traffic-axis workload.
fn run_adaptive_point(p: &Point) -> Value {
    let m = p.model();
    let qps = p.f64("qps");
    let traffic_spec = p.str("traffic");
    let traffic =
        parse_traffic(traffic_spec, qps).unwrap_or_else(|e| panic!("param \"traffic\": {e}"));

    let mut cfg = scale_buffers(p.scheme().config(m.clone()));
    cfg.apply_knob("serving.max_wait_us", MAX_WAIT_US)
        .expect("max_wait_us knob");
    cfg.apply_knob("serving.controller", p.str("controller"))
        .unwrap_or_else(|e| panic!("param \"controller\": {e}"));

    // Same queries for every point of a model; same timestamps for
    // every controller at a given (traffic, qps) — the controller must
    // never leak into the workload seeds.
    let trace_seed = workload_seed(crate::SEED, &[p.get("model").expect("model param")]);
    let arrival_seed = workload_seed(
        crate::SEED,
        &[
            p.get("model").expect("model param"),
            p.get("traffic").expect("traffic param"),
            p.get("qps").expect("qps param"),
        ],
    );
    cfg.seed = trace_seed;

    let (met, last_arrival_ns, per_tenant) = match traffic {
        Traffic::Single(process) => {
            let trace = tracegen::TraceSpec {
                distribution: crate::meta_distribution(),
                n_tables: m.n_tables,
                rows_per_table: m.emb_num,
                batch_size: STD_BATCH_SIZE,
                n_batches: ADAPT_BATCHES,
                bag_size: m.bag_size,
                seed: trace_seed,
            }
            .generate();
            let arrivals = process.times(SERVE_QUERIES, arrival_seed);
            let last = arrivals.last().map_or(0, |t| t.as_ns());
            let met = SlsSystem::new(cfg).run_open_loop(&trace, &arrivals);
            (met, last, Vec::new())
        }
        Traffic::Mix => {
            let specs = mix_tenants(&m, qps, trace_seed, arrival_seed);
            // The mix's arrival envelope, replayed cheaply (timestamps
            // only) for the saturation rule.
            let last = specs
                .iter()
                .map(|t| {
                    t.stream
                        .arrival
                        .times(t.stream.n_queries() as usize, t.stream.arrival_seed)
                        .last()
                        .map_or(0, |x| x.as_ns())
                })
                .max()
                .unwrap_or(0);
            let mut mix = TenantMixStream::new(specs);
            let met = SlsSystem::new(cfg).run_open_loop_mix(
                &mut mix,
                OpenLoopOpts {
                    record_completion: false,
                    window_ns: None,
                },
            );
            let per_tenant: Vec<Value> = mix
                .specs()
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    let t = met.per_tenant.get(i);
                    json!({
                        "name": spec.name,
                        "qos": spec.qos.label(),
                        "queries": t.map_or(0, |t| t.queries),
                        "shed": t.map_or(0, |t| t.shed),
                        "p50_ns": t.map_or(0, |t| t.latency.percentile(0.50)),
                        "p99_ns": t.map_or(0, |t| t.latency.percentile(0.99)),
                        "mean_wait_ns": t.map_or(0.0, |t| t.wait.mean_ns()),
                    })
                })
                .collect();
            (met, last, per_tenant)
        }
    };

    let achieved = met.achieved_qps();
    // saturated ⇔ arrival span < SATURATION_FRAC × makespan.
    let saturated = (last_arrival_ns as f64) < SATURATION_FRAC * met.makespan_ns as f64;
    json!({
        "offered_qps": qps,
        "achieved_qps": achieved,
        "saturated": saturated,
        "p50_ns": met.latency.percentile(0.50),
        "p95_ns": met.latency.percentile(0.95),
        "p99_ns": met.latency.percentile(0.99),
        "max_ns": met.latency.max_ns(),
        "mean_ns": met.latency.mean_ns(),
        "mean_wait_ns": met.wait.mean_ns(),
        "queries": met.queries,
        "batches": met.batches,
        "mean_batch_fill": met.mean_batch_fill,
        "pm_epochs": met.pm_epochs,
        "makespan_ns": met.makespan_ns,
        "per_tenant": per_tenant,
        "checksum": met.run.checksum,
    })
}

/// One row's parameter value by axis name.
fn param(row: &ResultRow, name: &str) -> String {
    row.params
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.to_string())
        .unwrap_or_else(|| panic!("row carries param {name}"))
}

/// `data` field accessor for the adaptive rows.
fn get_f64(row: &ResultRow, key: &str) -> f64 {
    row.data
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("row carries {key}"))
}

/// Groups rows by (controller, traffic), preserving grid order (`qps`
/// is the innermost axis, so each group is a contiguous ascending-qps
/// chunk).
fn curves(rows: &[ResultRow]) -> Vec<((String, String), Vec<&ResultRow>)> {
    let mut out: Vec<((String, String), Vec<&ResultRow>)> = Vec::new();
    for row in rows {
        let key = (param(row, "controller"), param(row, "traffic"));
        match out.last_mut() {
            Some((k, group)) if *k == key => group.push(row),
            _ => out.push((key, vec![row])),
        }
    }
    out
}

/// The under-SLA stability view of a curve: a point is "stable" only if
/// it is unsaturated *and* holds the p99 SLA; the fold is over offered
/// rate (the frontier is an admission-control answer, not a throughput
/// measurement).
fn sla_frontier(group: &[&ResultRow]) -> Option<f64> {
    let points: Vec<stability::StabilityPoint> = group
        .iter()
        .map(|r| {
            let offered = get_f64(r, "offered_qps");
            let p99 = get_f64(r, "p99_ns");
            stability::StabilityPoint {
                stable_qps: offered,
                offered_qps: offered,
                p99_ns: p99,
                saturated: r.data.get("saturated").and_then(Value::as_bool) == Some(true)
                    || p99 > P99_SLA_NS,
            }
        })
        .collect();
    stability::max_stable_qps(&points)
}

/// `latency_adaptive`: the controller-policy comparison over bursty,
/// flash-crowd and multi-tenant traffic.
pub static LATENCY_ADAPTIVE: GridScenario = GridScenario {
    id: "latency_adaptive",
    title:
        "Adaptive serving controllers vs fixed knobs under bursty / flash / multi-tenant traffic",
    params: || {
        vec![
            ParamSpec::strs("model", ["RMC1"]),
            ParamSpec::strs("scheme", ["PIFS-Rec"]),
            ParamSpec::strs("controller", ["fixed", "load", "epoch", "adaptive"]),
            ParamSpec::strs("traffic", ["bursty", "flash:4:0.0001:0.0002", "mix"]),
            ParamSpec::u64s(
                "qps",
                [1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000],
            ),
        ]
    },
    points: None,
    run: run_adaptive_point,
    parts: None,
    summarize: |rows| {
        let groups = curves(rows);
        let mut curve_objs = Map::new();
        for ((controller, traffic), group) in &groups {
            let (knee, max_stable) = stability::stability_json(&stability::serving_points(group));
            curve_objs.insert(
                format!("{controller}/{traffic}"),
                json!({
                    "offered_qps": group.iter().map(|r| get_f64(r, "offered_qps")).collect::<Vec<f64>>(),
                    "achieved_qps": group.iter().map(|r| get_f64(r, "achieved_qps")).collect::<Vec<f64>>(),
                    "p99_ns": group.iter().map(|r| get_f64(r, "p99_ns")).collect::<Vec<f64>>(),
                    "knee_qps": knee,
                    "max_stable_qps": max_stable,
                    "sla_stable_qps": sla_frontier(group).map_or(Value::Null, Value::from),
                }),
            );
        }
        // The headline: every controller's p99 at the *fixed* policy's
        // knee, per traffic shape — same queries, same arrival
        // instants, so the delta is pure controller effect.
        let mut traffics: Vec<String> = Vec::new();
        for ((_, traffic), _) in &groups {
            if !traffics.contains(traffic) {
                traffics.push(traffic.clone());
            }
        }
        let at_knee: Vec<Value> = traffics
            .iter()
            .map(|traffic| {
                let fixed_knee = groups
                    .iter()
                    .find(|((c, t), _)| c == "fixed" && t == traffic)
                    .and_then(|(_, g)| stability::knee_qps(&stability::serving_points(g)));
                let p99_at = |controller: &str| -> Value {
                    fixed_knee
                        .and_then(|knee| {
                            groups
                                .iter()
                                .find(|((c, t), _)| c == controller && t == traffic)
                                .and_then(|(_, g)| {
                                    g.iter()
                                        .find(|r| get_f64(r, "offered_qps") == knee)
                                        .map(|r| get_f64(r, "p99_ns"))
                                })
                        })
                        .map_or(Value::Null, Value::from)
                };
                let by_controller = json!({
                    "fixed": p99_at("fixed"),
                    "load": p99_at("load"),
                    "epoch": p99_at("epoch"),
                    "adaptive": p99_at("adaptive"),
                });
                json!({
                    "traffic": traffic,
                    "fixed_knee_qps": fixed_knee.map_or(Value::Null, Value::from),
                    "p99_at_fixed_knee": by_controller,
                })
            })
            .collect();
        json!({
            "queries_per_point": SERVE_QUERIES,
            "p99_sla_ns": P99_SLA_NS,
            "curves": Value::Object(curve_objs),
            "p99_at_fixed_knee": at_knee,
        })
    },
    free_params: false,
    in_all: false,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_parse_covers_spellings_and_reports_why_it_rejects() {
        assert_eq!(parse_traffic("mix", 1000.0), Ok(Traffic::Mix));
        assert_eq!(parse_traffic("Mix", 1000.0), Ok(Traffic::Mix));
        assert_eq!(
            parse_traffic("bursty", 1000.0),
            Ok(Traffic::Single(ArrivalProcess::Bursty {
                qps: 1000.0,
                burst: 0.8,
                dwell_us: 200.0
            }))
        );
        assert!(parse_traffic("flash:4:0.0001:0.0002", 1000.0).is_ok());
        assert!(parse_traffic("mix", 0.0)
            .unwrap_err()
            .contains("positive and finite"));
        assert!(parse_traffic("sawtooth", 1000.0)
            .unwrap_err()
            .contains("unknown arrival process"));
    }

    #[test]
    fn mix_tenants_split_the_rate_and_the_batches() {
        let m = dlrm::ModelConfig::by_name("RMC1").expect("RMC1");
        let specs = mix_tenants(&m, 1_000_000.0, 7, 11);
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].qos, QosClass::LatencyCritical);
        assert_eq!(specs[1].qos, QosClass::Batch);
        let total: u64 = specs.iter().map(|t| t.stream.n_queries()).sum();
        assert_eq!(
            total, SERVE_QUERIES as u64,
            "mix serves the family run length"
        );
        let rates: f64 = specs.iter().map(|t| t.stream.arrival.qps()).sum();
        assert!(
            (rates - 1_000_000.0).abs() < 1e-6,
            "tenant rates sum to qps"
        );
    }

    #[test]
    fn mix_workload_is_identical_across_controllers() {
        // The controller axis must not leak into the workload: the
        // tenants are a pure function of (model, qps, seeds).
        let m = dlrm::ModelConfig::by_name("RMC1").expect("RMC1");
        assert_eq!(
            mix_tenants(&m, 2_000_000.0, 3, 5),
            mix_tenants(&m, 2_000_000.0, 3, 5)
        );
    }
}
