//! Shared saturation-knee / stable-throughput detection for the
//! open-loop sweep summaries.
//!
//! The `latency_qps`, `cluster_qps`, `cluster_faults` and
//! `latency_adaptive` summaries all reduce an ascending-qps curve to
//! the same two headline numbers, and each used to carry its own copy
//! of the arithmetic — with the same blind spots: a single-point sweep
//! (`--param qps=X`) "detected" a knee at its only point, and an
//! all-saturated sweep reported `max_stable_qps: 0.0` as if the system
//! had a measured zero-throughput operating point. This module is the
//! one shared implementation, with honest `None`s for the degenerate
//! sweeps (serialized as JSON `null` by the summaries):
//!
//! * [`knee_qps`] — the first offered rate where the curve leaves the
//!   stable regime. `None` when the sweep cannot establish one: fewer
//!   than two points (no curve), a first point already saturated (no
//!   baseline p99 to compare against), or no point ever saturating.
//! * [`max_stable_qps`] — the best rate among stable points. `None`
//!   when no point is stable at all.

use crate::scenario::ResultRow;
use serde_json::Value;

/// One point of an ascending-rate sweep, as the stability reducers see
/// it: the rate the point contributes if it is stable (achieved or
/// offered QPS — the caller's convention), its tail latency, and
/// whether the caller's stability predicate already rejected it.
#[derive(Debug, Clone, Copy)]
pub struct StabilityPoint {
    /// The rate this point contributes to [`max_stable_qps`].
    pub stable_qps: f64,
    /// The offered rate [`knee_qps`] reports if the knee lands here.
    pub offered_qps: f64,
    /// Tail latency, ns (the knee's 2× baseline comparison).
    pub p99_ns: f64,
    /// Whether the point failed the caller's stability predicate
    /// (saturation for the latency families; saturation + SLA +
    /// availability for the fault frontier).
    pub saturated: bool,
}

/// The first offered rate whose point is saturated or whose p99
/// exceeds twice the first point's p99 — the saturation knee of an
/// ascending-qps curve.
///
/// Honest `None`s instead of misleading knees: a sweep with fewer than
/// two points has no curve to knee; a sweep whose *first* point is
/// already saturated has no stable baseline (every point would
/// trivially "knee" at index 0); a sweep that never saturates has no
/// knee to report.
pub fn knee_qps(points: &[StabilityPoint]) -> Option<f64> {
    if points.len() < 2 || points[0].saturated {
        return None;
    }
    let base_p99 = points[0].p99_ns;
    points
        .iter()
        .position(|p| p.saturated || p.p99_ns > 2.0 * base_p99)
        .map(|i| points[i].offered_qps)
}

/// The best `stable_qps` among unsaturated points, or `None` when the
/// sweep has no stable point at all (everything saturated / over SLA)
/// — distinguishing "no stable operating point was found" from an
/// actual measured rate of zero.
pub fn max_stable_qps(points: &[StabilityPoint]) -> Option<f64> {
    points
        .iter()
        .filter(|p| !p.saturated)
        .map(|p| p.stable_qps)
        .fold(None, |acc: Option<f64>, q| {
            Some(acc.map_or(q, |a| a.max(q)))
        })
}

/// Both reducers as the JSON values the summaries embed (`null` for
/// the honest-`None` cases).
pub fn stability_json(points: &[StabilityPoint]) -> (Value, Value) {
    (
        knee_qps(points).map_or(Value::Null, Value::from),
        max_stable_qps(points).map_or(Value::Null, Value::from),
    )
}

/// Builds the stability view of one ascending-qps serving curve from
/// the standard open-loop row shape (`offered_qps` / `achieved_qps` /
/// `p99_ns` / `saturated` data fields) — the shared convention of the
/// `latency`, `cluster` and `adaptive` scenario families. `stable_qps`
/// is the *achieved* rate (what the system actually served while
/// stable), `offered_qps` the knee's reporting axis.
pub fn serving_points(group: &[&ResultRow]) -> Vec<StabilityPoint> {
    group
        .iter()
        .map(|r| {
            let f = |key: &str| {
                r.data
                    .get(key)
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| panic!("row carries {key}"))
            };
            StabilityPoint {
                stable_qps: f("achieved_qps"),
                offered_qps: f("offered_qps"),
                p99_ns: f("p99_ns"),
                saturated: r.data.get("saturated").and_then(Value::as_bool) == Some(true),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(offered: f64, achieved: f64, p99: f64, saturated: bool) -> StabilityPoint {
        StabilityPoint {
            stable_qps: achieved,
            offered_qps: offered,
            p99_ns: p99,
            saturated,
        }
    }

    #[test]
    fn normal_curve_knees_at_the_first_saturated_point() {
        let curve = [
            pt(1e6, 0.99e6, 5_000.0, false),
            pt(2e6, 1.98e6, 6_000.0, false),
            pt(4e6, 3.10e6, 40_000.0, true),
            pt(8e6, 3.20e6, 900_000.0, true),
        ];
        assert_eq!(knee_qps(&curve), Some(4e6));
        assert_eq!(max_stable_qps(&curve), Some(1.98e6));
    }

    #[test]
    fn p99_blowup_knees_before_saturation() {
        let curve = [
            pt(1e6, 0.99e6, 5_000.0, false),
            pt(2e6, 1.97e6, 11_000.0, false), // > 2 x 5_000: queueing bite
            pt(4e6, 3.10e6, 40_000.0, true),
        ];
        assert_eq!(knee_qps(&curve), Some(2e6));
    }

    #[test]
    fn single_point_sweeps_have_no_knee() {
        // A user --param grid with one qps value: no curve, no knee —
        // whether the point is stable or not.
        assert_eq!(knee_qps(&[pt(4e6, 3.1e6, 40_000.0, true)]), None);
        assert_eq!(knee_qps(&[pt(1e6, 0.99e6, 5_000.0, false)]), None);
        // max_stable is still meaningful for a single stable point.
        assert_eq!(
            max_stable_qps(&[pt(1e6, 0.99e6, 5_000.0, false)]),
            Some(0.99e6)
        );
    }

    #[test]
    fn all_saturated_sweeps_are_null_not_zero() {
        let curve = [
            pt(16e6, 3.1e6, 500_000.0, true),
            pt(32e6, 3.2e6, 900_000.0, true),
        ];
        // First point saturated: no baseline, no knee.
        assert_eq!(knee_qps(&curve), None);
        // No stable point: null, not a fake 0.0 "operating point".
        assert_eq!(max_stable_qps(&curve), None);
        let (knee, stable) = stability_json(&curve);
        assert_eq!(knee, Value::Null);
        assert_eq!(stable, Value::Null);
    }

    #[test]
    fn never_saturating_sweeps_have_no_knee_but_a_frontier() {
        let curve = [
            pt(1e6, 0.99e6, 5_000.0, false),
            pt(2e6, 1.98e6, 6_000.0, false),
        ];
        assert_eq!(knee_qps(&curve), None);
        assert_eq!(max_stable_qps(&curve), Some(1.98e6));
    }

    #[test]
    fn empty_sweep_is_all_null() {
        assert_eq!(knee_qps(&[]), None);
        assert_eq!(max_stable_qps(&[]), None);
    }
}
