//! `pifs-bench` — shared plumbing for the figure-reproduction harness.
//!
//! The `repro` binary regenerates every table and figure in the paper's
//! evaluation. Three layers live here:
//!
//! * this module — the *scaled standard workload* every experiment uses
//!   (Table I ratios preserved, absolute sizes shrunk 16× so a laptop
//!   regenerates the full suite in minutes) and the result-emission
//!   format recorded in `EXPERIMENTS.md`;
//! * [`scenario`] / [`scenarios`] — every experiment declared as data: a
//!   parameter grid, a per-point `run`, and a `summarize` fold (the
//!   registry is the single source of truth for the experiment-id list);
//! * [`runner`] — the multi-threaded sweep pool that executes grid
//!   points across cores with deterministic per-point seeding and
//!   ordered, thread-count-independent result collection.

#![warn(missing_docs)]

pub mod runner;
pub mod scenario;
pub mod scenarios;

use dlrm::ModelConfig;
use pifs_core::system::{RunMetrics, SlsSystem, SystemConfig};
use tracegen::{Distribution, Trace, TraceSpec};

/// Embedding-count scale-down applied to every Table I model.
pub const MODEL_SCALE: u64 = 16;

/// Batches per standard run.
pub const STD_BATCHES: u32 = 12;

/// Samples per batch in the standard run.
pub const STD_BATCH_SIZE: u32 = 32;

/// Workload seed (all runs are deterministic).
pub const SEED: u64 = 2024;

/// The standard scaled version of a Table I model.
pub fn scaled(model: ModelConfig) -> ModelConfig {
    model.scaled_down(MODEL_SCALE)
}

/// The Meta-like trace used wherever the paper uses the Meta traces.
pub fn meta_distribution() -> Distribution {
    Distribution::MetaLike {
        reuse_frac: 0.35,
        s: 1.05,
    }
}

/// Builds a trace for `model` with the standard dimensions.
pub fn std_trace(model: &ModelConfig, dist: Distribution, batch_size: u32, batches: u32) -> Trace {
    TraceSpec {
        distribution: dist,
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size,
        n_batches: batches,
        bag_size: model.bag_size,
        seed: SEED,
    }
    .generate()
}

/// Scales buffer capacities down with the model so cache-to-footprint
/// ratios match the unscaled system (a 512 KB SRAM against a 16x-scaled
/// table would otherwise cache a wildly larger working-set share than
/// the paper's hardware could).
pub fn scale_buffers(mut cfg: SystemConfig) -> SystemConfig {
    if let Some(b) = cfg.buffer.as_mut() {
        b.capacity_bytes = (b.capacity_bytes / MODEL_SCALE).max(16 * 1024);
    }
    cfg
}

/// Standard warmup applied to every measured experiment: four batches to
/// learn the hot set and settle placement, then measure steady state.
pub fn with_warmup(mut cfg: SystemConfig) -> SystemConfig {
    cfg.warmup_batches = 4;
    cfg
}

/// Runs `cfg` over the standard Meta-like trace.
pub fn run_std(cfg: SystemConfig) -> RunMetrics {
    let trace = std_trace(&cfg.model, meta_distribution(), STD_BATCH_SIZE, STD_BATCHES);
    SlsSystem::new(with_warmup(cfg)).run_trace(&trace)
}

/// Runs `cfg` over an explicit trace.
pub fn run_with(cfg: SystemConfig, trace: &Trace) -> RunMetrics {
    SlsSystem::new(cfg).run_trace(trace)
}

/// Emits one experiment's result: pretty table on stdout plus
/// `results/<id>.json` for EXPERIMENTS.md bookkeeping.
pub fn emit(id: &str, title: &str, value: &serde_json::Value) {
    println!("== {id}: {title} ==");
    println!(
        "{}",
        serde_json::to_string_pretty(value).expect("serializable")
    );
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{id}.json"));
        let _ = std::fs::write(
            &path,
            serde_json::to_vec_pretty(value).expect("serializable"),
        );
        println!("-> wrote {}", path.display());
    }
    println!();
}

/// Writes one experiment's raw sweep rows as `results/<id>.jsonl` — one
/// compact JSON object per grid point, in grid order — and announces the
/// path. The scenario's `summarize` output (via [`emit`]) is derived
/// from exactly these rows, so the pair documents both the measurements
/// and the figure built from them.
pub fn emit_jsonl(id: &str, rows: &[scenario::ResultRow]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{id}.jsonl"));
        let mut out = String::new();
        for row in rows {
            out.push_str(&row.to_jsonl());
            out.push('\n');
        }
        if std::fs::write(&path, out).is_ok() {
            println!("-> wrote {}", path.display());
        }
    }
}

/// Min-max normalization matching the paper's Fig 12 caption.
pub fn min_max(xs: &[f64]) -> Vec<f64> {
    simkit::stats::min_max_normalize(xs)
}

/// Normalizes by the series maximum.
pub fn by_max(xs: &[f64]) -> Vec<f64> {
    simkit::stats::max_normalize(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_models_preserve_ratios() {
        let full = ModelConfig::all();
        let small: Vec<ModelConfig> = full.iter().cloned().map(scaled).collect();
        for (f, s) in full.iter().zip(&small) {
            assert_eq!(f.emb_dim, s.emb_dim);
            assert_eq!(f.n_tables, s.n_tables);
            assert_eq!(s.emb_num, f.emb_num / MODEL_SCALE);
        }
    }

    #[test]
    fn std_run_is_deterministic() {
        let cfg = || SystemConfig::pifs_rec(scaled(ModelConfig::rmc1()));
        let a = run_std(cfg());
        let b = run_std(cfg());
        assert_eq!(a.total_ns, b.total_ns);
    }

    #[test]
    fn normalization_helpers_behave() {
        assert_eq!(min_max(&[1.0, 3.0]), vec![0.0, 1.0]);
        assert_eq!(by_max(&[1.0, 2.0]), vec![0.5, 1.0]);
    }
}
