//! `bench-compare` — diffs a fresh `BENCH_sim.json` against a baseline.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [--threshold PCT] [--strict]
//!               [--strict-family TARGET ...]
//! ```
//!
//! Prints a per-benchmark table of mean-ns deltas (positive = slower),
//! flags regressions beyond the threshold (default 20 %), and lists
//! benchmarks that appear in only one file. Exit status is 0 unless a
//! regression crossed the threshold in a gated benchmark: `--strict`
//! gates every target, while `--strict-family SPEC` (repeatable) gates
//! only the matching benchmarks, leaving the rest warn-only. A spec
//! matches a whole target family (`sls_kernel`) or one benchmark by
//! its qualified id (`serving/controller_tick`) — the latter gates a
//! deterministic micro-bench inside an otherwise noisy family. CI
//! runs the
//! hand-tuned kernel families (`sls_kernel`, `instr_codec`) and the
//! controller decision path (`serving/controller_tick`) strictly —
//! they are deterministic enough to gate — and everything else
//! warn-only, so a noisy runner cannot fail the build on a
//! macro-benchmark wobble.

use std::collections::BTreeMap;

/// One benchmark's mean, keyed by `target :: id`.
type Means = BTreeMap<(String, String), f64>;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 20.0f64;
    let mut strict = false;
    let mut strict_families: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().unwrap_or_else(|| die("--threshold needs PCT"));
                threshold = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--threshold: bad value {v:?}")));
            }
            "--strict" => strict = true,
            "--strict-family" => {
                let v = args.next().unwrap_or_else(|| {
                    die("--strict-family needs a target, id, or target/id spec")
                });
                strict_families.push(v);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_compare <baseline.json> <fresh.json> \
                     [--threshold PCT] [--strict] [--strict-family TARGET ...]"
                );
                return;
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        die("expected exactly two paths: <baseline.json> <fresh.json>")
    };

    let baseline = load_means(baseline_path);
    let fresh = load_means(fresh_path);

    println!("bench-compare: {baseline_path} (baseline) vs {fresh_path} (fresh)");
    println!(
        "{:<44} {:>12} {:>12} {:>9}",
        "benchmark", "base ns", "fresh ns", "delta"
    );
    let mut regressions = 0usize;
    let mut gated_regressions = 0usize;
    for ((target, id), base_ns) in &baseline {
        let Some(fresh_ns) = fresh.get(&(target.clone(), id.clone())) else {
            println!(
                "{:<44} {:>12.1} {:>12} {:>9}",
                format!("{target}::{id}"),
                base_ns,
                "-",
                "gone"
            );
            continue;
        };
        let delta_pct = (fresh_ns - base_ns) / base_ns * 100.0;
        let flag = if delta_pct > threshold {
            regressions += 1;
            if strict_families.iter().any(|f| f == target || f == id) {
                gated_regressions += 1;
            }
            "  <-- REGRESSION"
        } else {
            ""
        };
        println!(
            "{:<44} {:>12.1} {:>12.1} {:>+8.1}%{}",
            format!("{target}::{id}"),
            base_ns,
            fresh_ns,
            delta_pct,
            flag
        );
    }
    for (target, id) in fresh.keys() {
        if !baseline.contains_key(&(target.clone(), id.clone())) {
            println!(
                "{:<44} {:>12} {:>12} {:>9}",
                format!("{target}::{id}"),
                "-",
                "",
                "new"
            );
        }
    }
    if regressions > 0 {
        println!("\n{regressions} benchmark(s) regressed more than {threshold:.0}%");
        if gated_regressions > 0 {
            println!(
                "{gated_regressions} of them in strict families ({})",
                strict_families.join(", ")
            );
        }
        if strict || gated_regressions > 0 {
            std::process::exit(1);
        }
    } else {
        println!("\nno regressions beyond {threshold:.0}%");
    }
}

/// Loads `{target: [{id, mean_ns, ...}]}` means from a `BENCH_sim.json`.
fn load_means(path: &str) -> Means {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let doc =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")));
    let mut out = Means::new();
    let Some(targets) = doc.get("targets").and_then(|t| t.as_object()) else {
        die(&format!("{path}: missing \"targets\" object"))
    };
    for (target, entries) in targets.iter() {
        let Some(list) = entries.as_array() else {
            die(&format!("{path}: target {target:?} is not an array"))
        };
        for entry in list {
            let id = entry
                .get("id")
                .and_then(|v| v.as_str())
                .unwrap_or_else(|| die(&format!("{path}: bench entry without id")));
            let mean = entry
                .get("mean_ns")
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| die(&format!("{path}: {id}: missing mean_ns")));
            out.insert((target.clone(), id.to_string()), mean);
        }
    }
    out
}

fn die(msg: &str) -> ! {
    eprintln!("bench-compare: {msg}");
    std::process::exit(2)
}
