//! `repro` — regenerates every table and figure of the PIFS-Rec paper.
//!
//! Usage: `cargo run --release -p pifs-bench --bin repro -- <id>` where
//! `<id>` is one of `table1 table2 fig5 fig6 fig12a fig12b fig12c fig12d
//! fig12e fig13a fig13b fig13c fig13d fig14 fig15 fig16 fig17 fig18
//! energy all`.

use baselines::{GpuParameterServer, Scheme};
use dlrm::{CostModel, ModelConfig, ThreadingMode};
use pagemgmt::{InitialPlacement, MigrationGranularity};
use pifs_bench::*;
use pifs_core::system::{ComputeSite, PmConfig, PmStyle, SystemConfig};
use serde_json::json;
use tco::{EnergyModel, HardwareOverheads, SystemBom};
use tracegen::Distribution;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = [
        "table1", "table2", "fig5", "fig6", "fig12a", "fig12b", "fig12c", "fig12d", "fig12e",
        "fig13a", "fig13b", "fig13c", "fig13d", "fig14", "fig15", "fig16", "fig17", "fig18",
        "energy",
    ];
    let targets: Vec<&str> = if arg == "all" {
        all.to_vec()
    } else {
        vec![all
            .iter()
            .copied()
            .find(|t| *t == arg)
            .unwrap_or_else(|| panic!("unknown experiment id {arg:?}; try one of {all:?}"))]
    };
    for t in targets {
        match t {
            "table1" => table1(),
            "table2" => table2(),
            "fig5" => fig5(),
            "fig6" => fig6(),
            "fig12a" => fig12a(),
            "fig12b" => fig12b(),
            "fig12c" => fig12c(),
            "fig12d" => fig12d(),
            "fig12e" => fig12e(),
            "fig13a" => fig13a(),
            "fig13b" => fig13b(),
            "fig13c" => fig13c(),
            "fig13d" => fig13d(),
            "fig14" => fig14(),
            "fig15" => fig15(),
            "fig16" => fig16(),
            "fig17" => fig17(),
            "fig18" => fig18(),
            "energy" => energy(),
            _ => unreachable!(),
        }
    }
}

fn table1() {
    let rows: Vec<_> = ModelConfig::all()
        .iter()
        .map(|m| {
            json!({
                "name": m.name, "emb_num": m.emb_num, "emb_dim": m.emb_dim,
                "bottom_mlp": m.bottom_mlp.0, "top_mlp": m.top_mlp.0,
                "row_bytes": m.row_bytes(),
            })
        })
        .collect();
    emit("table1", "Model parameters (Table I)", &json!(rows));
}

fn table2() {
    let local = memsim::DramConfig::ddr5_4800_local();
    let cxl = memsim::DramConfig::ddr4_cxl_expander();
    let params = cxlsim::CxlParams::default();
    let dram_json = |cfg: &memsim::DramConfig| {
        json!({
            "timings": json!({
                "cl": cfg.timings.cl, "rcd": cfg.timings.rcd, "rp": cfg.timings.rp,
                "ras": cfg.timings.ras, "rc": cfg.timings.rc, "wr": cfg.timings.wr,
                "rtp": cfg.timings.rtp, "cwl": cfg.timings.cwl, "rfc": cfg.timings.rfc,
                "faw": cfg.timings.faw, "rrd": cfg.timings.rrd,
                "burst_length": cfg.timings.burst_length,
                "refi_ns": cfg.timings.refi_ns, "tck_ps": cfg.timings.tck_ps,
            }),
            "org": json!({
                "channels": cfg.org.channels, "ranks": cfg.org.ranks,
                "banks": cfg.org.banks, "row_bytes": cfg.org.row_bytes,
                "bus_bytes": cfg.org.bus_bytes, "capacity_bytes": cfg.org.capacity_bytes,
            }),
            "peak_gbps": cfg.peak_bandwidth_gbps(),
        })
    };
    emit(
        "table2",
        "Hardware configuration (Table II)",
        &json!({
            "dram_local": dram_json(&local),
            "dram_cxl_expander": dram_json(&cxl),
            "cxl": json!({
                "downstream_port_gbps": params.link_gbps,
                "round_trip_penalty_ns": params.round_trip_ns(),
            }),
        }),
    );
}

/// Characterization base: host-compute lookups over a given placement.
fn characterization_cfg(
    emb_dim: u32,
    rows: u64,
    placement: InitialPlacement,
    threading: ThreadingMode,
) -> SystemConfig {
    let model = ModelConfig {
        name: format!("char-{emb_dim}d"),
        emb_num: rows,
        emb_dim,
        n_tables: 8,
        bag_size: 8,
        ..ModelConfig::rmc1()
    };
    let mut cfg = SystemConfig::pond(model);
    cfg.placement = placement;
    cfg.threading = threading;
    cfg.local_capacity_frac = 1.1; // capacity never binds in Fig 5
    cfg
}

fn fig5() {
    // Scaled table sizes standing in for the paper's 16K–1024K sweep.
    let sizes = [1024u64, 2048, 4096, 8192, 16384, 32768, 65536];
    let dims = [16u32, 32, 64, 128];
    let mut out = serde_json::Map::new();
    for (panel, threading) in [
        ("batch", ThreadingMode::Batch),
        ("table", ThreadingMode::Table),
    ] {
        for (case, placement, norm_vs_cxl) in [
            (
                "remote",
                InitialPlacement::RemoteFraction { remote_frac: 0.2 },
                false,
            ),
            (
                "cxl",
                InitialPlacement::CxlFraction { cxl_frac: 0.2 },
                false,
            ),
            (
                "interleave",
                InitialPlacement::CxlFraction { cxl_frac: 0.2 },
                true,
            ),
        ] {
            let mut series = serde_json::Map::new();
            for dim in dims {
                let mut vals = Vec::new();
                for &rows in &sizes {
                    let cfg = characterization_cfg(dim, rows, placement, threading);
                    let bw = run_small(cfg).app_bandwidth_gbps(4 * dim as u64);
                    let base_placement = if norm_vs_cxl {
                        InitialPlacement::AllCxl
                    } else {
                        InitialPlacement::AllLocal
                    };
                    let base_cfg = characterization_cfg(dim, rows, base_placement, threading);
                    let base = run_small(base_cfg).app_bandwidth_gbps(4 * dim as u64);
                    vals.push(if base > 0.0 { bw / base } else { 0.0 });
                }
                series.insert(format!("dim{dim}"), json!(vals));
            }
            out.insert(format!("{case}_{panel}"), json!(series));
        }
    }
    emit(
        "fig5",
        "Normalized app bandwidth vs table size (Fig 5; a-d vs all-local, e-f vs all-CXL)",
        &json!({ "sizes": sizes, "panels": out }),
    );
}

fn run_small(cfg: SystemConfig) -> pifs_core::system::RunMetrics {
    let trace = std_trace(&cfg.model, meta_distribution(), 16, 4);
    run_with(cfg, &trace)
}

fn fig6() {
    let mut rows = Vec::new();
    for (cores, dim) in [(4u32, 32u32), (4, 64), (4, 128), (8, 32), (8, 64)] {
        let model = ModelConfig {
            name: format!("{cores}c{dim}d"),
            emb_num: 8192,
            emb_dim: dim,
            ..ModelConfig::rmc2()
        };
        let mut cfg = SystemConfig::pond(model);
        cfg.placement = InitialPlacement::CxlFraction { cxl_frac: 0.2 };
        cfg.cores_per_host = cores;
        cfg.local_capacity_frac = 1.1;
        let m = run_small(cfg);
        let total_bytes = (m.lookups * 4 * dim as u64) as f64;
        let cxl_frac = m.cxl_lookups as f64 / m.lookups as f64;
        let bw = total_bytes / m.total_ns as f64;
        rows.push(json!({
            "threads_and_dim": format!("{cores}&{dim}"),
            "dimm_gbps": bw * (1.0 - cxl_frac),
            "cxl_gbps": bw * cxl_frac,
        }));
    }
    emit("fig6", "CXL bandwidth contribution (Fig 6)", &json!(rows));
}

fn fig12a() {
    let mut per_model = serde_json::Map::new();
    let mut ratios = serde_json::Map::new();
    for model in ModelConfig::all() {
        let m = scaled(model);
        let mut lat = Vec::new();
        for scheme in Scheme::all() {
            lat.push(run_std(scale_buffers(scheme.config(m.clone()))).total_ns as f64);
        }
        let labels: Vec<_> = Scheme::all().iter().map(|s| s.label()).collect();
        let norm = by_max(&lat);
        let pifs = lat[4];
        ratios.insert(
            m.name.clone(),
            json!({
                "pond_over_pifs": lat[0] / pifs,
                "pond_pm_over_pifs": lat[1] / pifs,
                "beacon_over_pifs": lat[2] / pifs,
                "recnmp_over_pifs": lat[3] / pifs,
            }),
        );
        per_model.insert(
            m.name.clone(),
            json!({ "schemes": labels, "latency_ns": lat, "normalized": norm }),
        );
    }
    emit(
        "fig12a",
        "Scheme latency per model (Fig 12a; paper: Pond 3.89x, Pond+PM 3.57x, BEACON 2.03x, RecNMP ~1.09x over PIFS-Rec)",
        &json!({ "models": per_model, "speedups": ratios }),
    );
}

fn fig12b() {
    let m = scaled(ModelConfig::rmc3());
    let mut rows = Vec::new();
    for (label, dist) in Distribution::fig12b_suite() {
        let mut lat = Vec::new();
        for scheme in Scheme::all() {
            let trace = std_trace(&m, dist, STD_BATCH_SIZE, STD_BATCHES);
            lat.push(run_with(scale_buffers(scheme.config(m.clone())), &trace).total_ns as f64);
        }
        rows.push(json!({
            "trace": label,
            "latency_ns": lat,
            "normalized": by_max(&lat),
            "pifs_speedup_vs_pond": lat[0] / lat[4],
            "pifs_speedup_vs_beacon": lat[2] / lat[4],
        }));
    }
    emit("fig12b", "Trace generality (Fig 12b)", &json!(rows));
}

fn fig12c() {
    let m = scaled(ModelConfig::rmc4());
    let mut rows = Vec::new();
    for devices in [2u16, 4, 8, 16] {
        let mut lat = Vec::new();
        for scheme in Scheme::all() {
            let mut cfg = scale_buffers(scheme.config(m.clone()));
            cfg.n_devices = devices;
            lat.push(run_std(cfg).total_ns as f64);
        }
        rows.push(json!({
            "devices": devices,
            "latency_ns": lat,
            "normalized": by_max(&lat),
            "pifs_speedup_vs_pond": lat[0] / lat[4],
        }));
    }
    emit(
        "fig12c",
        "Memory-device scaling (Fig 12c; paper: 12.5x over Pond at 16 devices)",
        &json!(rows),
    );
}

fn fig12d() {
    let m = scaled(ModelConfig::rmc4());
    let mut rows = Vec::new();
    // 128 GB scaled = 0.2 of the working set; X2/X4 double and quadruple.
    for (label, frac) in [("128GB", 0.2), ("X2", 0.4), ("X4", 0.8)] {
        let mut lat = Vec::new();
        for scheme in Scheme::all() {
            let mut cfg = scale_buffers(scheme.config(m.clone()));
            cfg.local_capacity_frac = frac;
            lat.push(run_std(cfg).total_ns as f64);
        }
        rows.push(json!({ "dram": label, "latency_ns": lat, "normalized": by_max(&lat) }));
    }
    emit(
        "fig12d",
        "DRAM capacity sensitivity (Fig 12d; paper: 256GB +4%, 512GB +6%)",
        &json!(rows),
    );
}

fn ablation_ladder(m: &ModelConfig) -> Vec<(&'static str, SystemConfig)> {
    let pond = SystemConfig::pond(m.clone());
    let mut pc = SystemConfig::pond(m.clone());
    pc.compute = ComputeSite::Switch;
    let mut pc_ooo = pc.clone();
    pc_ooo.ooo = true;
    let mut pc_ooo_pm = pc_ooo.clone();
    pc_ooo_pm.placement = InitialPlacement::CxlFraction { cxl_frac: 0.8 };
    pc_ooo_pm.page_mgmt = Some(PmConfig::default());
    let mut full = pc_ooo_pm.clone();
    full.buffer = Some(Default::default());
    vec![
        ("Baseline", pond),
        ("PC", pc),
        ("PC/OoO", pc_ooo),
        ("PC/OoO/PM", pc_ooo_pm),
        ("PC/OoO/PM/OSB", full),
    ]
}

fn fig12e() {
    let mut per_model = serde_json::Map::new();
    for model in ModelConfig::all() {
        let m = scaled(model);
        let runs: Vec<(String, f64)> = ablation_ladder(&m)
            .into_iter()
            .map(|(label, cfg)| (label.to_string(), run_std(cfg).total_ns as f64))
            .collect();
        let lat: Vec<f64> = runs.iter().map(|(_, v)| *v).collect();
        per_model.insert(
            m.name.clone(),
            json!({
                "stages": runs.iter().map(|(l, _)| l.clone()).collect::<Vec<_>>(),
                "latency_ns": lat,
                "normalized": by_max(&lat),
            }),
        );
    }
    emit(
        "fig12e",
        "Ablation ladder (Fig 12e; paper deltas: PC +26%, OoO +7.3%, PM +27%, OSB +15%)",
        &json!(per_model),
    );
}

fn fig13a() {
    let m = scaled(ModelConfig::rmc4());
    let mut rows = Vec::new();
    for threshold in [0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50] {
        let mut row = serde_json::Map::new();
        row.insert("threshold".into(), json!(threshold));
        for (label, gran) in [
            ("cache_line", MigrationGranularity::CacheLineBlock),
            ("page_block", MigrationGranularity::PageBlock),
        ] {
            let mut cfg = SystemConfig::pifs_rec(m.clone());
            cfg.page_mgmt = Some(PmConfig {
                migrate_threshold: threshold,
                granularity: gran,
                ..PmConfig::default()
            });
            let met = run_std(cfg);
            row.insert(format!("{label}_latency_ns"), json!(met.total_ns));
            row.insert(
                format!("{label}_migration_cost"),
                json!(met.migration_cost_frac()),
            );
        }
        rows.push(serde_json::Value::Object(row));
    }
    emit(
        "fig13a",
        "Migrate-threshold sweep (Fig 13a; paper optimum 35%, cache-line up to 5.1x cheaper)",
        &json!(rows),
    );
}

fn fig13b() {
    let m = scaled(ModelConfig::rmc4());
    // The "before" system inherits the Fig 10(b) worst case: tables laid
    // out in contiguous blocks, concentrating the workload's spatial
    // hotspot (a Normal index distribution) on a few devices.
    let n_pages = SystemConfig::pifs_rec(m.clone()).n_pages();
    let dist = Distribution::ZipfianHead { s: 0.8 };
    // Longer run: the spreading strategy rebalances periodically, so give
    // it several rebalance rounds before measuring.
    let trace = std_trace(&m, dist, STD_BATCH_SIZE, 36);
    let mut base = scale_buffers(SystemConfig::pifs_rec(m.clone()));
    base.n_devices = 16;
    base.page_mgmt = None;
    base.placement = InitialPlacement::AllCxlBlocked {
        total_pages: n_pages,
    };
    base.warmup_batches = 24;
    let before = run_with(base, &trace);
    let mut managed = scale_buffers(SystemConfig::pifs_rec(m));
    managed.n_devices = 16;
    managed.placement = InitialPlacement::AllCxlBlocked {
        total_pages: n_pages,
    };
    managed.warmup_batches = 24;
    let after = run_with(managed, &trace);
    // The paper plots *relative* access frequency (percent of the
    // busiest device) and quotes the std dev of that series.
    let rel = |v: &Vec<u64>| {
        let max = (*v.iter().max().unwrap_or(&1)).max(1) as f64;
        v.iter()
            .map(|&x| x as f64 / max * 100.0)
            .collect::<Vec<f64>>()
    };
    // Coefficient of variation (std dev as % of mean): comparable across
    // runs whose total CXL traffic differs (PM also promotes pages away
    // from CXL, shrinking the absolute counts).
    let std_of = |v: &Vec<u64>| {
        let xs: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        let s = simkit::Summary::of(&xs);
        if s.mean > 0.0 {
            s.std_dev / s.mean * 100.0
        } else {
            0.0
        }
    };
    emit(
        "fig13b",
        "Device access balance before/after PM (Fig 13b; paper std dev 20.6 -> 7.8)",
        &json!({
            "before": json!({
                "accesses": before.device_accesses.clone(),
                "relative": rel(&before.device_accesses),
                "cv_percent": std_of(&before.device_accesses),
            }),
            "after": json!({
                "accesses": after.device_accesses.clone(),
                "relative": rel(&after.device_accesses),
                "cv_percent": std_of(&after.device_accesses),
            }),
        }),
    );
}

fn fig13c() {
    let m = scaled(ModelConfig::rmc4());
    let mut rows = Vec::new();
    for batch in [8u32, 64, 256] {
        let mut lat = Vec::new();
        let switch_counts = [1u16, 2, 4, 8, 16, 32];
        for &switches in &switch_counts {
            let mut cfg = SystemConfig::pifs_rec(m.clone());
            cfg.n_switches = switches;
            cfg.n_devices = switches.max(8);
            cfg.n_hosts = switches;
            let trace = std_trace(&m, meta_distribution(), batch, 6);
            lat.push(run_with(cfg, &trace).total_ns as f64);
        }
        rows.push(json!({
            "batch": batch,
            "switches": switch_counts,
            "latency_ns": lat,
            "normalized": by_max(&lat),
            "improvement_1_to_32": lat[0] / lat[5],
        }));
    }
    emit(
        "fig13c",
        "Fabric-switch scaling (Fig 13c; paper: 1.8-20.8x from 2x to 32x in the largest batch)",
        &json!(rows),
    );
}

fn fig13d() {
    let m = scaled(ModelConfig::rmc4());
    let mut rows = Vec::new();
    // TPP reference point.
    let mut tpp_cfg = SystemConfig::pifs_rec(m.clone());
    tpp_cfg.page_mgmt = Some(PmConfig {
        style: PmStyle::Tpp,
        ..PmConfig::default()
    });
    let tpp = run_std(tpp_cfg);
    rows.push(json!({
        "policy": "TPP",
        "latency_ns": tpp.total_ns,
        "migration_cost": tpp.migration_cost_frac(),
    }));
    for threshold in [0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16, 0.18, 0.20] {
        let mut cfg = SystemConfig::pifs_rec(m.clone());
        cfg.page_mgmt = Some(PmConfig {
            cold_age_threshold: threshold,
            ..PmConfig::default()
        });
        let met = run_std(cfg);
        rows.push(json!({
            "policy": format!("{}%", (threshold * 100.0).round() as u32),
            "latency_ns": met.total_ns,
            "migration_cost": met.migration_cost_frac(),
        }));
    }
    emit(
        "fig13d",
        "Cold-age threshold sweep vs TPP (Fig 13d; paper optimum 16%, 12% below TPP)",
        &json!(rows),
    );
}

fn fig14() {
    let mut out = Vec::new();
    for model in [ModelConfig::rmc1(), ModelConfig::rmc2()] {
        let m = scaled(model);
        for batch in [8u32, 64, 256] {
            // Per-batch dense cost; the SLS time share grows with batch
            // size because the dense stages amortize across samples.
            let cpu = CostModel::epyc_9654();
            let dense_batch_ns = cpu
                .latency(m.dense_flops_per_sample() * batch as u64, 0)
                .as_ns() as f64;
            let mut speedups = Vec::new();
            // Each host carries its own request stream: work scales with
            // host count, and the figure reports throughput speedup.
            let base_trace = std_trace(&m, meta_distribution(), batch, 6);
            let base_cfg = with_warmup(SystemConfig::pond(m.clone()));
            let base_m = run_with(base_cfg, &base_trace);
            let base_thru = base_m.lookups as f64 / base_m.total_ns as f64;
            for hosts in [1u16, 2, 4, 8] {
                let trace = std_trace(&m, meta_distribution(), batch, 6 * hosts as u32);
                let mut cfg = with_warmup(SystemConfig::pifs_rec(m.clone()));
                cfg.n_hosts = hosts;
                let met = run_with(cfg, &trace);
                let thru = met.lookups as f64 / met.total_ns as f64;
                let sls_speedup = thru / base_thru;
                // End-to-end: weight the SLS speedup by its per-batch
                // time share on the baseline system (Fig 14 "weighting
                // the speedup of both SLS and non-SLS operators").
                let batches_measured = (trace.batches.len() as u32).saturating_sub(4).max(1);
                let sls_batch_ns = met.total_ns as f64 / batches_measured as f64 * sls_speedup;
                let f = sls_batch_ns / (sls_batch_ns + dense_batch_ns);
                let e2e = 1.0 / ((1.0 - f) + f / sls_speedup);
                speedups.push(e2e);
            }
            out.push(json!({
                "model": m.name, "batch": batch,
                "hosts": [1, 2, 4, 8],
                "e2e_speedup": speedups,
            }));
        }
    }
    emit(
        "fig14",
        "Multi-host end-to-end speedup (Fig 14; paper: 1.9-4.7x from 2 to 8 hosts)",
        &json!(out),
    );
}

fn fig15() {
    use pifs_core::BufferPolicy;
    let mut out = Vec::new();
    for model in ModelConfig::all() {
        let m = scaled(model);
        let mut no_buffer = SystemConfig::pifs_rec(m.clone());
        no_buffer.buffer = None;
        let base = run_std(no_buffer).total_ns as f64;
        let mut rows = Vec::new();
        for cap_kb in [64u64, 128, 256, 512, 1024] {
            for (label, policy) in [
                ("HTR", BufferPolicy::Htr),
                ("LRU", BufferPolicy::Lru),
                ("FIFO", BufferPolicy::Fifo),
            ] {
                let mut cfg = SystemConfig::pifs_rec(m.clone());
                cfg.buffer = Some(pifs_core::system::BufferConfig {
                    policy,
                    capacity_bytes: cap_kb * 1024,
                });
                let met = run_std(cfg);
                rows.push(json!({
                    "capacity_kb": cap_kb, "policy": label,
                    "speedup_pct": (base / met.total_ns as f64 - 1.0) * 100.0,
                    "hit_ratio": met.buffer_hit_ratio(),
                }));
            }
        }
        out.push(json!({ "model": m.name, "baseline_ns": base, "points": rows }));
    }
    emit(
        "fig15",
        "On-switch buffer capacity & policy (Fig 15; paper: HTR 7.6-14.8% on RMC4, 1MB degrades)",
        &json!(out),
    );
}

fn tco_memory_gb(model: &ModelConfig) -> u64 {
    (GpuParameterServer::deployment_bytes(model) >> 30).max(64)
}

fn fig16() {
    let mut rows = Vec::new();
    for model in ModelConfig::all() {
        let mem = tco_memory_gb(&model);
        let pifs = SystemBom::pifs_rec(mem / 5, mem * 4 / 5).tco();
        let mut entry = serde_json::Map::new();
        entry.insert("model".into(), json!(model.name));
        entry.insert(
            "pifs".into(),
            json!({ "capex": pifs.bom.capex_usd, "opex": pifs.opex_usd,
                     "total": pifs.total_usd() }),
        );
        for n in [2u32, 3, 4] {
            let gpu = SystemBom::gpu_server(n, mem).tco();
            entry.insert(
                format!("gpu_x{n}"),
                json!({ "capex": gpu.bom.capex_usd, "opex": gpu.opex_usd,
                         "total": gpu.total_usd(),
                         "pifs_cost_advantage": gpu.total_usd() / pifs.total_usd() }),
            );
        }
        rows.push(serde_json::Value::Object(entry));
    }
    emit(
        "fig16",
        "TCO vs GPU budgets (Fig 16; paper: 3.38x cheaper on RMC1, 2.53x on RMC4 vs 1 GPU)",
        &json!(rows),
    );
}

fn fig17() {
    let mut rows = Vec::new();
    for model in ModelConfig::all() {
        let pifs = baselines::gpu::pifs_throughput_samples_per_us(
            &model,
            baselines::gpu::PIFS_EFFECTIVE_SLS_GBPS,
        );
        let mut vals = vec![];
        for n in [2u32, 3, 4] {
            vals.push(GpuParameterServer::new(n).throughput_samples_per_us(&model));
        }
        vals.push(pifs);
        let ppw: Vec<f64> = [2u32, 3, 4]
            .iter()
            .map(|&n| vals[(n - 2) as usize] / GpuParameterServer::new(n).power_w())
            .chain(std::iter::once(pifs / (360.0 + 400.0 + 2048.0 * 0.34)))
            .collect();
        rows.push(json!({
            "model": model.name,
            "series": ["GPUX2", "GPUX3", "GPUX4", "PIFS-Rec"],
            "throughput_samples_per_us": vals,
            "normalized": by_max(&vals),
            "pifs_over_gpux4": vals[3] / vals[2],
            "performance_per_watt": ppw,
        }));
    }
    emit(
        "fig17",
        "Serving throughput (Fig 17; paper: GPU wins RMC1, PIFS 1.6x over 4 GPUs on RMC4; PPW 1.22-1.61x)",
        &json!(rows),
    );
}

fn fig18() {
    let hw = HardwareOverheads::default();
    let block = |b: &tco::BlockCost| json!({ "name": b.name, "power_mw": b.power_mw, "area_um2": b.area_um2 });
    emit(
        "fig18",
        "Hardware overheads (Fig 18)",
        &json!({
            "process_core": block(&hw.process_core),
            "control_logic_registers": block(&hw.control),
            "on_switch_buffer": block(&hw.buffer),
            "recnmp_base_x8": block(&hw.recnmp_x8),
            "pifs_total_power_mw": hw.pifs_total_power_mw(),
            "power_ratio_vs_recnmp": hw.power_ratio_vs_recnmp(),
            "area_ratio_vs_recnmp": hw.area_ratio_vs_recnmp(),
        }),
    );
}

fn energy() {
    let model = EnergyModel::default();
    let rows: Vec<_> = ModelConfig::all()
        .iter()
        .map(|m| {
            json!({
                "model": m.name,
                "baseline_nj_per_bag": model.baseline_bag_nj(m),
                "pifs_nj_per_bag": model.pifs_bag_nj(m),
                "saving_frac": model.saving_frac(m),
            })
        })
        .collect();
    let avg: f64 = ModelConfig::all()
        .iter()
        .map(|m| model.saving_frac(m))
        .sum::<f64>()
        / 4.0;
    emit(
        "energy",
        "Energy vs DIMM+CPU (§VI-D; paper: -15.3% average)",
        &json!({ "per_model": rows, "average_saving": avg }),
    );
}
