//! `repro` — regenerates every table and figure of the PIFS-Rec paper.
//!
//! ```text
//! repro [--threads N] <id> | all          reproduce one figure (or all)
//! repro [--threads N] sweep <id> --param k=v1,v2,... [--param ...]
//!                                         run an off-paper grid
//! repro list                              list scenarios and their axes
//! ```
//!
//! The experiment-id list is generated from the scenario registry
//! (`pifs_bench::scenario::registry()`), the single source of truth —
//! run `repro -- list` to see it, together with each scenario's
//! sweepable parameters. Every figure executes its grid points on a
//! worker pool (one thread per core by default; `--threads`/
//! `REPRO_THREADS` override) and emits both raw per-point rows
//! (`results/<id>.jsonl`) and the summarized figure JSON
//! (`results/<id>.json`), which is bit-identical for any thread count.
//! `sweep` reuses a scenario's machinery on a grid the paper never ran:
//! declared parameters take overridden value lists, and the free-form
//! `custom` scenario additionally forwards unknown keys to
//! `SystemConfig::apply_knob` (topology and page-management knobs).

use pifs_bench::runner::SweepRunner;
use pifs_bench::scenario::{cartesian_points, registry, ParamSpec, ParamValue, Scenario};
use pifs_bench::{emit, emit_jsonl};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads: Option<usize> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            let v = it.next().unwrap_or_else(|| die("--threads needs a value"));
            threads = Some(
                v.parse()
                    .unwrap_or_else(|_| die(&format!("--threads: bad count {v:?}"))),
            );
        } else {
            rest.push(arg);
        }
    }
    let runner = match threads {
        Some(n) => SweepRunner::new(n),
        None => SweepRunner::with_default_threads(),
    };

    match rest.first().map(String::as_str) {
        None | Some("all") => {
            let mut table: Vec<(&str, pifs_bench::runner::RunStats)> = Vec::new();
            for scenario in registry().into_iter().filter(|s| s.in_all()) {
                table.push((scenario.id(), reproduce(&runner, scenario)));
            }
            print_stats_table(&table, runner.threads);
        }
        Some("list") => print_list(),
        Some("sweep") => sweep(&runner, &rest[1..]),
        Some(id) => match pifs_bench::scenario::find(id) {
            Some(scenario) => {
                reproduce(&runner, scenario);
            }
            None => die(&format!("unknown experiment id {id:?}\n\n{}", usage())),
        },
    }
}

/// Runs one registered scenario's default (paper) grid and emits the raw
/// rows plus the summarized figure; returns the sweep's runtime stats.
fn reproduce(runner: &SweepRunner, scenario: &dyn Scenario) -> pifs_bench::runner::RunStats {
    let (rows, stats) = runner.run_stats(scenario);
    emit_jsonl(scenario.id(), &rows);
    emit(scenario.id(), scenario.title(), &scenario.summarize(&rows));
    stats
}

/// Prints the per-scenario wall-time / events-per-second summary of an
/// `all` run. Goes to stderr: wall times vary run to run, while stdout
/// stays byte-identical for any thread count (the determinism bar the
/// golden tests enforce).
fn print_stats_table(table: &[(&str, pifs_bench::runner::RunStats)], threads: usize) {
    eprintln!("\n== repro -- all: runtime summary ({threads} threads) ==");
    eprintln!(
        "{:10} {:>7} {:>7} {:>10} {:>14} {:>12}",
        "scenario", "points", "tasks", "wall", "sim events", "events/sec"
    );
    let mut wall_total = std::time::Duration::ZERO;
    let mut events_total = 0u64;
    for (id, s) in table {
        wall_total += s.wall;
        events_total += s.events;
        eprintln!(
            "{:10} {:>7} {:>7} {:>9.2?} {:>14} {:>12.3e}",
            id,
            s.points,
            s.tasks,
            s.wall,
            s.events,
            s.events_per_sec()
        );
    }
    let total_secs = wall_total.as_secs_f64();
    let rate = if total_secs > 0.0 {
        events_total as f64 / total_secs
    } else {
        0.0
    };
    eprintln!(
        "{:10} {:>7} {:>7} {:>9.2?} {:>14} {:>12.3e}",
        "total", "", "", wall_total, events_total, rate
    );
}

/// `repro -- sweep <id> --param k=v1,v2,...`: rebuilds the scenario's
/// grid with overridden (or, for free-form scenarios, extra) axes and
/// emits the raw rows without the paper summary.
fn sweep(runner: &SweepRunner, args: &[String]) {
    let Some(id) = args.first() else {
        die(&format!("sweep needs a scenario id\n\n{}", usage()))
    };
    let Some(scenario) = pifs_bench::scenario::find(id) else {
        die(&format!("unknown scenario {id:?}\n\n{}", usage()))
    };
    let mut specs = scenario.params();
    let mut it = args[1..].iter();
    let mut overridden = false;
    while let Some(arg) = it.next() {
        if arg != "--param" {
            die(&format!("unexpected sweep argument {arg:?}\n\n{}", usage()));
        }
        let kv = it
            .next()
            .unwrap_or_else(|| die("--param needs k=v1,v2,..."));
        let (key, vals) = kv
            .split_once('=')
            .unwrap_or_else(|| die(&format!("--param {kv:?}: expected k=v1,v2,...")));
        if vals.split(',').any(str::is_empty) {
            die(&format!("--param {key}: empty value in {vals:?}"));
        }
        let values: Vec<ParamValue> = vals.split(',').map(ParamValue::parse).collect();
        validate_axis_values(key, &values);
        overridden = true;
        if let Some(spec) = specs.iter_mut().find(|s| s.name == key) {
            spec.values = values;
        } else if scenario.accepts_free_params() {
            // Forwarded to SystemConfig::apply_knob by the scenario:
            // dry-run each value against a default config now, so a bad
            // knob (`serving.batch_size=0`, an unknown key) is a
            // sweep-level error here instead of a worker-thread panic
            // mid-grid. Leak the name to satisfy ParamSpec's static
            // lifetime.
            for value in &values {
                let mut probe = pifs_core::system::SystemConfig::pifs_rec_default();
                if let Err(why) = probe.apply_knob(key, &value.to_string()) {
                    die(&format!("--param {key}: {why}"));
                }
            }
            let name: &'static str = Box::leak(key.to_string().into_boxed_str());
            specs.push(ParamSpec { name, values });
        } else {
            let known: Vec<&str> = specs.iter().map(|s| s.name).collect();
            die(&format!(
                "scenario {id} has no parameter {key:?} (axes: {known:?}); \
                 only the `custom` scenario accepts free-form knobs"
            ));
        }
    }
    // Without overrides, run the scenario's true default grid (which may
    // include anchor points outside the cartesian product of its axes);
    // with overrides, enumerate the product of the overridden axes.
    let points = if overridden {
        cartesian_points(&specs)
    } else {
        eprintln!("note: no --param overrides; running the default grid of {id}");
        scenario.points()
    };
    println!(
        "sweep {id}: {} points on {} threads",
        points.len(),
        runner.threads
    );
    let rows = runner.run_points(scenario, points);
    let sweep_id = format!("{id}_sweep");
    emit_jsonl(&sweep_id, &rows);
    emit(
        &sweep_id,
        &format!("Sweep of {id} ({})", scenario.title()),
        &scenario_rows_json(&rows),
    );
}

/// Generic sweep summary: every row's params and data, in grid order.
fn scenario_rows_json(rows: &[pifs_bench::scenario::ResultRow]) -> serde_json::Value {
    use serde_json::{json, Value};
    Value::Array(
        rows.iter()
            .map(|r| json!({ "point": r.index, "params": r.params_json(), "data": r.data }))
            .collect(),
    )
}

/// Validates axes whose semantics are shared across scenarios
/// (`model`, `scheme`, `trace`, `arrival`, `traffic`, `policy`,
/// `fault`, `shed`, `controller`, and the serving batcher knobs)
/// before any simulation starts, so typos and degenerate values
/// (`batch_size=0`) die with a clean message — the parser's own, where
/// the spelling has structure — instead of panicking inside a worker
/// thread.
fn validate_axis_values(key: &str, values: &[ParamValue]) {
    for value in values {
        let spelled = value.to_string();
        let why = match key {
            "model" => (dlrm::ModelConfig::by_name(&spelled).is_none())
                .then(|| format!("unknown model {spelled:?}")),
            "scheme" => (!baselines::Scheme::all()
                .iter()
                .any(|s| s.label().eq_ignore_ascii_case(&spelled)))
            .then(|| format!("unknown scheme {spelled:?}")),
            "trace" => (tracegen::Distribution::parse(&spelled).is_none())
                .then(|| format!("unknown trace distribution {spelled:?}")),
            // The rate is per-point; validate the spelling at a dummy 1 qps.
            "arrival" => tracegen::ArrivalProcess::parse(&spelled, 1.0).err(),
            "traffic" => pifs_bench::scenarios::adaptive::parse_traffic(&spelled, 1.0).err(),
            "policy" => pifs_core::engine::cluster::ShardPolicy::parse(&spelled).err(),
            "fault" => simkit::FaultSpec::parse(&spelled).err(),
            "shed" => pifs_core::system::ShedPolicy::parse(&spelled).err(),
            "controller" => pifs_core::engine::controller::ControllerPolicy::parse(&spelled).err(),
            // Batcher knob axes route through apply_knob inside the
            // worker; dry-run the same knob here so `batch_size=0`
            // (or a junk max-wait) is a sweep-level error.
            "batch_size" => serving_knob_err("serving.batch_size", &spelled),
            "max_wait_us" => serving_knob_err("serving.max_wait_us", &spelled),
            _ => None, // scenario-specific; checked by its run function
        };
        if let Some(why) = why {
            die(&format!("--param {key}: {why}"));
        }
    }
}

/// Dry-runs one serving knob against a default config, returning the
/// knob's own rejection message if the value is invalid.
fn serving_knob_err(knob: &str, spelled: &str) -> Option<String> {
    pifs_core::system::SystemConfig::pifs_rec_default()
        .apply_knob(knob, spelled)
        .err()
}

/// `repro -- list`: the registry as a table of ids, grids, and titles.
fn print_list() {
    println!("registered scenarios (sweep axes in brackets):\n");
    for s in registry() {
        let axes: Vec<String> = s
            .params()
            .iter()
            .map(|p| format!("{}[{}]", p.name, p.values.len()))
            .collect();
        let n_points = s.points().len();
        let tag = if s.in_all() { "" } else { "  (sweep-only)" };
        println!("  {:8} {:3} points  {}{}", s.id(), n_points, s.title(), tag);
        println!("           axes: {}", axes.join(" "));
    }
}

/// Usage text, with the id list generated from the registry.
fn usage() -> String {
    let ids: Vec<&str> = registry()
        .into_iter()
        .filter(|s| s.in_all())
        .map(|s| s.id())
        .collect();
    format!(
        "usage: repro [--threads N] <id> | all | list\n\
         \x20      repro [--threads N] sweep <id> --param k=v1,v2,... [--param ...]\n\
         ids: {} all",
        ids.join(" ")
    )
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
