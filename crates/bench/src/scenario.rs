//! The scenario registry: every paper table/figure as data.
//!
//! A [`Scenario`] describes one experiment declaratively — an id, a
//! description, a grid of [`ParamSpec`] axes — and two functions: `run`,
//! which simulates a single grid [`Point`] into one raw [`ResultRow`],
//! and `summarize`, which folds the ordered rows into the figure-shaped
//! JSON the paper comparison expects. Splitting the per-point work from
//! the aggregation is what lets the [`runner`](crate::runner) execute
//! points on a thread pool while keeping the summary bit-identical to a
//! serial run: rows are collected back in grid order, and all
//! cross-point arithmetic (normalization, speedup ratios, baselines)
//! happens in `summarize` on that ordered sequence.
//!
//! The registry ([`registry`]) is the single source of truth for the
//! experiment-id list: the `repro` binary's `all` target, its usage
//! text, the `sweep` subcommand's scenario lookup, and `EXPERIMENTS.md`
//! consistency tests all enumerate it rather than a hand-rolled array.

use serde_json::{json, Value};

use crate::scenarios;

/// One sweepable value: every grid axis is a list of these.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// An unsigned integer knob (device counts, batch sizes, …).
    U64(u64),
    /// A floating-point knob (thresholds, fractions, …).
    F64(f64),
    /// A named knob (model, scheme, policy, trace label, …).
    Str(String),
}

impl ParamValue {
    /// Parses a command-line spelling, preferring the narrowest type:
    /// `u64`, then `f64`, then a plain string.
    pub fn parse(s: &str) -> ParamValue {
        if let Ok(v) = s.parse::<u64>() {
            ParamValue::U64(v)
        } else if let Ok(v) = s.parse::<f64>() {
            ParamValue::F64(v)
        } else {
            ParamValue::Str(s.to_string())
        }
    }

    /// The value as JSON (for JSONL rows).
    pub fn to_json(&self) -> Value {
        match self {
            ParamValue::U64(v) => json!(*v),
            ParamValue::F64(v) => json!(*v),
            ParamValue::Str(s) => json!(s.as_str()),
        }
    }
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamValue::U64(v) => write!(f, "{v}"),
            ParamValue::F64(v) => write!(f, "{v}"),
            ParamValue::Str(s) => f.write_str(s),
        }
    }
}

/// One named grid axis and the values it takes in the default (paper)
/// sweep. Axis order is significant: grids enumerate row-major with the
/// last axis fastest, matching the nesting order of the original
/// hand-written experiment loops.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Axis name (`model`, `scheme`, `devices`, …).
    pub name: &'static str,
    /// Default values, in paper order.
    pub values: Vec<ParamValue>,
}

impl ParamSpec {
    /// An axis of unsigned integers.
    pub fn u64s(name: &'static str, values: impl IntoIterator<Item = u64>) -> ParamSpec {
        ParamSpec {
            name,
            values: values.into_iter().map(ParamValue::U64).collect(),
        }
    }

    /// An axis of floats.
    pub fn f64s(name: &'static str, values: impl IntoIterator<Item = f64>) -> ParamSpec {
        ParamSpec {
            name,
            values: values.into_iter().map(ParamValue::F64).collect(),
        }
    }

    /// An axis of strings.
    pub fn strs<S: Into<String>>(
        name: &'static str,
        values: impl IntoIterator<Item = S>,
    ) -> ParamSpec {
        ParamSpec {
            name,
            values: values
                .into_iter()
                .map(|s| ParamValue::Str(s.into()))
                .collect(),
        }
    }

    /// The Table I model axis shared by most scenarios.
    pub fn models() -> ParamSpec {
        Self::strs("model", ["RMC1", "RMC2", "RMC3", "RMC4"])
    }

    /// The five-scheme axis of the Fig 12 grids, in plotting order.
    pub fn schemes() -> ParamSpec {
        Self::strs(
            "scheme",
            baselines::Scheme::all()
                .iter()
                .map(|s| s.label().to_string()),
        )
    }
}

/// One fully-bound point of a scenario's grid.
#[derive(Debug, Clone)]
pub struct Point {
    /// Position in the enumerated grid (also the JSONL row order).
    pub index: usize,
    /// Deterministic per-point seed, derived from the workload seed and
    /// `index` only — independent of thread count and execution order.
    /// The paper scenarios ignore it (they pin the paper's fixed seed
    /// for bit-identical figures), and the `custom` scenario derives its
    /// trace seed from [`workload_seed`] over the workload-defining
    /// parameters instead, so that scheme/topology axes stay comparable;
    /// this index seed remains for scenarios that want per-point
    /// workload variation.
    pub seed: u64,
    params: Vec<(String, ParamValue)>,
}

impl Point {
    /// Builds a point from `(name, value)` pairs.
    pub fn new(index: usize, seed: u64, params: Vec<(String, ParamValue)>) -> Point {
        Point {
            index,
            seed,
            params,
        }
    }

    /// All parameter bindings, in axis order.
    pub fn params(&self) -> &[(String, ParamValue)] {
        &self.params
    }

    /// Looks up a parameter by name.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// An integer parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is missing or not an integer.
    pub fn u64(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(ParamValue::U64(v)) => *v,
            other => panic!("param {name:?}: expected u64, got {other:?}"),
        }
    }

    /// A float parameter (integers widen losslessly where exact).
    ///
    /// # Panics
    ///
    /// Panics if the parameter is missing or not numeric.
    pub fn f64(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(ParamValue::F64(v)) => *v,
            Some(ParamValue::U64(v)) => *v as f64,
            other => panic!("param {name:?}: expected f64, got {other:?}"),
        }
    }

    /// A string parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is missing or not a string.
    pub fn str(&self, name: &str) -> &str {
        match self.get(name) {
            Some(ParamValue::Str(s)) => s,
            other => panic!("param {name:?}: expected string, got {other:?}"),
        }
    }

    /// The Table I model bound to this point's `model` parameter, scaled
    /// to the standard workload.
    ///
    /// # Panics
    ///
    /// Panics if `model` is missing or names no Table I model.
    pub fn model(&self) -> dlrm::ModelConfig {
        let name = self.str("model");
        crate::scaled(
            dlrm::ModelConfig::by_name(name)
                .unwrap_or_else(|| panic!("param \"model\": unknown Table I model {name:?}")),
        )
    }

    /// The scheme bound to this point's `scheme` parameter.
    ///
    /// # Panics
    ///
    /// Panics if `scheme` is missing or names no scheme.
    pub fn scheme(&self) -> baselines::Scheme {
        let label = self.str("scheme");
        baselines::Scheme::all()
            .into_iter()
            .find(|s| s.label().eq_ignore_ascii_case(label))
            .unwrap_or_else(|| panic!("param \"scheme\": unknown scheme {label:?}"))
    }
}

/// The raw result of running one grid point.
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Grid index of the point that produced this row.
    pub index: usize,
    /// The point's parameter bindings (echoed into the JSONL line).
    pub params: Vec<(String, ParamValue)>,
    /// Scenario-defined measurement payload.
    pub data: Value,
}

impl ResultRow {
    /// The parameter bindings as a JSON object, in axis order.
    pub fn params_json(&self) -> Value {
        let mut params = serde_json::Map::new();
        for (name, value) in &self.params {
            params.insert(name.clone(), value.to_json());
        }
        Value::Object(params)
    }

    /// The JSONL line for this row: `{"point": .., "params": {..},
    /// "data": ..}`.
    pub fn to_jsonl(&self) -> String {
        let line = json!({
            "point": self.index,
            "params": self.params_json(),
            "data": self.data,
        });
        serde_json::to_string(&line).expect("serializable")
    }
}

/// Enumerates the row-major cartesian product of `specs` (last axis
/// fastest), assigning indices and per-point seeds.
pub fn cartesian_points(specs: &[ParamSpec]) -> Vec<Point> {
    let mut points = vec![Vec::new()];
    for spec in specs {
        let mut next = Vec::with_capacity(points.len() * spec.values.len());
        for prefix in &points {
            for value in &spec.values {
                let mut p = prefix.clone();
                p.push((spec.name.to_string(), value.clone()));
                next.push(p);
            }
        }
        points = next;
    }
    points
        .into_iter()
        .enumerate()
        .map(|(i, params)| Point::new(i, point_seed(crate::SEED, i), params))
        .collect()
}

/// Derives a workload seed from the *workload-defining* parameters of a
/// point (model, trace family, …). Points that differ only in scheme or
/// topology knobs hash to the same seed and therefore simulate the
/// exact same trace — keeping sweep rows comparable across those axes —
/// while remaining deterministic and independent of grid shape, thread
/// count, and execution order.
pub fn workload_seed(base: u64, workload_params: &[&ParamValue]) -> u64 {
    // FNV-1a over the canonical spellings, splitmix-finished.
    let mut h: u64 = 0xcbf29ce484222325;
    for value in workload_params {
        for byte in value.to_string().as_bytes() {
            h = (h ^ u64::from(*byte)).wrapping_mul(0x100000001b3);
        }
        h = (h ^ 0x1f).wrapping_mul(0x100000001b3); // field separator
    }
    point_seed(base, h as usize)
}

/// Derives the deterministic seed of point `index` from `base` with a
/// splitmix64 finalizer: order- and thread-count-independent.
pub fn point_seed(base: u64, index: usize) -> u64 {
    let mut z = base
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add((index as u64).wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One declarative experiment: everything the runner and the `repro`
/// binary need to execute and report it.
pub trait Scenario: Sync {
    /// Stable experiment id (`fig12a`, `table1`, …).
    fn id(&self) -> &'static str;

    /// Human title, including the paper reference and headline numbers.
    fn title(&self) -> &'static str;

    /// The sweepable axes with their default (paper) values. The `sweep`
    /// subcommand overrides these value lists to build off-paper grids.
    fn params(&self) -> Vec<ParamSpec>;

    /// The default grid, in deterministic order. The default
    /// implementation is the cartesian product of [`Scenario::params`];
    /// scenarios with anchor points outside the product (baselines the
    /// summary normalizes against) override this.
    fn points(&self) -> Vec<Point> {
        cartesian_points(&self.params())
    }

    /// Simulates one point into its raw measurement payload. Must be
    /// pure: no shared mutable state, same output for the same point
    /// regardless of which worker thread runs it.
    fn run(&self, point: &Point) -> Value;

    /// Number of *independent* simulation units inside one point
    /// (default 1 = the point is opaque). A point may only be split
    /// where its units share no simulator state — e.g. a measured run
    /// and the baseline run it normalizes against — because each part
    /// may execute on a different worker. Bags inside one timing
    /// simulation are never independent (they contend on DRAM banks,
    /// links and caches), so a single simulation is always one part.
    fn parts(&self, point: &Point) -> usize {
        let _ = point;
        1
    }

    /// Runs one part of a split point (`part < self.parts(point)`).
    /// Like [`Scenario::run`], must be pure. The default forwards the
    /// sole part to `run`.
    fn run_part(&self, point: &Point, part: usize) -> Value {
        assert_eq!(part, 0, "scenario did not declare parts");
        self.run(point)
    }

    /// Folds the per-part values — always in part order, regardless of
    /// which workers ran them — into the point's row payload. Must
    /// produce exactly what [`Scenario::run`] produces for the point.
    fn merge_parts(&self, point: &Point, mut values: Vec<Value>) -> Value {
        let _ = point;
        assert_eq!(values.len(), 1, "scenario did not declare parts");
        values.pop().expect("one part")
    }

    /// Folds rows (in grid order) into the figure-shaped JSON.
    fn summarize(&self, rows: &[ResultRow]) -> Value;

    /// Whether `sweep` may pass parameters this scenario does not
    /// declare, forwarding them as [`SystemConfig
    /// knobs`](pifs_core::system::SystemConfig::apply_knob). Only the
    /// free-form `custom` scenario opts in.
    fn accepts_free_params(&self) -> bool {
        false
    }

    /// Whether `repro -- all` includes this scenario (everything that
    /// reproduces a paper table/figure; the free-form `custom` scenario
    /// is sweep-only).
    fn in_all(&self) -> bool {
        true
    }
}

/// A point decomposition for [`GridScenario`]s whose points contain
/// several independent simulations: `count` parts per point, each run by
/// `run`, folded by `merge` (in part order). The sweep runner schedules
/// parts as individual work-stealing tasks, so figures with fewer grid
/// points than worker threads still use every core.
pub struct PointParts {
    /// Parts in `point` (≥ 1).
    pub count: fn(&Point) -> usize,
    /// Runs part `part` of `point`.
    pub run: fn(&Point, usize) -> Value,
    /// Merges the part values (in part order) into the row payload.
    pub merge: fn(&Point, Vec<Value>) -> Value,
}

/// A [`Scenario`] assembled from plain function pointers — the concrete
/// shape every registry entry uses.
pub struct GridScenario {
    /// See [`Scenario::id`].
    pub id: &'static str,
    /// See [`Scenario::title`].
    pub title: &'static str,
    /// See [`Scenario::params`].
    pub params: fn() -> Vec<ParamSpec>,
    /// Overrides [`Scenario::points`] when `Some` (grids with anchor
    /// points the cartesian product cannot express).
    pub points: Option<fn() -> Vec<Point>>,
    /// See [`Scenario::run`].
    pub run: fn(&Point) -> Value,
    /// Optional sub-point decomposition (see [`PointParts`]).
    pub parts: Option<PointParts>,
    /// See [`Scenario::summarize`].
    pub summarize: fn(&[ResultRow]) -> Value,
    /// See [`Scenario::accepts_free_params`].
    pub free_params: bool,
    /// See [`Scenario::in_all`].
    pub in_all: bool,
}

impl Scenario for GridScenario {
    fn id(&self) -> &'static str {
        self.id
    }
    fn title(&self) -> &'static str {
        self.title
    }
    fn params(&self) -> Vec<ParamSpec> {
        (self.params)()
    }
    fn points(&self) -> Vec<Point> {
        match self.points {
            Some(f) => f(),
            None => cartesian_points(&(self.params)()),
        }
    }
    fn run(&self, point: &Point) -> Value {
        (self.run)(point)
    }
    fn parts(&self, point: &Point) -> usize {
        self.parts.as_ref().map_or(1, |p| (p.count)(point).max(1))
    }
    fn run_part(&self, point: &Point, part: usize) -> Value {
        match &self.parts {
            Some(p) => (p.run)(point, part),
            None => {
                assert_eq!(part, 0, "scenario did not declare parts");
                (self.run)(point)
            }
        }
    }
    fn merge_parts(&self, point: &Point, mut values: Vec<Value>) -> Value {
        match &self.parts {
            Some(p) => (p.merge)(point, values),
            None => values.pop().expect("one part"),
        }
    }
    fn summarize(&self, rows: &[ResultRow]) -> Value {
        (self.summarize)(rows)
    }
    fn accepts_free_params(&self) -> bool {
        self.free_params
    }
    fn in_all(&self) -> bool {
        self.in_all
    }
}

/// Every registered scenario, in the paper's presentation order (the
/// sweep-only `custom` scenario last).
pub fn registry() -> Vec<&'static dyn Scenario> {
    scenarios::all()
}

/// Looks up a scenario by id.
pub fn find(id: &str) -> Option<&'static dyn Scenario> {
    registry().into_iter().find(|s| s.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_enumeration_is_row_major_last_axis_fastest() {
        let specs = [
            ParamSpec::strs("a", ["x", "y"]),
            ParamSpec::u64s("b", [1, 2, 3]),
        ];
        let points = cartesian_points(&specs);
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].str("a"), "x");
        assert_eq!(points[0].u64("b"), 1);
        assert_eq!(points[1].u64("b"), 2);
        assert_eq!(points[3].str("a"), "y");
        assert_eq!(points[3].u64("b"), 1);
        assert_eq!(points[5].index, 5);
    }

    #[test]
    fn point_seeds_depend_only_on_base_and_index() {
        assert_eq!(point_seed(2024, 7), point_seed(2024, 7));
        assert_ne!(point_seed(2024, 7), point_seed(2024, 8));
        assert_ne!(point_seed(2024, 7), point_seed(2025, 7));
    }

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|s| s.id()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate scenario ids");
        for s in &reg {
            assert!(find(s.id()).is_some(), "id {:?} must resolve", s.id());
        }
        assert!(find("no_such_experiment").is_none());
    }

    #[test]
    fn paramvalue_parse_prefers_narrowest_type() {
        assert_eq!(ParamValue::parse("42"), ParamValue::U64(42));
        assert_eq!(ParamValue::parse("0.35"), ParamValue::F64(0.35));
        assert_eq!(ParamValue::parse("RMC1"), ParamValue::Str("RMC1".into()));
    }
}
