//! Bandwidth-limited link model.
//!
//! Models any serialized shared medium — a FlexBus x16 lane bundle, a DIMM
//! data bus, a switch egress port — as a resource that transmits one
//! payload at a time at a fixed byte rate plus a fixed propagation latency.
//! Transfers queue behind each other, which is how flex-bus congestion
//! (§III "risk of flex bus congestion under heavy memory traffic")
//! manifests in the simulation.

use crate::time::{SimDuration, SimTime};

/// A point-to-point link with finite bandwidth and fixed propagation delay.
///
/// Bandwidth is expressed in bytes per 1024 ns ("per µs-ish") so that
/// realistic rates (tens of GB/s) stay in integer arithmetic with sub-byte
/// rounding error.
///
/// # Examples
///
/// ```
/// use simkit::{BandwidthLink, SimTime};
///
/// // 64 GB/s ≈ 64 B/ns, no propagation delay.
/// let mut link = BandwidthLink::from_gbps(64, 0);
/// let done1 = link.transfer(SimTime::ZERO, 64);
/// let done2 = link.transfer(SimTime::ZERO, 64);
/// assert_eq!(done1.as_ns(), 1);
/// assert_eq!(done2.as_ns(), 2); // serialized behind the first transfer
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthLink {
    /// Bytes transferred per 1024 ns.
    bytes_per_1024ns: u64,
    /// Fixed propagation latency added to every transfer.
    propagation: SimDuration,
    /// Time at which the medium becomes free.
    busy_until: SimTime,
    /// Total bytes ever pushed through the link.
    total_bytes: u64,
    /// Total time the medium spent busy.
    busy_time: SimDuration,
}

impl BandwidthLink {
    /// Creates a link carrying `gb_per_s` gigabytes per second with
    /// `propagation_ns` nanoseconds of fixed latency.
    ///
    /// # Panics
    ///
    /// Panics if `gb_per_s` is zero.
    pub fn from_gbps(gb_per_s: u64, propagation_ns: u64) -> Self {
        assert!(gb_per_s > 0, "link bandwidth must be positive");
        // 1 GB/s = 1 byte/ns ⇒ 1024 bytes per 1024 ns.
        BandwidthLink {
            bytes_per_1024ns: gb_per_s * 1024,
            propagation: SimDuration::from_ns(propagation_ns),
            busy_until: SimTime::ZERO,
            total_bytes: 0,
            busy_time: SimDuration::ZERO,
        }
    }

    /// Serialization time for a payload of `bytes` on this link.
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        // ceil(bytes * 1024 / bytes_per_1024ns) nanoseconds.
        SimDuration::from_ns((bytes * 1024).div_ceil(self.bytes_per_1024ns))
    }

    /// Enqueues a transfer of `bytes` arriving at the link at `now`;
    /// returns the time the last byte (plus propagation) reaches the far
    /// end. Transfers are serviced in call order.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.busy_until);
        let ser = self.serialization_delay(bytes);
        self.busy_until = start + ser;
        self.total_bytes += bytes;
        self.busy_time += ser;
        self.busy_until + self.propagation
    }

    /// Arbitrates a whole batch of equal-sized transfers in one call:
    /// flit `i` arrives at the link at `first + i × gap`, and its
    /// delivery time is appended to `out` (which is cleared first).
    ///
    /// The link state and every returned instant are identical to `n`
    /// sequential [`transfer`](Self::transfer) calls — the batch claims
    /// the medium once per issue tick instead of re-entering arbitration
    /// per flit, which keeps the serialization cursor in a register
    /// across the whole burst.
    pub fn transfer_batch_into(
        &mut self,
        first: SimTime,
        gap: SimDuration,
        bytes: u64,
        n: usize,
        out: &mut Vec<SimTime>,
    ) {
        out.clear();
        out.reserve(n);
        let ser = self.serialization_delay(bytes);
        let mut arrive = first;
        let mut busy = self.busy_until;
        for _ in 0..n {
            let start = arrive.max(busy);
            busy = start + ser;
            out.push(busy + self.propagation);
            arrive += gap;
        }
        if n > 0 {
            self.busy_until = busy;
            self.total_bytes += bytes * n as u64;
            self.busy_time += SimDuration::from_ns(ser.as_ns() * n as u64);
        }
    }

    /// Earliest time a new transfer submitted now could begin.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Fixed propagation latency of the link.
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    /// Total bytes pushed through the link so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Fraction of `[0, horizon]` the medium spent transmitting.
    pub fn utilization(&self, horizon: SimDuration) -> f64 {
        if horizon.as_ns() == 0 {
            0.0
        } else {
            self.busy_time.as_ns() as f64 / horizon.as_ns() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_matches_rate() {
        let link = BandwidthLink::from_gbps(64, 0);
        // 64 GB/s = 64 B/ns ⇒ 6400 bytes take 100 ns.
        assert_eq!(link.serialization_delay(6400).as_ns(), 100);
    }

    #[test]
    fn serialization_rounds_up() {
        let link = BandwidthLink::from_gbps(64, 0);
        assert_eq!(link.serialization_delay(1).as_ns(), 1);
        assert_eq!(link.serialization_delay(65).as_ns(), 2);
    }

    #[test]
    fn transfers_queue_behind_each_other() {
        let mut link = BandwidthLink::from_gbps(1, 0); // 1 B/ns
        let a = link.transfer(SimTime::ZERO, 100);
        let b = link.transfer(SimTime::ZERO, 100);
        assert_eq!(a.as_ns(), 100);
        assert_eq!(b.as_ns(), 200);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut link = BandwidthLink::from_gbps(1, 0);
        let a = link.transfer(SimTime::ZERO, 10);
        assert_eq!(a.as_ns(), 10);
        // Arrives long after the link went idle.
        let b = link.transfer(SimTime::from_ns(1000), 10);
        assert_eq!(b.as_ns(), 1010);
    }

    #[test]
    fn propagation_adds_latency_but_not_occupancy() {
        let mut link = BandwidthLink::from_gbps(1, 50);
        let a = link.transfer(SimTime::ZERO, 10);
        assert_eq!(a.as_ns(), 60); // 10 ns serialize + 50 ns fly time
                                   // Next transfer can start as soon as serialization ends (pipelined).
        let b = link.transfer(SimTime::ZERO, 10);
        assert_eq!(b.as_ns(), 70);
    }

    #[test]
    fn batched_arbitration_matches_sequential_transfers() {
        // The batch path must be indistinguishable from per-flit calls:
        // same delivery times, same busy window, same accounting. Use a
        // gap smaller than the serialization time so flits queue.
        let mk = || {
            let mut l = BandwidthLink::from_gbps(1, 7); // 1 B/ns + 7 ns fly
            l.transfer(SimTime::ZERO, 25); // pre-existing occupancy
            l
        };
        let mut seq = mk();
        let mut expect = Vec::new();
        for i in 0..10u64 {
            expect.push(seq.transfer(SimTime::from_ns(10 + i * 3), 16));
        }
        let mut batch = mk();
        let mut got = Vec::new();
        batch.transfer_batch_into(
            SimTime::from_ns(10),
            SimDuration::from_ns(3),
            16,
            10,
            &mut got,
        );
        assert_eq!(got, expect);
        assert_eq!(batch.free_at(), seq.free_at());
        assert_eq!(batch.total_bytes(), seq.total_bytes());
        let h = SimDuration::from_ns(1000);
        assert_eq!(batch.utilization(h), seq.utilization(h));
        // Empty batches change nothing.
        let before = batch.free_at();
        batch.transfer_batch_into(SimTime::ZERO, SimDuration::ZERO, 16, 0, &mut got);
        assert!(got.is_empty());
        assert_eq!(batch.free_at(), before);
    }

    #[test]
    fn accounting_tracks_bytes_and_utilization() {
        let mut link = BandwidthLink::from_gbps(1, 0);
        link.transfer(SimTime::ZERO, 25);
        link.transfer(SimTime::ZERO, 75);
        assert_eq!(link.total_bytes(), 100);
        let util = link.utilization(SimDuration::from_ns(200));
        assert!((util - 0.5).abs() < 1e-9, "utilization was {util}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = BandwidthLink::from_gbps(0, 0);
    }
}
