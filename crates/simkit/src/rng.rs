//! Deterministic random numbers for reproducible experiments.
//!
//! Every trace generator and placement policy in this workspace takes an
//! explicit seed so that `cargo run -p pifs-bench --bin repro -- fig12a`
//! prints the same rows on every machine. `DetRng` is a SplitMix64
//! generator: tiny, fast, full 64-bit period, and — unlike `rand`'s default
//! `ThreadRng` — guaranteed stable across platforms and versions.
//!
//! The `rand` crate is still used where distribution plumbing helps
//! (`tracegen` wires `DetRng` into `rand` via [`rand::RngCore`]).

use rand::RngCore;

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use simkit::DetRng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed ⇒ same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from `seed`. Different seeds give statistically
    /// independent streams.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's multiply-shift rejection-free approximation is fine
        // here: the simulation does not need cryptographic uniformity and
        // bound ≪ 2^64 keeps bias negligible.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Spawns an independent child generator; used to give each simulated
    /// host or table its own stream without correlation.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// The generator's cursor: the full internal state, as one word.
    /// Together with [`DetRng::from_state`] this is the checkpoint API —
    /// a restored generator replays the exact continuation stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a [`DetRng::state`] snapshot.
    ///
    /// Unlike [`DetRng::new`], which treats its argument as a seed, this
    /// resumes mid-stream: `from_state(g.state())` continues exactly
    /// where `g` left off.
    pub fn from_state(state: u64) -> DetRng {
        DetRng { state }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (DetRng::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        DetRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = DetRng::next_u64(self).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_matches_golden_values_across_runs() {
        // Cross-run (and cross-machine) determinism: the first outputs
        // of seed 2024 are pinned, so any change to the generator's
        // algorithm — which would silently re-time every experiment in
        // the workspace — fails loudly here.
        let mut rng = DetRng::new(2024);
        let observed: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            observed,
            [
                0x9F6D_8FEC_F88E_ECD5,
                0x18E4_30BB_1511_F2D2,
                0x4C6F_7CBF_58DB_A57F,
                0x1DBE_69E0_AE9B_B859,
            ]
        );
        // Restarting from the same seed replays the identical prefix.
        let mut replay = DetRng::new(2024);
        assert_eq!(replay.next_u64(), observed[0]);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(99);
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range_and_covers_spread() {
        let mut rng = DetRng::new(4);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi, "10k draws should cover both tails");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = DetRng::new(31);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[rng.below(8) as usize] += 1;
        }
        let expect = n / 8;
        for (i, &c) in buckets.iter().enumerate() {
            let dev = (c as i64 - expect as i64).abs();
            assert!(dev < expect as i64 / 10, "bucket {i} count {c}");
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = DetRng::new(5);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut g = DetRng::new(2024);
        let _ = g.next_u64();
        let _ = g.next_u64();
        let snapshot = g.state();
        let expect: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        let mut resumed = DetRng::from_state(snapshot);
        let got: Vec<u64> = (0..8).map(|_| resumed.next_u64()).collect();
        assert_eq!(got, expect, "restored cursor must replay the continuation");
        // And the restored generator is a full equal of the original.
        assert_eq!(resumed, g);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = DetRng::new(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
