//! A fast, deterministic hasher for simulation-internal maps.
//!
//! The std `HashMap` defaults to SipHash-1-3, whose per-lookup cost
//! dominates several simulator hot paths (page-hotness tracking, the
//! IIR's address matching, per-epoch device/page counts). Those maps key
//! on small integers the workload controls, need no DoS hardening, and —
//! crucially — never let iteration order leak into results (every
//! consumer sorts or folds order-independently), so swapping the hasher
//! is an exact-equivalence optimization.
//!
//! The function is the Fx/FireFox multiply-xor fold: one multiply and a
//! rotate per word. It is seed-free and therefore identical across runs,
//! threads and platforms of the same word size.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (the rustc/Firefox "Fx" function).
///
/// # Examples
///
/// ```
/// use simkit::hash::FastMap;
///
/// let mut m: FastMap<u64, &str> = FastMap::default();
/// m.insert(7, "seven");
/// assert_eq!(m[&7], "seven");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_keys_hash_identically() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_keys_disperse() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(k);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small dense keys");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for k in 0..1000u64 {
            m.insert(k, k * 2);
        }
        for k in 0..1000u64 {
            assert_eq!(m[&k], k * 2);
        }
    }

    #[test]
    fn byte_writes_cover_partial_words() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Same padded word, same fold — acceptable for the integer keys
        // this hasher serves; documented, not relied upon.
        let _ = (a.finish(), b.finish());
    }
}
