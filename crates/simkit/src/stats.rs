//! Measurement primitives shared by every experiment harness.
//!
//! The paper reports min-max-normalized latency (Fig 12), bandwidth
//! contributions (Fig 6), access-frequency standard deviations (Fig 13(b))
//! and cache hit ratios (Fig 15). The types here collect the raw numbers
//! those plots are derived from.

use std::cell::Cell;
use std::fmt;

use crate::time::{SimDuration, SimTime};

thread_local! {
    /// Monotone per-thread count of simulated events (see [`record_events`]).
    static EVENT_TALLY: Cell<u64> = const { Cell::new(0) };
}

/// Records `n` simulated events on this thread's tally.
///
/// "Event" means one unit of timed simulation work — a DRAM line access,
/// a link transfer, a switch transit. The tally is thread-local (a plain
/// `Cell` increment, so hot paths pay ~1 ns), monotone, and read back
/// with [`events_recorded`]; harnesses subtract before/after snapshots
/// around a run to report an events/second throughput figure.
#[inline]
pub fn record_events(n: u64) {
    EVENT_TALLY.with(|t| t.set(t.get().wrapping_add(n)));
}

/// This thread's cumulative event tally (see [`record_events`]).
pub fn events_recorded() -> u64 {
    EVENT_TALLY.with(Cell::get)
}

/// Process-wide allocation counters behind [`CountingAlloc`]. Plain
/// atomics (not thread-locals): a global allocator runs before TLS is
/// usable and on every thread, so these must be `static` and lock-free.
static ALLOC_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static ALLOC_BYTES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static LIVE_BYTES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static PEAK_LIVE_BYTES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A snapshot of the process's heap traffic under [`CountingAlloc`].
/// All fields read zero unless a binary installs the counting allocator
/// (see [`CountingAlloc`] for the one-liner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Cumulative `alloc`/`realloc` calls.
    pub calls: u64,
    /// Cumulative bytes requested across those calls.
    pub allocated_bytes: u64,
    /// Bytes currently live (allocated minus freed).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start (or the last
    /// [`reset_alloc_peak`]).
    pub peak_live_bytes: u64,
}

/// Reads the current [`AllocStats`] snapshot.
pub fn alloc_stats() -> AllocStats {
    use std::sync::atomic::Ordering::Relaxed;
    AllocStats {
        calls: ALLOC_CALLS.load(Relaxed),
        allocated_bytes: ALLOC_BYTES.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Relaxed),
    }
}

/// Resets the peak-live-bytes high-water mark to the current live size,
/// so a harness can measure the peak of one phase in isolation.
pub fn reset_alloc_peak() {
    use std::sync::atomic::Ordering::Relaxed;
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Relaxed), Relaxed);
}

/// A counting wrapper around the system allocator, for bounded-memory
/// guard tests: cumulative call/byte tallies plus a live-bytes
/// high-water mark, all readable through [`alloc_stats`].
///
/// Install it per test binary (a global allocator is process-wide, so
/// this belongs in dedicated integration tests, not the library):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: simkit::stats::CountingAlloc = simkit::stats::CountingAlloc::new();
/// ```
///
/// Counter updates are `Relaxed` atomics — a few nanoseconds per
/// allocation, and exact totals even under concurrency (the peak can
/// lag a racing allocation by one update, which is noise at the
/// megabyte scales the guard tests assert on).
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Creates the wrapper (const, so it can be a `static`).
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }

    fn on_alloc(size: usize) {
        use std::sync::atomic::Ordering::Relaxed;
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(size as u64, Relaxed);
        let live = LIVE_BYTES.fetch_add(size as u64, Relaxed) + size as u64;
        PEAK_LIVE_BYTES.fetch_max(live, Relaxed);
    }

    fn on_dealloc(size: usize) {
        LIVE_BYTES.fetch_sub(size as u64, std::sync::atomic::Ordering::Relaxed);
    }
}

// SAFETY: defers every allocation to `std::alloc::System` unchanged;
// the wrapper only updates atomic tallies, which allocate nothing.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = unsafe { std::alloc::System.alloc(layout) };
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) };
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { std::alloc::System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }
}

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use simkit::Counter;
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.incr();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A log2-bucketed latency histogram with exact mean tracking.
///
/// Buckets hold values in `[2^i, 2^(i+1))` nanoseconds; bucket 0 holds 0–1.
///
/// # Examples
///
/// ```
/// use simkit::{Histogram, SimDuration};
/// let mut h = Histogram::new();
/// h.record(SimDuration::from_ns(100));
/// h.record(SimDuration::from_ns(300));
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean_ns(), 200.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_ns();
        let idx = (64 - ns.leading_zeros()).saturating_sub(1).min(63) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_ns(self.min_ns))
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_ns(self.max_ns))
    }

    /// Approximate p-th percentile (0.0–1.0) from bucket boundaries.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                // Upper edge of the bucket is a conservative estimate.
                return SimDuration::from_ns(if i >= 63 { u64::MAX } else { (2u64 << i) - 1 });
            }
        }
        SimDuration::from_ns(self.max_ns)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Sub-buckets per octave in [`LatencyHist`] (as a power of two).
const LAT_SUB_BITS: u32 = 5;
/// Sub-buckets per octave in [`LatencyHist`].
const LAT_SUB: u64 = 1 << LAT_SUB_BITS;

/// A streaming log-bucketed latency histogram with mergeable buckets.
///
/// Values are nanoseconds. Each power-of-two octave `[2^e, 2^(e+1))` is
/// split into 32 linear sub-buckets, so every recorded value lands in a
/// bucket at most `1/32` (~3.1 %) wide relative to its magnitude; values
/// below 32 ns get exact single-value buckets. [`Self::percentile`]
/// returns the upper edge of the bucket holding the requested rank —
/// a conservative estimate never below the exact order statistic and
/// never more than one bucket width above it (differentially tested
/// against a sorted-`Vec` reference).
///
/// Buckets are plain `u64` counts, so [`Self::merge`] — element-wise
/// addition plus min/max/sum folds — is exact, commutative and
/// associative: merging per-part histograms in *any* order yields the
/// same state as recording every sample into one histogram. That is the
/// property that lets the multi-threaded sweep runner combine sub-point
/// histograms without breaking byte-identical output across thread
/// counts.
///
/// # Examples
///
/// ```
/// use simkit::{LatencyHist, SimDuration};
/// let mut h = LatencyHist::new();
/// for ns in [10, 20, 1000] {
///     h.record(SimDuration::from_ns(ns));
/// }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.percentile(0.5), 20); // small values are exact
/// assert!(h.percentile(0.99) >= 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyHist {
    /// Bucket counts, indexed by [`lat_bucket`]; grown on demand.
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

/// Bucket index of `ns`: exact below [`LAT_SUB`], then 32 linear
/// sub-buckets per power-of-two octave.
#[inline]
fn lat_bucket(ns: u64) -> usize {
    if ns < LAT_SUB {
        return ns as usize;
    }
    let e = 63 - ns.leading_zeros(); // 2^e <= ns < 2^(e+1)
    let group = (e - LAT_SUB_BITS + 1) as u64;
    let sub = (ns >> (e - LAT_SUB_BITS)) & (LAT_SUB - 1);
    (group * LAT_SUB + sub) as usize
}

/// Inclusive upper edge of bucket `idx` (inverse of [`lat_bucket`]).
#[inline]
fn lat_bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LAT_SUB {
        return idx;
    }
    let group = idx / LAT_SUB;
    let sub = idx % LAT_SUB;
    let e = group as u32 + LAT_SUB_BITS - 1;
    let width = 1u64 << (e - LAT_SUB_BITS);
    // `- 1` before the sub-bucket term: the top bucket's edge is
    // exactly u64::MAX, so summing first would overflow.
    (1u64 << e) - 1 + (sub + 1) * width
}

impl LatencyHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.record_ns(d.as_ns());
    }

    /// Records one latency sample given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let idx = lat_bucket(ns);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = if self.count == 1 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds `other` into `self`. Exact: the result equals a histogram
    /// that recorded both sample streams, regardless of merge order.
    pub fn merge(&mut self, other: &LatencyHist) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample in nanoseconds, or 0 when empty (exact).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample in nanoseconds (exact; 0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The p-th percentile (0.0–1.0) in nanoseconds: the upper edge of
    /// the bucket holding the rank-`ceil(p·count)` sample, clamped to
    /// the exact maximum. Never below the exact order statistic and at
    /// most ~3.1 % above it; 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return lat_bucket_upper(idx).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Tracks total bytes moved over a horizon and yields average bandwidth.
///
/// # Examples
///
/// ```
/// use simkit::{BandwidthMeter, SimTime};
/// let mut m = BandwidthMeter::new();
/// m.record(SimTime::from_ns(10), 640);
/// m.record(SimTime::from_ns(20), 640);
/// assert_eq!(m.total_bytes(), 1280);
/// assert!((m.average_gbps(SimTime::from_ns(20)) - 64.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BandwidthMeter {
    total_bytes: u64,
    last_event: SimTime,
}

impl BandwidthMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` delivered at time `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        self.total_bytes += bytes;
        self.last_event = self.last_event.max(at);
    }

    /// Total bytes observed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Time of the last recorded delivery.
    pub fn last_event(&self) -> SimTime {
        self.last_event
    }

    /// Average bandwidth in GB/s over `[0, horizon]`.
    pub fn average_gbps(&self, horizon: SimTime) -> f64 {
        if horizon.as_ns() == 0 {
            0.0
        } else {
            self.total_bytes as f64 / horizon.as_ns() as f64
        }
    }
}

/// Descriptive statistics over a slice of `f64` observations.
///
/// Used for Fig 13(b)'s access-frequency standard deviation.
///
/// # Examples
///
/// ```
/// use simkit::Summary;
/// let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert!((s.mean - 5.0).abs() < 1e-12);
/// assert!((s.std_dev - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Summary {
            mean,
            std_dev: var.sqrt(),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            n: xs.len(),
        }
    }
}

/// Min-max normalizes `xs` into `[0, 1]`, the scheme the paper's Fig 12
/// caption describes ("The plot uses min-max normalization").
///
/// A constant series normalizes to all-ones (everything is simultaneously
/// the min and the max; 1.0 keeps "higher = worse latency" readable).
pub fn min_max_normalize(xs: &[f64]) -> Vec<f64> {
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if xs.is_empty() || (hi - lo).abs() < f64::EPSILON {
        return vec![1.0; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / (hi - lo)).collect()
}

/// Normalizes `xs` by its maximum, keeping relative magnitudes (used where
/// the paper normalizes to a baseline's value rather than min-max).
pub fn max_normalize(xs: &[f64]) -> Vec<f64> {
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if xs.is_empty() || hi <= 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| x / hi).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact p-th order statistic matching [`LatencyHist::percentile`]'s
    /// rank convention: the `ceil(p·n)`-th smallest sample (1-based).
    fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
        let n = sorted.len() as u64;
        let rank = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    #[test]
    fn latency_hist_empty_is_sane() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn latency_hist_small_values_are_exact() {
        let mut h = LatencyHist::new();
        for ns in [0u64, 1, 5, 31] {
            h.record_ns(ns);
        }
        assert_eq!(h.percentile(0.25), 0);
        assert_eq!(h.percentile(0.5), 1);
        assert_eq!(h.percentile(0.75), 5);
        assert_eq!(h.percentile(1.0), 31);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 31);
    }

    #[test]
    fn latency_bucket_edges_are_consistent() {
        // Every bucket's upper edge must map back into that bucket, and
        // the edge+1 into the next — so the bucket partition is exact.
        for idx in 0..lat_bucket(1u64 << 40) {
            let hi = lat_bucket_upper(idx);
            assert_eq!(lat_bucket(hi), idx, "upper edge of bucket {idx}");
            assert_eq!(lat_bucket(hi + 1), idx + 1, "first value past bucket {idx}");
        }
    }

    #[test]
    fn latency_hist_handles_extreme_samples() {
        // The top octave's upper edge is exactly u64::MAX; the edge
        // arithmetic must not overflow (debug builds would panic).
        let mut h = LatencyHist::new();
        h.record_ns(u64::MAX);
        h.record_ns(u64::MAX - 1);
        h.record_ns(1u64 << 63);
        assert_eq!(h.max_ns(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert!(h.percentile(0.01) >= 1u64 << 63);
        assert_eq!(lat_bucket_upper(lat_bucket(u64::MAX)), u64::MAX);
    }

    #[test]
    fn latency_hist_percentiles_are_monotone() {
        let mut h = LatencyHist::new();
        let mut rng = crate::DetRng::new(9);
        for _ in 0..10_000 {
            h.record_ns(rng.below(1 << 22));
        }
        let mut last = 0;
        for p in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let v = h.percentile(p);
            assert!(v >= last, "percentile({p}) regressed: {v} < {last}");
            last = v;
        }
        assert_eq!(h.percentile(1.0), h.max_ns());
    }

    #[test]
    fn latency_hist_merge_of_empty_is_identity() {
        let mut a = LatencyHist::new();
        a.record_ns(100);
        let b = LatencyHist::new();
        let before = a.clone();
        a.merge(&b);
        assert_eq!(a, before);
        let mut c = LatencyHist::new();
        c.merge(&before);
        assert_eq!(c, before);
    }

    proptest! {
        /// Differential check against the exact sorted-`Vec` reference:
        /// the histogram estimate is never below the true order
        /// statistic and at most one sub-bucket (~3.1 %) above it.
        /// Samples mix magnitudes, duplicates and zeros.
        #[test]
        fn prop_latency_percentiles_track_sorted_reference(
            small in proptest::collection::vec(0u64..64, 1..64),
            large in proptest::collection::vec(0u64..10_000_000, 0..10_000,),
        ) {
            let mut samples = small;
            samples.extend(large);
            let mut h = LatencyHist::new();
            for &s in &samples {
                h.record_ns(s);
            }
            let mut sorted = samples;
            sorted.sort_unstable();
            for p in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
                let exact = exact_percentile(&sorted, p);
                let est = h.percentile(p);
                prop_assert!(est >= exact, "p{p}: est {est} < exact {exact}");
                prop_assert!(
                    est <= exact + exact / LAT_SUB + 1,
                    "p{p}: est {est} too far above exact {exact}"
                );
            }
            prop_assert_eq!(h.count(), sorted.len() as u64);
            prop_assert_eq!(h.min_ns(), sorted[0]);
            prop_assert_eq!(h.max_ns(), *sorted.last().expect("non-empty"));
        }

        /// Bucket-boundary values (2^k-1, 2^k, 2^k+1) — the edges where
        /// an off-by-one in the index math would misplace a sample.
        #[test]
        fn prop_latency_percentiles_exact_at_bucket_boundaries(
            exps in proptest::collection::vec(1u32..40, 1..200),
            offsets in proptest::collection::vec(0u64..3, 200..201),
        ) {
            let samples: Vec<u64> = exps
                .iter()
                .zip(&offsets)
                .map(|(&e, &off)| (1u64 << e) + off - 1)
                .collect();
            let mut h = LatencyHist::new();
            for &s in &samples {
                h.record_ns(s);
            }
            let mut sorted = samples;
            sorted.sort_unstable();
            for p in [0.1, 0.5, 0.99, 1.0] {
                let exact = exact_percentile(&sorted, p);
                let est = h.percentile(p);
                prop_assert!(est >= exact);
                prop_assert!(est <= exact + exact / LAT_SUB + 1);
            }
        }

        /// Splitting a sample stream into two histograms and merging
        /// them must equal the single histogram that saw everything —
        /// bucket-for-bucket, so every derived statistic agrees too.
        #[test]
        fn prop_latency_merged_equals_single(
            samples in proptest::collection::vec(0u64..5_000_000, 1..2_000),
            split in 0usize..2_000,
        ) {
            let split = split.min(samples.len());
            let mut whole = LatencyHist::new();
            let mut a = LatencyHist::new();
            let mut b = LatencyHist::new();
            for (i, &s) in samples.iter().enumerate() {
                whole.record_ns(s);
                if i < split { a.record_ns(s) } else { b.record_ns(s) }
            }
            // Merge in both orders: the fold is commutative.
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            prop_assert_eq!(ab.count(), whole.count());
            prop_assert_eq!(ab.sum_ns, whole.sum_ns);
            prop_assert_eq!(ab.min_ns(), whole.min_ns());
            prop_assert_eq!(ab.max_ns(), whole.max_ns());
            for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
                prop_assert_eq!(ab.percentile(p), whole.percentile(p));
                prop_assert_eq!(ba.percentile(p), whole.percentile(p));
            }
            prop_assert_eq!(&ab.buckets, &whole.buckets);
        }
    }

    #[test]
    fn histogram_tracks_mean_min_max() {
        let mut h = Histogram::new();
        for ns in [10u64, 20, 30] {
            h.record(SimDuration::from_ns(ns));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean_ns(), 20.0);
        assert_eq!(h.min().unwrap().as_ns(), 10);
        assert_eq!(h.max().unwrap().as_ns(), 30);
    }

    #[test]
    fn histogram_empty_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert_eq!(h.percentile(0.99), SimDuration::ZERO);
    }

    #[test]
    fn histogram_percentile_is_monotone() {
        let mut h = Histogram::new();
        for ns in 1..=1024u64 {
            h.record(SimDuration::from_ns(ns));
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99);
        assert!(p99.as_ns() >= 1000);
    }

    #[test]
    fn bandwidth_meter_accumulates() {
        let mut m = BandwidthMeter::new();
        m.record(SimTime::from_ns(5), 100);
        m.record(SimTime::from_ns(3), 50);
        assert_eq!(m.total_bytes(), 150);
        assert_eq!(m.last_event(), SimTime::from_ns(5));
    }

    #[test]
    fn min_max_normalize_maps_extremes() {
        let v = min_max_normalize(&[2.0, 4.0, 6.0]);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn min_max_normalize_constant_series() {
        assert_eq!(min_max_normalize(&[3.0, 3.0]), vec![1.0, 1.0]);
        assert!(min_max_normalize(&[]).is_empty());
    }

    #[test]
    fn max_normalize_keeps_ratios() {
        let v = max_normalize(&[1.0, 2.0, 4.0]);
        assert_eq!(v, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn summary_handles_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }
}
