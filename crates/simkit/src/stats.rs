//! Measurement primitives shared by every experiment harness.
//!
//! The paper reports min-max-normalized latency (Fig 12), bandwidth
//! contributions (Fig 6), access-frequency standard deviations (Fig 13(b))
//! and cache hit ratios (Fig 15). The types here collect the raw numbers
//! those plots are derived from.

use std::cell::Cell;
use std::fmt;

use crate::time::{SimDuration, SimTime};

thread_local! {
    /// Monotone per-thread count of simulated events (see [`record_events`]).
    static EVENT_TALLY: Cell<u64> = const { Cell::new(0) };
}

/// Records `n` simulated events on this thread's tally.
///
/// "Event" means one unit of timed simulation work — a DRAM line access,
/// a link transfer, a switch transit. The tally is thread-local (a plain
/// `Cell` increment, so hot paths pay ~1 ns), monotone, and read back
/// with [`events_recorded`]; harnesses subtract before/after snapshots
/// around a run to report an events/second throughput figure.
#[inline]
pub fn record_events(n: u64) {
    EVENT_TALLY.with(|t| t.set(t.get().wrapping_add(n)));
}

/// This thread's cumulative event tally (see [`record_events`]).
pub fn events_recorded() -> u64 {
    EVENT_TALLY.with(Cell::get)
}

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use simkit::Counter;
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.incr();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A log2-bucketed latency histogram with exact mean tracking.
///
/// Buckets hold values in `[2^i, 2^(i+1))` nanoseconds; bucket 0 holds 0–1.
///
/// # Examples
///
/// ```
/// use simkit::{Histogram, SimDuration};
/// let mut h = Histogram::new();
/// h.record(SimDuration::from_ns(100));
/// h.record(SimDuration::from_ns(300));
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean_ns(), 200.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_ns();
        let idx = (64 - ns.leading_zeros()).saturating_sub(1).min(63) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_ns(self.min_ns))
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_ns(self.max_ns))
    }

    /// Approximate p-th percentile (0.0–1.0) from bucket boundaries.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                // Upper edge of the bucket is a conservative estimate.
                return SimDuration::from_ns(if i >= 63 { u64::MAX } else { (2u64 << i) - 1 });
            }
        }
        SimDuration::from_ns(self.max_ns)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Tracks total bytes moved over a horizon and yields average bandwidth.
///
/// # Examples
///
/// ```
/// use simkit::{BandwidthMeter, SimTime};
/// let mut m = BandwidthMeter::new();
/// m.record(SimTime::from_ns(10), 640);
/// m.record(SimTime::from_ns(20), 640);
/// assert_eq!(m.total_bytes(), 1280);
/// assert!((m.average_gbps(SimTime::from_ns(20)) - 64.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BandwidthMeter {
    total_bytes: u64,
    last_event: SimTime,
}

impl BandwidthMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` delivered at time `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        self.total_bytes += bytes;
        self.last_event = self.last_event.max(at);
    }

    /// Total bytes observed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Time of the last recorded delivery.
    pub fn last_event(&self) -> SimTime {
        self.last_event
    }

    /// Average bandwidth in GB/s over `[0, horizon]`.
    pub fn average_gbps(&self, horizon: SimTime) -> f64 {
        if horizon.as_ns() == 0 {
            0.0
        } else {
            self.total_bytes as f64 / horizon.as_ns() as f64
        }
    }
}

/// Descriptive statistics over a slice of `f64` observations.
///
/// Used for Fig 13(b)'s access-frequency standard deviation.
///
/// # Examples
///
/// ```
/// use simkit::Summary;
/// let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert!((s.mean - 5.0).abs() < 1e-12);
/// assert!((s.std_dev - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Summary {
            mean,
            std_dev: var.sqrt(),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            n: xs.len(),
        }
    }
}

/// Min-max normalizes `xs` into `[0, 1]`, the scheme the paper's Fig 12
/// caption describes ("The plot uses min-max normalization").
///
/// A constant series normalizes to all-ones (everything is simultaneously
/// the min and the max; 1.0 keeps "higher = worse latency" readable).
pub fn min_max_normalize(xs: &[f64]) -> Vec<f64> {
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if xs.is_empty() || (hi - lo).abs() < f64::EPSILON {
        return vec![1.0; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / (hi - lo)).collect()
}

/// Normalizes `xs` by its maximum, keeping relative magnitudes (used where
/// the paper normalizes to a baseline's value rather than min-max).
pub fn max_normalize(xs: &[f64]) -> Vec<f64> {
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if xs.is_empty() || hi <= 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| x / hi).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_mean_min_max() {
        let mut h = Histogram::new();
        for ns in [10u64, 20, 30] {
            h.record(SimDuration::from_ns(ns));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean_ns(), 20.0);
        assert_eq!(h.min().unwrap().as_ns(), 10);
        assert_eq!(h.max().unwrap().as_ns(), 30);
    }

    #[test]
    fn histogram_empty_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert_eq!(h.percentile(0.99), SimDuration::ZERO);
    }

    #[test]
    fn histogram_percentile_is_monotone() {
        let mut h = Histogram::new();
        for ns in 1..=1024u64 {
            h.record(SimDuration::from_ns(ns));
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99);
        assert!(p99.as_ns() >= 1000);
    }

    #[test]
    fn bandwidth_meter_accumulates() {
        let mut m = BandwidthMeter::new();
        m.record(SimTime::from_ns(5), 100);
        m.record(SimTime::from_ns(3), 50);
        assert_eq!(m.total_bytes(), 150);
        assert_eq!(m.last_event(), SimTime::from_ns(5));
    }

    #[test]
    fn min_max_normalize_maps_extremes() {
        let v = min_max_normalize(&[2.0, 4.0, 6.0]);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn min_max_normalize_constant_series() {
        assert_eq!(min_max_normalize(&[3.0, 3.0]), vec![1.0, 1.0]);
        assert!(min_max_normalize(&[]).is_empty());
    }

    #[test]
    fn max_normalize_keeps_ratios() {
        let v = max_normalize(&[1.0, 2.0, 4.0]);
        assert_eq!(v, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn summary_handles_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }
}
