//! Simulated time, in integer nanoseconds.
//!
//! The paper's simulator runs its top module at one nanosecond per clock
//! tick (§VI-A: "a top-module clock tick period of one ns/clk"), so a
//! `u64` nanosecond counter is both exact and sufficient for runs lasting
//! centuries of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use simkit::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_ns(250);
/// assert_eq!(t.as_ns(), 250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use simkit::SimDuration;
/// let d = SimDuration::from_ns(100) + SimDuration::from_ns(50);
/// assert_eq!(d.as_ns(), 150);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after the origin.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the instant as nanoseconds since the origin.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the duration from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "since() called with a later instant: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the duration from `earlier` to `self`, or zero if `earlier`
    /// is after `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from a picosecond count, rounding up to the next
    /// whole nanosecond (DRAM datasheets quote tCK in picoseconds).
    pub const fn from_ps_ceil(ps: u64) -> Self {
        SimDuration(ps.div_ceil(1000))
    }

    /// Returns the duration in nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Multiplies the duration by an integer factor.
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_ns(100);
        let d = SimDuration::from_ns(40);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_ns(5);
        let late = SimTime::from_ns(10);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_ns(), 5);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_on_negative_span() {
        let _ = SimTime::from_ns(1).since(SimTime::from_ns(2));
    }

    #[test]
    fn ps_ceil_rounds_up() {
        assert_eq!(SimDuration::from_ps_ceil(625).as_ns(), 1);
        assert_eq!(SimDuration::from_ps_ceil(1000).as_ns(), 1);
        assert_eq!(SimDuration::from_ps_ceil(1001).as_ns(), 2);
        assert_eq!(SimDuration::from_ps_ceil(0).as_ns(), 0);
    }

    #[test]
    fn max_picks_later() {
        assert_eq!(
            SimTime::from_ns(3).max(SimTime::from_ns(7)),
            SimTime::from_ns(7)
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12 ns");
        assert_eq!(SimDuration::from_us(2).to_string(), "2000 ns");
    }
}
