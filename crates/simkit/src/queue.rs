//! A bounded FIFO used to model backpressure.
//!
//! The Accumulate Config Register in the PIFS process core imposes
//! backpressure on upstream modules when its `CapacityCounter` hits the
//! configured limit (§IV-A3). `BoundedQueue` is the reusable primitive for
//! that pattern: `try_push` refuses new entries when full, and the caller
//! models the stall.

use std::collections::VecDeque;

/// A FIFO with a hard capacity limit.
///
/// # Examples
///
/// ```
/// use simkit::BoundedQueue;
///
/// let mut q = BoundedQueue::new(2);
/// assert!(q.try_push(1).is_ok());
/// assert!(q.try_push(2).is_ok());
/// assert_eq!(q.try_push(3), Err(3)); // full: backpressure
/// assert_eq!(q.pop(), Some(1));
/// assert!(q.try_push(3).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    rejected: u64,
    high_water: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            rejected: 0,
            high_water: 0,
        }
    }

    /// Attempts to append `item`; returns it back as `Err` when full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Returns a reference to the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` when the queue cannot accept another item.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Maximum number of items the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pushes refused due to a full queue (backpressure events).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Highest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Iterates over queued items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let mut q = BoundedQueue::new(3);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.front(), Some(&"a"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rejects_when_full_and_counts_backpressure() {
        let mut q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert!(q.is_full());
        assert_eq!(q.try_push(2), Err(2));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.rejected(), 2);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        q.pop();
        q.pop();
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }
}
