//! A deterministic, time-ordered event queue.
//!
//! Events scheduled for the same instant pop in insertion order, which is
//! what makes every simulation in this workspace reproducible run-to-run:
//! a plain binary heap does not guarantee stable ordering of equal keys,
//! so each entry carries a monotonically increasing sequence number and
//! the heap orders by the composite `(time, seq)` key.
//!
//! The heap itself is index-based (a `Vec` with hand-rolled sift-up /
//! sift-down over `(time, seq)` keys) rather than
//! `std::collections::BinaryHeap` over an `Ord` wrapper: the composite
//! key is a total order, so every comparison is a branch-predictable
//! two-word compare with no trait-object or `Ordering::then_with`
//! chaining on the hot path, and sifting moves entries with plain index
//! arithmetic.

use crate::time::SimTime;

/// A time-ordered queue of simulation events of type `E`.
///
/// # Examples
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(7), "late");
/// q.push(SimTime::from_ns(3), "early");
/// q.push(SimTime::from_ns(3), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Min-heap over `(time, seq)`: `entries[i]` sorts before both
    /// children at `2i + 1` and `2i + 2`.
    entries: Vec<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The composite ordering key: earliest time first, insertion order
    /// within a tie. `seq` is unique, so this is a total order.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Entry { time, seq, event });
        self.sift_up(self.entries.len() - 1);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.entries.is_empty() {
            return None;
        }
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        let e = self.entries.pop().expect("non-empty");
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        Some((e.time, e.event))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.entries.first().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Moves `entries[i]` up until its parent's key is smaller.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[parent].key() <= self.entries[i].key() {
                break;
            }
            self.entries.swap(i, parent);
            i = parent;
        }
    }

    /// Moves `entries[i]` down below any smaller-keyed child.
    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let smallest_child =
                if right < n && self.entries[right].key() < self.entries[left].key() {
                    right
                } else {
                    left
                };
            if self.entries[i].key() <= self.entries[smallest_child].key() {
                break;
            }
            self.entries.swap(i, smallest_child);
            i = smallest_child;
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 1, 5, 3, 7] {
            q.push(SimTime::from_ns(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(42);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn fifo_tie_break_survives_interleaved_timestamps() {
        // Ties must pop in insertion order even when pushes at other
        // instants land between them and churn the heap's internal
        // layout — the property the per-entry sequence number exists
        // to guarantee.
        let mut q = EventQueue::new();
        let tie = SimTime::from_ns(50);
        q.push(tie, "tie-0");
        q.push(SimTime::from_ns(10), "early");
        q.push(tie, "tie-1");
        q.push(SimTime::from_ns(99), "late");
        q.push(tie, "tie-2");
        q.push(SimTime::from_ns(10), "early-second");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            ["early", "early-second", "tie-0", "tie-1", "tie-2", "late"]
        );
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.push(SimTime::from_ns(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_ns(15), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn index_heap_matches_stable_sort_under_stress() {
        // The hand-rolled heap must drain in exactly the order a stable
        // sort by time would produce — times chosen from a small range so
        // ties are frequent and the seq tie-break carries the test.
        let mut rng = crate::DetRng::new(7);
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        for i in 0..5000 {
            let t = rng.below(64);
            q.push(SimTime::from_ns(t), i);
            reference.push((t, i));
        }
        reference.sort_by_key(|&(t, _)| t); // stable: preserves insertion order on ties
        let drained: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.as_ns(), e))
            .collect();
        assert_eq!(drained, reference);
    }

    #[test]
    fn tie_break_survives_pop_push_churn_mid_tie() {
        // Popping part of a tie group, pushing more events at the same
        // instant, then draining must keep global insertion order within
        // the tie — the sequence counter is queue-global, not per-push.
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t, 2);
        q.push(SimTime::from_ns(1), 99);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().1, 99);
        assert_eq!(
            std::iter::from_fn(|| q.pop())
                .map(|(_, e)| e)
                .collect::<Vec<_>>(),
            [1, 2, 3]
        );
    }

    #[test]
    fn len_tracks_push_pop_cycles() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(SimTime::from_ns(10 - i), i);
        }
        assert_eq!(q.len(), 10);
        for expect in 1..=10u64 {
            assert_eq!(q.pop().unwrap().0, SimTime::from_ns(expect));
        }
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }
}
