//! Deterministic, time-ordered event queues.
//!
//! Events scheduled for the same instant pop in insertion order, which is
//! what makes every simulation in this workspace reproducible run-to-run:
//! each entry carries a monotonically increasing sequence number and the
//! queue orders by the composite `(time, seq)` key — a total order, so
//! every implementation here drains in exactly the same sequence.
//!
//! Two implementations share that contract:
//!
//! * [`EventQueue`] — a bucketed *calendar queue*: a ring of
//!   fixed-width time buckets covering the near future, with a binary
//!   heap holding far-future overflow. Steady-state push and pop are
//!   near-O(1) (append to / pop from a sorted bucket) instead of the
//!   O(log n) comparison chains a heap pays per operation. Bucket
//!   storage is a reusable slab: drained buckets keep their capacity,
//!   so the steady state allocates nothing per event.
//! * [`BinaryEventQueue`] — the index-based binary heap (hand-rolled
//!   sift-up/down over `(time, seq)`). Retained as the reference
//!   implementation the calendar queue is differentially tested
//!   against, and reused internally as the calendar queue's overflow
//!   store.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Number of buckets in the calendar ring (power of two).
const NB: usize = 512;
/// Cap on the bucket-width exponent so `NB << shift` cannot overflow.
const MAX_SHIFT: u32 = 54;
/// Out-of-order insert into a bucket at least this full re-fits the
/// bucket width (when a narrower width would actually spread the load).
const REFIT_LEN: usize = 16;

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The composite ordering key: earliest time first, insertion order
    /// within a tie. `seq` is unique, so this is a total order.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A min-heap of [`Entry`] over the `(time, seq)` key. Entries keep the
/// sequence numbers they were created with, so a heap shared between
/// structures (the calendar queue's overflow) preserves global FIFO
/// tie-breaking.
#[derive(Debug, Clone)]
struct EntryHeap<E> {
    /// `entries[i]` sorts before both children at `2i + 1` and `2i + 2`.
    entries: Vec<Entry<E>>,
}

impl<E> EntryHeap<E> {
    fn new() -> Self {
        EntryHeap {
            entries: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.entries.first().map(|e| e.time)
    }

    fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.entries.first().map(Entry::key)
    }

    fn push(&mut self, entry: Entry<E>) {
        self.entries.push(entry);
        self.sift_up(self.entries.len() - 1);
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if self.entries.is_empty() {
            return None;
        }
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        let e = self.entries.pop().expect("non-empty");
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        Some(e)
    }

    /// Moves `entries[i]` up until its parent's key is smaller.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[parent].key() <= self.entries[i].key() {
                break;
            }
            self.entries.swap(i, parent);
            i = parent;
        }
    }

    /// Moves `entries[i]` down below any smaller-keyed child.
    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let smallest_child =
                if right < n && self.entries[right].key() < self.entries[left].key() {
                    right
                } else {
                    left
                };
            if self.entries[i].key() <= self.entries[smallest_child].key() {
                break;
            }
            self.entries.swap(i, smallest_child);
            i = smallest_child;
        }
    }
}

/// The binary-heap event queue: O(log n) push/pop with exact FIFO
/// tie-breaking. The reference implementation — [`EventQueue`] must
/// drain in precisely this order (asserted by differential tests) — and
/// the store behind the calendar queue's far-future overflow.
///
/// # Examples
///
/// ```
/// use simkit::{BinaryEventQueue, SimTime};
///
/// let mut q = BinaryEventQueue::new();
/// q.push(SimTime::from_ns(7), "late");
/// q.push(SimTime::from_ns(3), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// ```
#[derive(Debug, Clone)]
pub struct BinaryEventQueue<E> {
    heap: EntryHeap<E>,
    next_seq: u64,
}

impl<E> BinaryEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryEventQueue {
            heap: EntryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek_time()
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for BinaryEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A time-ordered queue of simulation events of type `E`, implemented as
/// a calendar queue.
///
/// A ring of `NB` (512) buckets, each `2^shift` ns wide, covers the window
/// `[day_start, day_start + NB·2^shift)`. Every bucket holds its entries
/// sorted ascending by `(time, seq)`, so the monotone-push steady state
/// is an O(1) `push_back` and every pop is an O(1) `pop_front`. Events
/// beyond the window land in a binary-heap overflow; when the window
/// drains, it is rebuilt over the overflow's time span with a bucket
/// width re-fitted to that span (the classic calendar-queue resize,
/// triggered per day rather than per operation). Bucket deques and the
/// overflow vector keep their capacity across days — a reusable slab, so
/// sustained simulation pushes no per-event allocations.
///
/// Both queues are `Clone` (for `E: Clone`), and a clone is a full
/// snapshot: it preserves pending events, sequence numbers, and the
/// wheel geometry, so the clone drains in exactly the original's order —
/// the property simulation checkpointing relies on.
///
/// # Examples
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(7), "late");
/// q.push(SimTime::from_ns(3), "early");
/// q.push(SimTime::from_ns(3), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The wheel: ring slot `a & (NB - 1)` holds absolute bucket `a`
    /// (i.e. times in `[a·2^shift, (a+1)·2^shift)`) for the unique
    /// in-window `a`; entries ascending by `(time, seq)`.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// Bucket width exponent: width = `1 << shift` ns.
    shift: u32,
    /// Absolute bucket number of the wheel cursor. The window covers
    /// absolute buckets `[cur_abs, cur_abs + NB)`; as pops advance the
    /// cursor, vacated ring slots immediately serve the next rotation,
    /// so a workload whose pending horizon fits the window never
    /// rebuilds.
    cur_abs: u64,
    /// Occupancy bitmap: bit `i` set iff ring slot `i` is non-empty.
    /// Pops and peeks jump to the next live slot with a trailing-zeros
    /// scan instead of probing empty deques one by one.
    occupied: [u64; NB / 64],
    /// Entries currently in the ring.
    in_window: usize,
    /// Entries beyond the window (or behind a pending re-anchor), keyed
    /// by their original sequence numbers so tie-breaks survive the
    /// detour.
    overflow: EntryHeap<E>,
    /// Largest time ever pushed (window-width heuristic; monotone).
    ring_max: u64,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NB).map(|_| VecDeque::new()).collect(),
            shift: 6, // 64 ns buckets until the first re-fit
            cur_abs: 0,
            occupied: [0; NB / 64],
            in_window: 0,
            overflow: EntryHeap::new(),
            ring_max: 0,
            next_seq: 0,
        }
    }

    /// Smallest width exponent that fits `span` ns into the ring.
    fn fit_shift(span: u64) -> u32 {
        let mut shift = 0u32;
        while shift < MAX_SHIFT && (span >> shift) >= NB as u64 {
            shift += 1;
        }
        shift
    }

    /// Circular scan: the first occupied ring slot at absolute-bucket
    /// distance `0..NB` from the cursor, returned as `(slot, distance)`.
    #[inline]
    fn next_occupied(&self) -> Option<(usize, u64)> {
        let from = (self.cur_abs & (NB as u64 - 1)) as usize;
        let mut word = from >> 6;
        let mut bits = self.occupied[word] & (!0u64 << (from & 63));
        // First pass: from..NB, second pass: 0..from (next rotation of
        // the scan, still strictly increasing absolute buckets).
        for wrapped in 0..=(NB / 64) {
            if bits != 0 {
                let slot = (word << 6) + bits.trailing_zeros() as usize;
                let dist = (slot + NB - from) as u64 & (NB as u64 - 1);
                return Some((slot, dist));
            }
            word = if word + 1 >= NB / 64 { 0 } else { word + 1 };
            bits = self.occupied[word];
            if wrapped == NB / 64 - 1 && word == from >> 6 {
                // Back at the starting word: mask to the slots before
                // `from` only, so each slot is inspected exactly once.
                bits &= !(!0u64 << (from & 63));
            }
        }
        None
    }

    #[inline]
    fn mark_occupied(&mut self, slot: usize) {
        self.occupied[slot >> 6] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn mark_empty(&mut self, slot: usize) {
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, event };
        let t = time.as_ns();
        self.ring_max = self.ring_max.max(t);
        let ab = t >> self.shift;
        if ab < self.cur_abs {
            // An event earlier than the wheel cursor (legal: simulated
            // time may be revisited). Cold path: re-anchor at it.
            self.overflow.push(entry);
            self.rebuild_at(t);
        } else if ab - self.cur_abs < NB as u64 {
            let slot = (ab & (NB as u64 - 1)) as usize;
            let key = entry.key();
            let bucket = &mut self.buckets[slot];
            let mut crowded = false;
            match bucket.back() {
                // Monotone arrival: the overwhelmingly common case.
                Some(last) if last.key() <= key => bucket.push_back(entry),
                None => bucket.push_back(entry),
                _ => {
                    let pos = bucket.partition_point(|e| e.key() < key);
                    crowded = bucket.len() >= REFIT_LEN;
                    bucket.insert(pos, entry);
                }
            }
            self.in_window += 1;
            self.mark_occupied(slot);
            if crowded && self.shift > 0 {
                // Out-of-order inserts into a crowded bucket: re-fit the
                // width if a narrower one would spread the pending set
                // (same-instant pileups keep the current width — no
                // width separates ties, and they append anyway).
                let span = self.ring_max.saturating_sub(self.cur_abs << self.shift);
                if Self::fit_shift(span) < self.shift {
                    let start = self.peek_time().expect("queue non-empty").as_ns();
                    self.rebuild_at(start);
                }
            }
        } else {
            self.overflow.push(entry);
        }
    }

    /// Re-anchors the wheel at `start`: drains the ring into the
    /// overflow, re-fits the bucket width to the pending span, and
    /// scatters every now-in-window entry back into the ring. Reached
    /// only when the ring is empty (day advance into the overflow) or an
    /// event lands behind the cursor.
    ///
    /// The scatter sorts the overflow's backing vector once by
    /// `(time, seq)` instead of heap-popping entry by entry — the sorted
    /// order appends into buckets already sorted, and the sorted suffix
    /// left behind *is* a valid min-heap layout (every parent index
    /// precedes its children), so the remaining overflow needs no
    /// re-heapify.
    fn rebuild_at(&mut self, start: u64) {
        if self.in_window > 0 {
            // Cold path (only an event behind the cursor gets here with
            // a populated ring): sweep everything onto the overflow's
            // backing vector. Plain pushes suffice — the sort below
            // restores order, so per-entry heap sift-ups would be
            // wasted work.
            for slot in 0..NB {
                while let Some(e) = self.buckets[slot].pop_front() {
                    self.overflow.entries.push(e);
                }
            }
            self.occupied = [0; NB / 64];
            self.in_window = 0;
        }
        let mut v = std::mem::take(&mut self.overflow.entries);
        v.sort_unstable_by_key(Entry::key);
        // Smallest width that fits the pending span into the ring.
        let span = v.last().map_or(0, |e| e.time.as_ns()).saturating_sub(start);
        let shift = Self::fit_shift(span);
        self.shift = shift;
        self.cur_abs = start >> shift;
        let window_end = (self.cur_abs + NB as u64).saturating_mul(1 << shift);
        let split = v.partition_point(|e| e.time.as_ns() < window_end);
        for e in v.drain(..split) {
            let slot = ((e.time.as_ns() >> self.shift) & (NB as u64 - 1)) as usize;
            self.buckets[slot].push_back(e);
            self.mark_occupied(slot);
            self.in_window += 1;
        }
        self.overflow.entries = v;
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if let Some((slot, dist)) = self.next_occupied() {
                // The cursor may have advanced the window past overflow
                // entries pushed when they were out of range; the true
                // minimum is whichever of the two fronts sorts first by
                // the full (time, seq) key.
                let ring_key = self.buckets[slot].front().expect("occupied").key();
                if self.overflow.peek_key().is_some_and(|k| k < ring_key) {
                    let e = self.overflow.pop().expect("peeked entry");
                    return Some((e.time, e.event));
                }
                self.cur_abs += dist;
                let bucket = &mut self.buckets[slot];
                let e = bucket.pop_front().expect("occupied slot non-empty");
                if bucket.is_empty() {
                    self.mark_empty(slot);
                }
                self.in_window -= 1;
                return Some((e.time, e.event));
            }
            debug_assert_eq!(self.in_window, 0);
            let next = self.overflow.peek_time()?;
            self.rebuild_at(next.as_ns());
        }
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let ring = self
            .next_occupied()
            .and_then(|(slot, _)| self.buckets[slot].front().map(|e| e.time));
        match (ring, self.overflow.peek_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.in_window + self.overflow.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 1, 5, 3, 7] {
            q.push(SimTime::from_ns(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(42);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn fifo_tie_break_survives_interleaved_timestamps() {
        // Ties must pop in insertion order even when pushes at other
        // instants land between them and churn the internal layout —
        // the property the per-entry sequence number exists to
        // guarantee.
        let mut q = EventQueue::new();
        let tie = SimTime::from_ns(50);
        q.push(tie, "tie-0");
        q.push(SimTime::from_ns(10), "early");
        q.push(tie, "tie-1");
        q.push(SimTime::from_ns(99), "late");
        q.push(tie, "tie-2");
        q.push(SimTime::from_ns(10), "early-second");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            ["early", "early-second", "tie-0", "tie-1", "tie-2", "late"]
        );
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_sees_overflowed_events() {
        let mut q = EventQueue::new();
        // Far beyond the initial 512×64 ns window.
        q.push(SimTime::from_ns(1 << 40), 1u64);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1 << 40)));
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.push(SimTime::from_ns(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_ns(15), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn push_earlier_than_the_window_still_pops_first() {
        let mut q = EventQueue::new();
        // Force the window to re-anchor far from zero…
        q.push(SimTime::from_ns(1 << 30), "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1 << 30)));
        q.pop(); // window now anchored at 2^30
        q.push(SimTime::from_ns(1 << 30), "far-2");
        // …then schedule before it: the past event must pop first.
        q.push(SimTime::from_ns(3), "past");
        assert_eq!(q.pop().unwrap().1, "past");
        assert_eq!(q.pop().unwrap().1, "far-2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn index_heap_matches_stable_sort_under_stress() {
        // The queue must drain in exactly the order a stable sort by
        // time would produce — times chosen from a small range so ties
        // are frequent and the seq tie-break carries the test.
        let mut rng = crate::DetRng::new(7);
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        for i in 0..5000 {
            let t = rng.below(64);
            q.push(SimTime::from_ns(t), i);
            reference.push((t, i));
        }
        reference.sort_by_key(|&(t, _)| t); // stable: preserves insertion order on ties
        let drained: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| (t.as_ns(), e))
            .collect();
        assert_eq!(drained, reference);
    }

    #[test]
    fn tie_break_survives_pop_push_churn_mid_tie() {
        // Popping part of a tie group, pushing more events at the same
        // instant, then draining must keep global insertion order within
        // the tie — the sequence counter is queue-global, not per-push.
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t, 2);
        q.push(SimTime::from_ns(1), 99);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().1, 99);
        assert_eq!(
            std::iter::from_fn(|| q.pop())
                .map(|(_, e)| e)
                .collect::<Vec<_>>(),
            [1, 2, 3]
        );
    }

    #[test]
    fn len_tracks_push_pop_cycles() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(SimTime::from_ns(10 - i), i);
        }
        assert_eq!(q.len(), 10);
        for expect in 1..=10u64 {
            assert_eq!(q.pop().unwrap().0, SimTime::from_ns(expect));
        }
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn clone_is_a_full_snapshot() {
        // A clone taken mid-stream must drain identically to the
        // original — including FIFO tie-breaks (sequence counter state)
        // and window geometry (overflow + ring occupancy).
        let mut rng = crate::DetRng::new(99);
        let mut q = EventQueue::new();
        for i in 0..4_000u64 {
            q.push(SimTime::from_ns(rng.below(1 << 20)), i);
        }
        for _ in 0..1_000 {
            let _ = q.pop();
        }
        // Mix in a far-future overflow entry and a tie pair.
        q.push(SimTime::from_ns(1 << 40), 9_000);
        q.push(SimTime::from_ns(1 << 19), 9_001);
        q.push(SimTime::from_ns(1 << 19), 9_002);
        let mut snap = q.clone();
        assert_eq!(snap.len(), q.len());
        loop {
            let a = q.pop();
            let b = snap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn binary_queue_keeps_fifo_ties() {
        let mut q = BinaryEventQueue::new();
        let t = SimTime::from_ns(42);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert!(q.pop().is_none());
    }

    /// Differential stress: calendar queue vs the binary-heap reference
    /// over a mixed workload of bursts, sliding windows, far-future and
    /// past-time pushes. Both see the same operations; both must emit
    /// the same sequence.
    #[test]
    fn calendar_matches_binary_reference_under_mixed_workload() {
        let mut rng = crate::DetRng::new(2024);
        let mut cal = EventQueue::new();
        let mut bin = BinaryEventQueue::new();
        let mut now = 0u64;
        for i in 0..20_000u64 {
            match rng.below(10) {
                // Mostly near-future pushes (the simulator shape).
                0..=5 => {
                    let t = now + rng.below(4096);
                    cal.push(SimTime::from_ns(t), i);
                    bin.push(SimTime::from_ns(t), i);
                }
                // Same-instant ties.
                6 => {
                    let t = now + rng.below(4);
                    for _ in 0..4 {
                        cal.push(SimTime::from_ns(t), i);
                        bin.push(SimTime::from_ns(t), i);
                    }
                }
                // Far-future overflow.
                7 => {
                    let t = now + (1 << 24) + rng.below(1 << 24);
                    cal.push(SimTime::from_ns(t), i);
                    bin.push(SimTime::from_ns(t), i);
                }
                // Past-time push (legal; exercises the re-anchor path).
                8 => {
                    let t = now.saturating_sub(rng.below(1024));
                    cal.push(SimTime::from_ns(t), i);
                    bin.push(SimTime::from_ns(t), i);
                }
                // Drain a few.
                _ => {
                    for _ in 0..3 {
                        let a = cal.pop();
                        let b = bin.pop();
                        assert_eq!(
                            a.as_ref().map(|(t, e)| (*t, *e)),
                            b.as_ref().map(|(t, e)| (*t, *e))
                        );
                        if let Some((t, _)) = a {
                            now = now.max(t.as_ns());
                        }
                    }
                }
            }
            assert_eq!(cal.len(), bin.len());
        }
        loop {
            let a = cal.pop();
            let b = bin.pop();
            assert_eq!(
                a.as_ref().map(|(t, e)| (*t, *e)),
                b.as_ref().map(|(t, e)| (*t, *e))
            );
            if a.is_none() {
                break;
            }
        }
    }

    /// Differential stress with an open-loop *serving* shape: dense
    /// bursts of arrivals packed into a few microseconds, a handful of
    /// far-future timeout timers per burst, then a long idle gap before
    /// the next burst. The pending set alternates between sparse
    /// (timers only, spanning seconds) and dense (a burst packed into
    /// microseconds), so every gap forces the calendar queue to re-fit
    /// its bucket width across the sparse→dense transition — the width
    /// refit path the mixed-workload test above rarely reaches.
    #[test]
    fn calendar_matches_binary_on_bursty_serving_workload() {
        let mut rng = crate::DetRng::new(2026);
        let mut cal = EventQueue::new();
        let mut bin = BinaryEventQueue::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        let mut push_both = |cal: &mut EventQueue<u64>, bin: &mut BinaryEventQueue<u64>, t: u64| {
            cal.push(SimTime::from_ns(t), next_id);
            bin.push(SimTime::from_ns(t), next_id);
            next_id += 1;
        };
        for epoch in 0..300u64 {
            // Arrival burst: tens of queries inside a 2 µs window, with
            // frequent exact ties (back-to-back arrivals).
            let burst = 16 + rng.below(48);
            for _ in 0..burst {
                let t = now + rng.below(2_000);
                push_both(&mut cal, &mut bin, t);
                if rng.below(4) == 0 {
                    push_both(&mut cal, &mut bin, t); // same-instant tie
                }
            }
            // Batcher max-wait timers and retry timeouts: sparse events
            // milliseconds-to-seconds out, far beyond the burst window.
            for _ in 0..1 + rng.below(4) {
                let t = now + 1_000_000 + rng.below(1 << 30);
                push_both(&mut cal, &mut bin, t);
            }
            // Drain: fully on every third epoch (idle system), else just
            // the burst-sized prefix (timers stay pending across gaps).
            let drain = if epoch % 3 == 0 {
                cal.len()
            } else {
                burst as usize
            };
            for _ in 0..drain {
                let a = cal.pop();
                let b = bin.pop();
                assert_eq!(
                    a.as_ref().map(|(t, e)| (*t, *e)),
                    b.as_ref().map(|(t, e)| (*t, *e))
                );
                if let Some((t, _)) = a {
                    now = now.max(t.as_ns());
                }
            }
            assert_eq!(cal.len(), bin.len());
            assert_eq!(cal.peek_time(), bin.peek_time());
            // Idle gap: the next burst lands far past the current
            // window, densely packed relative to the leftover timers.
            now += 5_000_000 + rng.below(1 << 28);
        }
        loop {
            let a = cal.pop();
            let b = bin.pop();
            assert_eq!(
                a.as_ref().map(|(t, e)| (*t, *e)),
                b.as_ref().map(|(t, e)| (*t, *e))
            );
            if a.is_none() {
                break;
            }
        }
    }
}
