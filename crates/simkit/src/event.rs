//! A deterministic, time-ordered event queue.
//!
//! Events scheduled for the same instant pop in insertion order, which is
//! what makes every simulation in this workspace reproducible run-to-run:
//! `BinaryHeap` alone does not guarantee stable ordering of equal keys, so
//! each entry carries a monotonically increasing sequence number.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of simulation events of type `E`.
///
/// # Examples
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(7), "late");
/// q.push(SimTime::from_ns(3), "early");
/// q.push(SimTime::from_ns(3), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and the
        // lowest sequence number within a tie) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 1, 5, 3, 7] {
            q.push(SimTime::from_ns(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(42);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn fifo_tie_break_survives_interleaved_timestamps() {
        // Ties must pop in insertion order even when pushes at other
        // instants land between them and churn the heap's internal
        // layout — the property the per-entry sequence number exists
        // to guarantee.
        let mut q = EventQueue::new();
        let tie = SimTime::from_ns(50);
        q.push(tie, "tie-0");
        q.push(SimTime::from_ns(10), "early");
        q.push(tie, "tie-1");
        q.push(SimTime::from_ns(99), "late");
        q.push(tie, "tie-2");
        q.push(SimTime::from_ns(10), "early-second");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            ["early", "early-second", "tie-0", "tie-1", "tie-2", "late"]
        );
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.push(SimTime::from_ns(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_ns(15), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }
}
