//! `simkit` — discrete-event simulation foundation for the PIFS-Rec
//! reproduction.
//!
//! Every timing model in this workspace (the DDR state machines in
//! [`memsim`](../memsim/index.html), the CXL fabric in
//! [`cxlsim`](../cxlsim/index.html), the PIFS process core in
//! `pifs-core`) is built on the primitives here:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//!   matching the paper's 1 ns/clk top-module tick (§VI-A).
//! * [`EventQueue`] — a deterministic time-ordered event queue with FIFO
//!   tie-breaking (a calendar queue; [`BinaryEventQueue`] is the
//!   binary-heap reference it is differentially tested against).
//! * [`hash`] — a fast deterministic hasher ([`hash::FastMap`]) for
//!   simulation-internal maps on hot paths.
//! * [`BandwidthLink`] — a serialization-delay model for bandwidth-limited
//!   resources (FlexBus lanes, DIMM data buses, switch ports).
//! * [`BoundedQueue`] — a capacity-limited FIFO used to model backpressure
//!   (the Accumulate Config Register's `CapacityCounter` in §IV-A3).
//! * [`stats`] — counters, histograms and bandwidth meters used by every
//!   experiment harness.
//! * [`rng`] — a small deterministic RNG so that every figure regenerates
//!   bit-identically.
//! * [`faults`] — seeded fault schedules (fail-stop, slow-down, link
//!   degradation) generated as pure data, so faulty runs stay exactly as
//!   reproducible as fault-free ones.
//!
//! # Examples
//!
//! ```
//! use simkit::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::from_ns(10), "b");
//! q.push(SimTime::from_ns(5), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t.as_ns(), ev), (5, "a"));
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod faults;
pub mod hash;
pub mod link;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{BinaryEventQueue, EventQueue};
pub use faults::{FaultEvent, FaultKind, FaultSchedule, FaultSpec};
pub use link::BandwidthLink;
pub use queue::BoundedQueue;
pub use rng::DetRng;
pub use stats::{BandwidthMeter, Counter, Histogram, LatencyHist, Summary};
pub use time::{SimDuration, SimTime};
