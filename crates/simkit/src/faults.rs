//! Deterministic fault injection: seeded schedules of node and link
//! faults, generated up front as pure data.
//!
//! A [`FaultSchedule`] is to failures what `tracegen`'s arrival
//! processes are to traffic: a pure function of `(spec, seed, n_nodes,
//! horizon)`, materialized once before the run starts. The simulation
//! consults the schedule — it never mutates it — so a faulty run is as
//! deterministic as a fault-free one: byte-identical across reruns and
//! runner thread counts, and checkpoint/resume sees the same schedule
//! because it is plain `Clone` data (determinism rule 6 in
//! ARCHITECTURE.md).
//!
//! Three fault families are modelled, matching the failure modes a
//! sharded SLS fleet actually meets:
//!
//! * **fail-stop** — a node dies at an instant and never recovers;
//! * **slow-down** — a node serves at a latency multiplier over an
//!   interval (thermal throttling, noisy neighbour, GC pause);
//! * **link degradation** — the shared aggregation link loses
//!   bandwidth / gains hop latency over an interval (congestion,
//!   lane retraining).
//!
//! Spellings mirror the arrival-spec grammar:
//! `none | failstop:<rate> | slow:<rate>:<mult> | link:<rate>:<mult>`,
//! where `<rate>` is expected fault events per simulated second (per
//! node for the node families, for the one shared link in the link
//! family) and `<mult>` is the latency/serialization multiplier while
//! the fault is active.

use crate::rng::DetRng;
use crate::time::SimTime;

/// Nanoseconds per simulated second (rates are quoted per second).
const NS_PER_S: f64 = 1e9;

/// Transient faults stay active for an exponentially distributed
/// interval whose mean is this fraction of the mean inter-fault gap —
/// i.e. a ~20% duty cycle per node, independent of the swept rate.
const DUTY_FRACTION: f64 = 0.2;

/// A parsed fault family + parameters: the `fault` axis of a sweep.
///
/// Pure configuration — turn it into events with
/// [`FaultSchedule::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// No faults; the schedule is empty and the run is byte-identical
    /// to one that never heard of this module.
    None,
    /// Nodes fail permanently at `rate` events per node-second.
    FailStop {
        /// Expected fail-stop events per node per simulated second.
        rate: f64,
    },
    /// Nodes slow down by `mult` over exponential intervals arriving at
    /// `rate` events per node-second.
    Slow {
        /// Expected slow-down onsets per node per simulated second.
        rate: f64,
        /// Service-latency multiplier while the slow-down is active.
        mult: f64,
    },
    /// The shared aggregation link degrades by `mult` (serialization
    /// and hop latency multiplier) over exponential intervals arriving
    /// at `rate` events per second.
    Link {
        /// Expected degradation onsets per simulated second.
        rate: f64,
        /// Bandwidth-cut / hop-latency multiplier while active.
        mult: f64,
    },
}

impl FaultSpec {
    /// Parses the sweep spelling
    /// `none | failstop:<rate> | slow:<rate>:<mult> | link:<rate>:<mult>`.
    ///
    /// Rates must be positive and finite; multipliers must be finite
    /// and ≥ 1 (a fault never speeds a component up). Errors name the
    /// offending piece so sweep harnesses can surface *why* a spec was
    /// rejected.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or("").to_ascii_lowercase();
        let mut arg = |what: &str| -> Result<f64, String> {
            let raw = parts
                .next()
                .ok_or_else(|| format!("fault spec {spec:?}: missing {what}"))?;
            raw.parse::<f64>()
                .map_err(|_| format!("fault spec {spec:?}: {what} {raw:?} is not a number"))
        };
        let rate_of = |v: f64| -> Result<f64, String> {
            if v.is_finite() && v > 0.0 {
                Ok(v)
            } else {
                Err(format!(
                    "fault spec {spec:?}: rate must be positive and finite, got {v}"
                ))
            }
        };
        let mult_of = |v: f64| -> Result<f64, String> {
            if v.is_finite() && v >= 1.0 {
                Ok(v)
            } else {
                Err(format!(
                    "fault spec {spec:?}: multiplier must be finite and >= 1, got {v}"
                ))
            }
        };
        let parsed = match head.as_str() {
            "none" => FaultSpec::None,
            "failstop" => FaultSpec::FailStop {
                rate: rate_of(arg("rate")?)?,
            },
            "slow" => FaultSpec::Slow {
                rate: rate_of(arg("rate")?)?,
                mult: mult_of(arg("mult")?)?,
            },
            "link" => FaultSpec::Link {
                rate: rate_of(arg("rate")?)?,
                mult: mult_of(arg("mult")?)?,
            },
            other => {
                return Err(format!(
                    "unknown fault family {other:?} \
                     (none|failstop:<rate>|slow:<rate>:<mult>|link:<rate>:<mult>)"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("fault spec {spec:?}: trailing arguments"));
        }
        Ok(parsed)
    }

    /// True for [`FaultSpec::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, FaultSpec::None)
    }

    /// A short stable label for curve keys and filenames.
    pub fn label(&self) -> String {
        match *self {
            FaultSpec::None => "none".to_string(),
            FaultSpec::FailStop { rate } => format!("failstop:{rate}"),
            FaultSpec::Slow { rate, mult } => format!("slow:{rate}:{mult}"),
            FaultSpec::Link { rate, mult } => format!("link:{rate}:{mult}"),
        }
    }
}

/// What a single [`FaultEvent`] does to its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node stops answering forever.
    FailStop,
    /// The node's service latency is multiplied while the event is
    /// active.
    Slow {
        /// Latency multiplier (≥ 1).
        mult: f64,
    },
    /// The shared aggregation link's serialization and hop latency are
    /// multiplied while the event is active.
    LinkDegrade {
        /// Bandwidth-cut / hop-latency multiplier (≥ 1).
        mult: f64,
    },
}

/// One scheduled fault: target, activation window, effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Onset instant.
    pub at: SimTime,
    /// End of the activation window; `SimTime::from_ns(u64::MAX)` for
    /// fail-stop (no recovery).
    pub until: SimTime,
    /// Target node index, or [`FaultEvent::LINK`] for link events.
    pub node: u16,
    /// The effect while active.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Sentinel `node` value for events targeting the shared
    /// aggregation link rather than any node.
    pub const LINK: u16 = u16::MAX;
}

/// A materialized, immutable schedule of fault events for one run:
/// a pure function of `(spec, seed, n_nodes, horizon_ns)`.
///
/// # Examples
///
/// ```
/// use simkit::faults::{FaultSchedule, FaultSpec};
///
/// let spec = FaultSpec::parse("failstop:2000").unwrap();
/// let sched = FaultSchedule::generate(spec, 2024, 4, 1_000_000);
/// let again = FaultSchedule::generate(spec, 2024, 4, 1_000_000);
/// assert_eq!(sched.events(), again.events()); // pure function of the seed
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    spec: FaultSpec,
    n_nodes: u16,
    events: Vec<FaultEvent>,
    /// Per-node death instant, precomputed from the fail-stop events.
    deaths: Vec<Option<SimTime>>,
}

/// Draws an exponential with the given mean, matching `tracegen`'s
/// arrival machinery: `1 - unit_f64()` keeps the argument in `(0, 1]`.
fn exp_draw(rng: &mut DetRng, mean: f64) -> f64 {
    -(1.0 - rng.unit_f64()).ln() * mean
}

impl FaultSchedule {
    /// The empty schedule: no events, every node alive forever. The
    /// cheap default every fault-free run carries (no allocation).
    pub fn none(n_nodes: u16) -> FaultSchedule {
        FaultSchedule {
            spec: FaultSpec::None,
            n_nodes,
            events: Vec::new(),
            deaths: Vec::new(),
        }
    }

    /// Generates the schedule for `n_nodes` nodes over
    /// `[0, horizon_ns]`: a single `DetRng` stream draws exponential
    /// inter-fault gaps at the aggregate rate (`rate × n_nodes` for the
    /// node families, `rate` for the link), then a victim node, then —
    /// for the transient families — an exponential active duration with
    /// mean `0.2 / rate` seconds (~20% duty per node). Fail-stop events
    /// that land on an already-dead node are skipped, but their draws
    /// are still consumed, so prefixes of different horizons agree.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero while `spec` targets nodes.
    pub fn generate(spec: FaultSpec, seed: u64, n_nodes: u16, horizon_ns: u64) -> FaultSchedule {
        let mut events = Vec::new();
        let mut rng = DetRng::new(seed);
        match spec {
            FaultSpec::None => {}
            FaultSpec::FailStop { rate } => {
                assert!(n_nodes > 0, "fail-stop faults need at least one node");
                let mean_gap = NS_PER_S / (rate * n_nodes as f64);
                let mut dead = vec![false; n_nodes as usize];
                let mut clock = 0.0f64;
                loop {
                    clock += exp_draw(&mut rng, mean_gap);
                    if clock > horizon_ns as f64 {
                        break;
                    }
                    let node = rng.below(n_nodes as u64) as u16;
                    if dead[node as usize] {
                        continue;
                    }
                    dead[node as usize] = true;
                    events.push(FaultEvent {
                        at: SimTime::from_ns(clock.round() as u64),
                        until: SimTime::from_ns(u64::MAX),
                        node,
                        kind: FaultKind::FailStop,
                    });
                    if dead.iter().all(|&d| d) {
                        break;
                    }
                }
            }
            FaultSpec::Slow { rate, mult } => {
                assert!(n_nodes > 0, "slow-down faults need at least one node");
                let mean_gap = NS_PER_S / (rate * n_nodes as f64);
                let mean_active = DUTY_FRACTION * NS_PER_S / rate;
                let mut clock = 0.0f64;
                loop {
                    clock += exp_draw(&mut rng, mean_gap);
                    if clock > horizon_ns as f64 {
                        break;
                    }
                    let node = rng.below(n_nodes as u64) as u16;
                    let active = exp_draw(&mut rng, mean_active);
                    events.push(FaultEvent {
                        at: SimTime::from_ns(clock.round() as u64),
                        until: SimTime::from_ns((clock + active).round() as u64),
                        node,
                        kind: FaultKind::Slow { mult },
                    });
                }
            }
            FaultSpec::Link { rate, mult } => {
                let mean_gap = NS_PER_S / rate;
                let mean_active = DUTY_FRACTION * NS_PER_S / rate;
                let mut clock = 0.0f64;
                loop {
                    clock += exp_draw(&mut rng, mean_gap);
                    if clock > horizon_ns as f64 {
                        break;
                    }
                    let active = exp_draw(&mut rng, mean_active);
                    events.push(FaultEvent {
                        at: SimTime::from_ns(clock.round() as u64),
                        until: SimTime::from_ns((clock + active).round() as u64),
                        node: FaultEvent::LINK,
                        kind: FaultKind::LinkDegrade { mult },
                    });
                }
            }
        }
        let deaths = if events.is_empty() {
            Vec::new()
        } else {
            let mut deaths = vec![None; n_nodes as usize];
            for ev in &events {
                if let FaultKind::FailStop = ev.kind {
                    deaths[ev.node as usize] = Some(ev.at);
                }
            }
            deaths
        };
        FaultSchedule {
            spec,
            n_nodes,
            events,
            deaths,
        }
    }

    /// The spec the schedule was generated from.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// True when the schedule holds no events — the fault-free fast
    /// path every hot loop gates on.
    pub fn is_none(&self) -> bool {
        self.events.is_empty()
    }

    /// Node count the schedule was generated for.
    pub fn n_nodes(&self) -> u16 {
        self.n_nodes
    }

    /// All events, in onset order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The instant `node` fail-stops, if it ever does.
    pub fn death_of(&self, node: u16) -> Option<SimTime> {
        self.deaths.get(node as usize).copied().flatten()
    }

    /// Whether `node` is still answering at `at`. A node arriving at
    /// exactly its death instant is already dead.
    pub fn alive(&self, node: u16, at: SimTime) -> bool {
        match self.death_of(node) {
            Some(death) => at < death,
            None => true,
        }
    }

    /// The slow-down windows of `node`, as `(start_ns, end_ns, mult)`
    /// triples in onset order. Node runtimes load these once per run.
    pub fn slow_intervals(&self, node: u16) -> Vec<(u64, u64, f64)> {
        self.events
            .iter()
            .filter_map(|ev| match ev.kind {
                FaultKind::Slow { mult } if ev.node == node => {
                    Some((ev.at.as_ns(), ev.until.as_ns(), mult))
                }
                _ => None,
            })
            .collect()
    }

    /// The aggregation link's degradation multiplier at `at` — the
    /// maximum over active link events, 1.0 when none is active.
    pub fn link_mult(&self, at: SimTime) -> f64 {
        let mut mult = 1.0f64;
        for ev in &self.events {
            if let FaultKind::LinkDegrade { mult: m } = ev.kind {
                if ev.at <= at && at < ev.until {
                    mult = mult.max(m);
                }
            }
        }
        mult
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_families_and_reports_why_it_rejects() {
        assert_eq!(FaultSpec::parse("none"), Ok(FaultSpec::None));
        assert_eq!(
            FaultSpec::parse("failstop:2000"),
            Ok(FaultSpec::FailStop { rate: 2000.0 })
        );
        assert_eq!(
            FaultSpec::parse("SLOW:16000:4"),
            Ok(FaultSpec::Slow {
                rate: 16000.0,
                mult: 4.0
            })
        );
        assert_eq!(
            FaultSpec::parse("link:8000:8"),
            Ok(FaultSpec::Link {
                rate: 8000.0,
                mult: 8.0
            })
        );
        // Errors carry the reason, per the unified parse contract.
        assert!(FaultSpec::parse("meteor:1")
            .unwrap_err()
            .contains("unknown fault family"));
        assert!(FaultSpec::parse("failstop")
            .unwrap_err()
            .contains("missing rate"));
        assert!(FaultSpec::parse("failstop:x")
            .unwrap_err()
            .contains("not a number"));
        assert!(FaultSpec::parse("failstop:-1")
            .unwrap_err()
            .contains("positive"));
        assert!(FaultSpec::parse("slow:100:0.5")
            .unwrap_err()
            .contains(">= 1"));
        assert!(FaultSpec::parse("none:1").unwrap_err().contains("trailing"));
        assert!(FaultSpec::parse("slow:100")
            .unwrap_err()
            .contains("missing mult"));
    }

    #[test]
    fn label_round_trips_through_parse() {
        for spec in ["none", "failstop:2000", "slow:16000:4", "link:8000:8"] {
            let parsed = FaultSpec::parse(spec).unwrap();
            assert_eq!(FaultSpec::parse(&parsed.label()), Ok(parsed));
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_its_seed() {
        for spec in ["failstop:2000", "slow:16000:4", "link:8000:8"] {
            let spec = FaultSpec::parse(spec).unwrap();
            let a = FaultSchedule::generate(spec, 2024, 4, 10_000_000);
            let b = FaultSchedule::generate(spec, 2024, 4, 10_000_000);
            assert_eq!(a, b);
            let c = FaultSchedule::generate(spec, 2025, 4, 10_000_000);
            assert_ne!(a.events(), c.events(), "different seed, different schedule");
        }
    }

    #[test]
    fn failstop_stream_matches_golden_events() {
        // Seed 2024, 4 nodes, 2000 faults/node-s over 1 ms: the first
        // events are pinned the same way the DetRng and arrival streams
        // are, so any change to the draw order re-times every faulty
        // experiment and fails loudly here.
        let spec = FaultSpec::parse("failstop:2000").unwrap();
        let sched = FaultSchedule::generate(spec, 2024, 4, 1_000_000);
        let observed: Vec<(u64, u16)> = sched
            .events()
            .iter()
            .map(|ev| (ev.at.as_ns(), ev.node))
            .collect();
        assert_eq!(observed, golden::FAILSTOP);
        for &(at, node) in &golden::FAILSTOP {
            assert_eq!(sched.death_of(node), Some(SimTime::from_ns(at)));
            assert!(sched.alive(node, SimTime::from_ns(at - 1)));
            assert!(!sched.alive(node, SimTime::from_ns(at)));
        }
    }

    #[test]
    fn slow_stream_matches_golden_events() {
        let spec = FaultSpec::parse("slow:16000:4").unwrap();
        let sched = FaultSchedule::generate(spec, 2024, 4, 200_000);
        let observed: Vec<(u64, u64, u16)> = sched
            .events()
            .iter()
            .take(6)
            .map(|ev| (ev.at.as_ns(), ev.until.as_ns(), ev.node))
            .collect();
        assert_eq!(observed, golden::SLOW);
        for ev in sched.events() {
            assert!(matches!(ev.kind, FaultKind::Slow { mult } if mult == 4.0));
            assert!(ev.until >= ev.at);
        }
    }

    #[test]
    fn link_stream_matches_golden_events_and_mult_window() {
        let spec = FaultSpec::parse("link:8000:8").unwrap();
        let sched = FaultSchedule::generate(spec, 2024, 4, 1_000_000);
        let observed: Vec<(u64, u64)> = sched
            .events()
            .iter()
            .take(4)
            .map(|ev| (ev.at.as_ns(), ev.until.as_ns()))
            .collect();
        assert_eq!(observed, golden::LINK);
        let (at, until) = golden::LINK[0];
        assert_eq!(sched.link_mult(SimTime::from_ns(at)), 8.0);
        assert_eq!(sched.link_mult(SimTime::from_ns(at - 1)), 1.0);
        assert_eq!(sched.link_mult(SimTime::from_ns(until)), 1.0);
        for ev in sched.events() {
            assert_eq!(ev.node, FaultEvent::LINK);
        }
    }

    /// Golden first events captured from the first run; see the
    /// matching DetRng/arrival golden tests for the convention.
    mod golden {
        pub const FAILSTOP: [(u64, u16); 4] = [(121861, 0), (388112, 2), (429612, 1), (506996, 3)];
        pub const SLOW: [(u64, u64, u16); 6] = [
            (15233, 19666, 0),
            (17162, 27211, 3),
            (19460, 21772, 2),
            (28157, 50831, 1),
            (57189, 59156, 2),
            (75427, 80603, 3),
        ];
        pub const LINK: [(u64, u64); 4] = [
            (121861, 124418),
            (166191, 169279),
            (388112, 408209),
            (406494, 429173),
        ];
    }

    #[test]
    fn failstop_kills_each_node_at_most_once() {
        let spec = FaultSpec::parse("failstop:64000").unwrap();
        let sched = FaultSchedule::generate(spec, 7, 8, 10_000_000);
        let mut seen = [false; 8];
        for ev in sched.events() {
            assert!(!seen[ev.node as usize], "node {} died twice", ev.node);
            seen[ev.node as usize] = true;
        }
        assert!(
            seen.iter().all(|&d| d),
            "rate high enough to kill the fleet"
        );
    }

    #[test]
    fn horizon_prefixes_agree() {
        // A longer horizon extends the schedule without re-timing the
        // shared prefix — the property that lets sweep points at
        // different durations share one fault seed.
        let spec = FaultSpec::parse("slow:16000:4").unwrap();
        let short = FaultSchedule::generate(spec, 11, 4, 100_000);
        let long = FaultSchedule::generate(spec, 11, 4, 1_000_000);
        assert_eq!(
            short.events(),
            &long.events()[..short.events().len()],
            "short horizon must be a prefix of the long one"
        );
    }

    #[test]
    fn none_schedule_is_empty_and_everyone_lives() {
        let sched = FaultSchedule::none(4);
        assert!(sched.is_none());
        assert!(sched.events().is_empty());
        for n in 0..4 {
            assert!(sched.alive(n, SimTime::from_ns(u64::MAX - 1)));
            assert!(sched.slow_intervals(n).is_empty());
        }
        assert_eq!(sched.link_mult(SimTime::ZERO), 1.0);
        // generate() with FaultSpec::None agrees.
        let gen = FaultSchedule::generate(FaultSpec::None, 2024, 4, 1_000_000);
        assert!(gen.is_none());
    }

    #[test]
    fn event_rate_is_roughly_the_requested_rate() {
        // 16k slow events/node-s × 4 nodes over 10 ms ⇒ ~640 events.
        let spec = FaultSpec::parse("slow:16000:2").unwrap();
        let sched = FaultSchedule::generate(spec, 3, 4, 10_000_000);
        let n = sched.events().len() as f64;
        assert!((500.0..800.0).contains(&n), "got {n} events");
    }
}
