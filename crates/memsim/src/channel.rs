//! One DRAM channel: banks, rank-level activate limits, the shared data
//! bus, and refresh.

use std::collections::VecDeque;

use simkit::{SimDuration, SimTime};

use crate::addrmap::Location;
use crate::bank::{BankState, RowOutcome};
use crate::config::{DramOrg, TimingDurations};

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// 64 B read burst.
    Read,
    /// 64 B write burst.
    Write,
}

/// Per-rank bookkeeping: refresh schedule and the tFAW activate window.
#[derive(Debug, Clone)]
struct RankState {
    next_refresh: SimTime,
    /// Times of the most recent activates, newest last. tFAW covers
    /// exactly four ACTs, so a fixed in-place window replaces the heap
    /// allocation a growable deque would carry per rank.
    recent_acts: [SimTime; 4],
    /// Valid slots in `recent_acts` (saturates at 4).
    n_acts: usize,
}

impl RankState {
    /// Slides `at` into the window, dropping the oldest ACT when full.
    fn record_act(&mut self, at: SimTime) {
        if self.n_acts == 4 {
            self.recent_acts.copy_within(1..4, 0);
            self.recent_acts[3] = at;
        } else {
            self.recent_acts[self.n_acts] = at;
            self.n_acts += 1;
        }
    }
}

/// One DRAM channel with its own command/data bus.
#[derive(Debug, Clone)]
pub struct Channel {
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    org: DramOrg,
    /// Time at which the shared data bus frees up.
    bus_free: SimTime,
    /// Recent idle windows on the data bus, oldest first. A burst whose
    /// data is ready early may claim one instead of queueing at
    /// `bus_free` — the reordering freedom an FR-FCFS controller has,
    /// without which one bank-conflicted request head-of-line-blocks
    /// every later burst. A capacity-bounded ring: the scan in
    /// `claim_bus` walks it oldest-first exactly as the original flat
    /// vec did, but evicting the oldest gap is an O(1) `pop_front`, and
    /// the steady state allocates nothing.
    free_gaps: VecDeque<(SimTime, SimTime)>,
    /// Upper bound on every recorded gap's end time (only ever ratcheted
    /// up). When `earliest + burst` exceeds it no gap can possibly fit,
    /// so `claim_bus` skips the scan — the common case once simulated
    /// time has advanced past the recorded windows.
    max_gap_end: SimTime,
    /// Accumulated statistics.
    pub stats: ChannelStats,
}

const MAX_GAPS: usize = 64;

/// Row-buffer and traffic statistics for one channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelStats {
    /// Row-buffer hits.
    pub hits: u64,
    /// Activates into an idle bank.
    pub empties: u64,
    /// Row-buffer conflicts (PRE + ACT).
    pub conflicts: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Total bytes moved on the data bus.
    pub bytes: u64,
    /// Accesses delayed by a refresh blackout.
    pub refresh_stalls: u64,
}

impl ChannelStats {
    /// Row-buffer hit ratio over all accesses (0.0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.empties + self.conflicts;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Channel {
    /// Creates an idle channel for a device organized as `org`.
    pub fn new(org: DramOrg) -> Self {
        let banks = vec![BankState::new(); (org.ranks * org.banks) as usize];
        let ranks = (0..org.ranks)
            .map(|_| RankState {
                next_refresh: SimTime::ZERO + SimDuration::from_ns(1), // first REF after warmup
                recent_acts: [SimTime::ZERO; 4],
                n_acts: 0,
            })
            .collect();
        Channel {
            banks,
            ranks,
            org,
            bus_free: SimTime::ZERO,
            free_gaps: VecDeque::with_capacity(MAX_GAPS),
            max_gap_end: SimTime::ZERO,
            stats: ChannelStats::default(),
        }
    }

    /// Claims a data-bus slot of `burst` length no earlier than
    /// `earliest`; prefers filling a recorded idle gap, else queues at
    /// the end of the bus schedule.
    fn claim_bus(&mut self, earliest: SimTime, burst: SimDuration) -> SimTime {
        if earliest + burst <= self.max_gap_end {
            // The gaps are pairwise disjoint and sorted ascending (each
            // new gap opens at the previous bus-free point, and splits
            // insert in place), so every gap ending before
            // `earliest + burst` is unclaimable for this burst and the
            // oldest-first scan may start at the first one ending on or
            // after it — found by binary search instead of walking the
            // dead prefix. Selection is identical to the full scan.
            let from = self
                .free_gaps
                .partition_point(|&(_, ge)| ge < earliest + burst);
            for i in from..self.free_gaps.len() {
                let (gs, ge) = self.free_gaps[i];
                let start = gs.max(earliest);
                if start + burst <= ge {
                    // Split the gap around the claimed slot. The common
                    // case (claim from the gap's front, remainder
                    // survives) edits the slot in place; only a mid-gap
                    // split shifts ring entries.
                    if start == gs {
                        if start + burst < ge {
                            self.free_gaps[i] = (start + burst, ge);
                        } else {
                            self.free_gaps.remove(i);
                        }
                    } else {
                        self.free_gaps[i] = (gs, start);
                        if start + burst < ge {
                            self.free_gaps.insert(i + 1, (start + burst, ge));
                        }
                    }
                    return start;
                }
            }
        }
        let start = earliest.max(self.bus_free);
        if start > self.bus_free {
            self.free_gaps.push_back((self.bus_free, start));
            self.max_gap_end = self.max_gap_end.max(start);
            while self.free_gaps.len() > MAX_GAPS {
                self.free_gaps.pop_front();
            }
        }
        self.bus_free = start + burst;
        start
    }

    fn bank_index(&self, loc: &Location) -> usize {
        (loc.rank * self.org.banks + loc.bank) as usize
    }

    /// Applies any refresh blackouts due before `now` on `rank`.
    ///
    /// Refreshes due since the rank's last access are coalesced: each
    /// missed REF would close the banks and max their next-command
    /// windows with its own `due + tRFC`, and those blackouts increase
    /// monotonically, so applying only the *latest* due refresh leaves
    /// every bank in exactly the state the one-by-one replay would — at
    /// O(banks) per access instead of O(missed · banks).
    fn apply_refresh(&mut self, now: SimTime, rank: u32, t: &TimingDurations) -> bool {
        let first_due = self.ranks[rank as usize].next_refresh;
        if first_due > now {
            return false;
        }
        let refi = SimDuration::from_ns(t.refi_ns);
        let rfc = t.rfc;
        // Number of refreshes with `due <= now` (at least one).
        let missed = (now.since(first_due).as_ns() / t.refi_ns.max(1)) + 1;
        let last_due = first_due + SimDuration::from_ns((missed - 1) * t.refi_ns);
        let blocked_until = last_due + rfc;
        let base = rank * self.org.banks;
        for b in 0..self.org.banks {
            self.banks[(base + b) as usize].block_until(blocked_until);
        }
        self.ranks[rank as usize].next_refresh = last_due + refi;
        blocked_until > now
    }

    /// Earliest time a new ACT may issue on `rank` given tFAW and tRRD.
    fn act_gate(&self, rank: u32, t: &TimingDurations) -> SimTime {
        let rs = &self.ranks[rank as usize];
        let mut gate = SimTime::ZERO;
        if rs.n_acts >= 4 {
            // The 4th-most-recent ACT opens the tFAW window.
            gate = gate.max(rs.recent_acts[0] + t.faw);
        }
        if rs.n_acts > 0 {
            gate = gate.max(rs.recent_acts[rs.n_acts - 1] + t.rrd);
        }
        gate
    }

    /// Schedules one 64 B access arriving at `now`; returns the instant the
    /// data burst completes on the bus.
    pub fn access(
        &mut self,
        now: SimTime,
        loc: &Location,
        op: MemOp,
        t: &TimingDurations,
    ) -> SimTime {
        if self.apply_refresh(now, loc.rank, t) {
            self.stats.refresh_stalls += 1;
        }

        let gate = self.act_gate(loc.rank, t);
        let idx = self.bank_index(loc);
        let acts_before = self.banks[idx].last_act();
        let (cas_ready, outcome) = self.banks[idx].prepare(now, gate, loc.row, t);

        match outcome {
            RowOutcome::Hit => self.stats.hits += 1,
            RowOutcome::Empty => self.stats.empties += 1,
            RowOutcome::Conflict => self.stats.conflicts += 1,
        }
        if outcome != RowOutcome::Hit {
            let act_at = self.banks[idx].last_act();
            debug_assert!(act_at >= acts_before);
            self.ranks[loc.rank as usize].record_act(act_at);
        }

        // The data burst must find a free slot on the shared bus; if the
        // bus is busy, the column command slips until the slot aligns.
        let cas_to_data = match op {
            MemOp::Read => t.cl,
            MemOp::Write => t.cwl,
        };
        let earliest_data = cas_ready + cas_to_data;
        let burst = t.burst;
        let data_start = self.claim_bus(earliest_data, burst);
        let cas_at = SimTime::from_ns(data_start.as_ns() - cas_to_data.as_ns());

        match op {
            MemOp::Read => {
                self.banks[idx].complete_read(cas_at, t);
                self.stats.reads += 1;
            }
            MemOp::Write => {
                self.banks[idx].complete_write(cas_at, t);
                self.stats.writes += 1;
            }
        }
        self.stats.bytes += 64;
        data_start + burst
    }

    /// Time the data bus next frees up.
    pub fn bus_free_at(&self) -> SimTime {
        self.bus_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramTimings;

    fn org() -> DramOrg {
        DramOrg {
            channels: 1,
            ranks: 1,
            banks: 4,
            row_bytes: 8192,
            bus_bytes: 8,
            capacity_bytes: 1 << 30,
        }
    }

    fn t() -> TimingDurations {
        DramTimings::ddr5_4800().durations()
    }

    fn loc(bank: u32, row: u64) -> Location {
        Location {
            channel: 0,
            rank: 0,
            bank,
            row,
        }
    }

    #[test]
    fn row_hits_stream_at_bus_rate() {
        let mut ch = Channel::new(org());
        let tt = t();
        let first = ch.access(SimTime::ZERO, &loc(0, 1), MemOp::Read, &tt);
        let second = ch.access(SimTime::ZERO, &loc(0, 1), MemOp::Read, &tt);
        // Back-to-back hits are separated by exactly one burst.
        assert_eq!(second.since(first), tt.burst);
        assert_eq!(ch.stats.hits, 1);
        assert_eq!(ch.stats.empties, 1);
    }

    #[test]
    fn different_banks_overlap_row_preparation() {
        let tt = t();
        // Same bank, different rows: serialized by tRC.
        let mut same = Channel::new(org());
        same.access(SimTime::ZERO, &loc(0, 1), MemOp::Read, &tt);
        let same_done = same.access(SimTime::ZERO, &loc(0, 2), MemOp::Read, &tt);
        // Different banks: row preparation overlaps.
        let mut diff = Channel::new(org());
        diff.access(SimTime::ZERO, &loc(0, 1), MemOp::Read, &tt);
        let diff_done = diff.access(SimTime::ZERO, &loc(1, 2), MemOp::Read, &tt);
        assert!(
            diff_done < same_done,
            "bank-level parallelism should win: {diff_done} vs {same_done}"
        );
    }

    #[test]
    fn bus_serializes_bursts_across_banks() {
        let tt = t();
        let mut ch = Channel::new(org());
        let a = ch.access(SimTime::ZERO, &loc(0, 1), MemOp::Read, &tt);
        let b = ch.access(SimTime::ZERO, &loc(1, 1), MemOp::Read, &tt);
        assert!(b.since(a) >= tt.burst);
    }

    #[test]
    fn tfaw_throttles_a_fifth_activate() {
        let tt = t();
        let mut ch = Channel::new(DramOrg { banks: 8, ..org() });
        let mut last = SimTime::ZERO;
        for bank in 0..5 {
            last = ch.access(SimTime::ZERO, &loc(bank, 1), MemOp::Read, &tt);
        }
        // The 5th activate cannot start before ACT#1 + tFAW.
        let min_done = SimTime::ZERO + tt.faw + tt.rcd + tt.cl + tt.burst;
        assert!(last >= min_done, "last={last} min={min_done}");
    }

    #[test]
    fn refresh_eventually_stalls_accesses() {
        let tt = t();
        let mut ch = Channel::new(org());
        // Walk time far past several tREFI intervals.
        for i in 0..100u64 {
            let now = SimTime::from_ns(i * 1000);
            ch.access(now, &loc(0, i), MemOp::Read, &tt);
        }
        // Refresh bookkeeping advanced past `now`.
        assert!(ch.ranks[0].next_refresh > SimTime::ZERO + SimDuration::from_ns(tt.refi_ns));
    }

    #[test]
    fn writes_count_separately_and_move_bytes() {
        let tt = t();
        let mut ch = Channel::new(org());
        ch.access(SimTime::ZERO, &loc(0, 1), MemOp::Write, &tt);
        ch.access(SimTime::ZERO, &loc(0, 1), MemOp::Read, &tt);
        assert_eq!(ch.stats.writes, 1);
        assert_eq!(ch.stats.reads, 1);
        assert_eq!(ch.stats.bytes, 128);
    }

    #[test]
    fn hit_ratio_reflects_locality() {
        let tt = t();
        let mut ch = Channel::new(org());
        for _ in 0..9 {
            ch.access(SimTime::ZERO, &loc(0, 1), MemOp::Read, &tt);
        }
        let r = ch.stats.hit_ratio();
        assert!(r > 0.8, "expected high hit ratio, got {r}");
    }
}
