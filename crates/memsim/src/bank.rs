//! Per-bank DRAM state machine.
//!
//! A bank tracks which row its row buffer holds and the timestamps of the
//! last ACT / read / write, from which the legality windows for the next
//! command follow (tRAS, tRC, tRTP, tWR, tRP, tRCD).

use simkit::SimTime;

use crate::config::TimingDurations;

/// Outcome of directing one access at a bank — determines latency class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Row buffer already held the target row: CAS only.
    Hit,
    /// Row buffer was empty (after refresh/precharge): ACT + CAS.
    Empty,
    /// Row buffer held a different row: PRE + ACT + CAS.
    Conflict,
}

/// One DRAM bank's timing state.
#[derive(Debug, Clone)]
pub struct BankState {
    open_row: Option<u64>,
    /// When the last ACT was issued.
    last_act: SimTime,
    /// Earliest time the next ACT may issue (covers tRC / tRP chains).
    next_act_ok: SimTime,
    /// Earliest time a PRE may issue (covers tRAS / tRTP / tWR).
    next_pre_ok: SimTime,
    /// Earliest time a CAS (RD/WR) may issue (covers tRCD).
    next_cas_ok: SimTime,
}

impl Default for BankState {
    fn default() -> Self {
        BankState {
            open_row: None,
            last_act: SimTime::ZERO,
            next_act_ok: SimTime::ZERO,
            next_pre_ok: SimTime::ZERO,
            next_cas_ok: SimTime::ZERO,
        }
    }
}

impl BankState {
    /// Creates a bank with all timing windows expired and no open row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Time of the most recent ACT (used for rank-level tFAW tracking).
    pub fn last_act(&self) -> SimTime {
        self.last_act
    }

    /// Schedules the row-preparation phase of an access to `row` arriving
    /// at `earliest`. Returns `(cas_issue_time, outcome)`: the first
    /// instant a RD/WR column command may issue, and whether this was a
    /// hit, an empty-row activate, or a conflict.
    ///
    /// `act_allowed_at` carries rank-level constraints (tFAW, tRRD) into
    /// the bank; pass `earliest` when none apply.
    pub fn prepare(
        &mut self,
        earliest: SimTime,
        act_allowed_at: SimTime,
        row: u64,
        t: &TimingDurations,
    ) -> (SimTime, RowOutcome) {
        match self.open_row {
            Some(open) if open == row => {
                let at = earliest.max(self.next_cas_ok);
                (at, RowOutcome::Hit)
            }
            Some(_) => {
                // PRE then ACT then CAS.
                let pre_at = earliest.max(self.next_pre_ok);
                let act_at = (pre_at + t.rp).max(self.next_act_ok).max(act_allowed_at);
                self.activate(act_at, row, t);
                (self.next_cas_ok, RowOutcome::Conflict)
            }
            None => {
                let act_at = earliest.max(self.next_act_ok).max(act_allowed_at);
                self.activate(act_at, row, t);
                (self.next_cas_ok, RowOutcome::Empty)
            }
        }
    }

    fn activate(&mut self, at: SimTime, row: u64, t: &TimingDurations) {
        self.open_row = Some(row);
        self.last_act = at;
        self.next_cas_ok = at + t.rcd;
        self.next_pre_ok = at + t.ras;
        self.next_act_ok = at + t.rc;
    }

    /// Records that a read burst issued at `cas_at`; updates the earliest
    /// legal precharge (tRTP).
    pub fn complete_read(&mut self, cas_at: SimTime, t: &TimingDurations) {
        self.next_pre_ok = self.next_pre_ok.max(cas_at + t.rtp);
    }

    /// Records that a write burst issued at `cas_at`; updates the earliest
    /// legal precharge (CWL + burst + tWR).
    pub fn complete_write(&mut self, cas_at: SimTime, t: &TimingDurations) {
        let end_of_burst = cas_at + t.cwl + t.burst;
        self.next_pre_ok = self.next_pre_ok.max(end_of_burst + t.wr);
    }

    /// Forces the bank closed and blocks it until `until` (refresh).
    pub fn block_until(&mut self, until: SimTime) {
        self.open_row = None;
        self.next_act_ok = self.next_act_ok.max(until);
        self.next_cas_ok = self.next_cas_ok.max(until);
        self.next_pre_ok = self.next_pre_ok.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramTimings;

    fn t() -> TimingDurations {
        DramTimings::ddr5_4800().durations()
    }

    #[test]
    fn first_access_is_an_empty_activate() {
        let mut b = BankState::new();
        let (cas, outcome) = b.prepare(SimTime::ZERO, SimTime::ZERO, 7, &t());
        assert_eq!(outcome, RowOutcome::Empty);
        assert_eq!(cas, SimTime::ZERO + t().rcd);
        assert_eq!(b.open_row(), Some(7));
    }

    #[test]
    fn second_access_same_row_is_a_hit() {
        let mut b = BankState::new();
        let (cas1, _) = b.prepare(SimTime::ZERO, SimTime::ZERO, 7, &t());
        b.complete_read(cas1, &t());
        let (cas2, outcome) = b.prepare(cas1, cas1, 7, &t());
        assert_eq!(outcome, RowOutcome::Hit);
        assert_eq!(cas2, cas1); // no extra row preparation
    }

    #[test]
    fn conflict_pays_pre_act_and_respects_tras() {
        let tt = t();
        let mut b = BankState::new();
        let (cas1, _) = b.prepare(SimTime::ZERO, SimTime::ZERO, 1, &tt);
        b.complete_read(cas1, &tt);
        let (cas2, outcome) = b.prepare(cas1, cas1, 2, &tt);
        assert_eq!(outcome, RowOutcome::Conflict);
        // PRE cannot issue before ACT + tRAS; CAS then waits tRP + tRCD.
        let act0 = SimTime::ZERO;
        let min_cas2 = act0 + tt.ras + tt.rp + tt.rcd;
        assert!(cas2 >= min_cas2, "cas2={cas2} min={min_cas2}");
    }

    #[test]
    fn conflicts_never_beat_trc() {
        let tt = t();
        let mut b = BankState::new();
        let (c1, _) = b.prepare(SimTime::ZERO, SimTime::ZERO, 1, &tt);
        b.complete_read(c1, &tt);
        let (_c2, _) = b.prepare(c1, c1, 2, &tt);
        // The second ACT must be ≥ tRC after the first.
        assert!(b.last_act() >= SimTime::ZERO + tt.rc);
    }

    #[test]
    fn write_recovery_delays_precharge_beyond_read() {
        let tt = t();
        let mut br = BankState::new();
        let (c, _) = br.prepare(SimTime::ZERO, SimTime::ZERO, 1, &tt);
        br.complete_read(c, &tt);
        let (cas_after_read, _) = br.prepare(c, c, 2, &tt);

        let mut bw = BankState::new();
        let (c, _) = bw.prepare(SimTime::ZERO, SimTime::ZERO, 1, &tt);
        bw.complete_write(c, &tt);
        let (cas_after_write, _) = bw.prepare(c, c, 2, &tt);

        assert!(
            cas_after_write > cas_after_read,
            "write recovery should push the conflict turnaround later"
        );
    }

    #[test]
    fn refresh_block_closes_the_row() {
        let tt = t();
        let mut b = BankState::new();
        b.prepare(SimTime::ZERO, SimTime::ZERO, 3, &tt);
        b.block_until(SimTime::from_ns(500));
        assert_eq!(b.open_row(), None);
        let (cas, outcome) = b.prepare(SimTime::from_ns(100), SimTime::from_ns(100), 3, &tt);
        assert_eq!(outcome, RowOutcome::Empty);
        assert!(cas >= SimTime::from_ns(500));
    }

    #[test]
    fn rank_constraint_delays_activate() {
        let tt = t();
        let mut b = BankState::new();
        let gate = SimTime::from_ns(1000);
        let (cas, _) = b.prepare(SimTime::ZERO, gate, 1, &tt);
        assert!(cas >= gate + tt.rcd);
    }
}
