//! DRAM configuration: organization, timing parameters, and the presets
//! from the paper's Table II.

use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// DRAM timing parameters, stored in device clock cycles plus the clock
/// period in picoseconds (the form DRAM datasheets and Table II use).
///
/// # Examples
///
/// ```
/// use memsim::DramTimings;
/// let t = DramTimings::ddr5_4800();
/// assert_eq!(t.cl, 28);
/// assert!(t.cas_latency().as_ns() >= 11); // 28 cycles × 417 ps
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTimings {
    /// CAS latency (read command → first data), cycles.
    pub cl: u32,
    /// RAS-to-CAS delay (ACT → RD/WR), cycles.
    pub rcd: u32,
    /// Row precharge time (PRE → ACT), cycles.
    pub rp: u32,
    /// Row active time (ACT → PRE minimum), cycles.
    pub ras: u32,
    /// Row cycle (ACT → ACT same bank), cycles.
    pub rc: u32,
    /// Write recovery (end of write burst → PRE), cycles.
    pub wr: u32,
    /// Read-to-precharge (RD → PRE), cycles.
    pub rtp: u32,
    /// CAS write latency (WR command → first data), cycles.
    pub cwl: u32,
    /// Refresh cycle time (REF → next command), cycles.
    pub rfc: u32,
    /// Four-activate window, cycles.
    pub faw: u32,
    /// ACT-to-ACT different banks, same rank, cycles.
    pub rrd: u32,
    /// Burst length in transfers (DDR5 = 16, DDR4 = 8).
    pub burst_length: u32,
    /// Average refresh interval, nanoseconds.
    pub refi_ns: u64,
    /// Clock period, picoseconds.
    pub tck_ps: u64,
}

impl DramTimings {
    /// DDR5-4800 timings from Table II: 28-28-28-52, tRC 79, tWR 48,
    /// tRTP 12, tCWL 22, nRFC1 30. Table II quotes tCK as 625 ps, which
    /// contradicts its own 4800 MT/s line (DDR5-4800 runs a 2400 MHz
    /// clock, tCK ≈ 417 ps); we keep the datasheet-consistent 417 ps so
    /// the peak-bandwidth arithmetic the paper relies on (12 channels of
    /// DDR5 saturating ahead of CXL) holds.
    pub fn ddr5_4800() -> Self {
        DramTimings {
            cl: 28,
            rcd: 28,
            rp: 28,
            ras: 52,
            rc: 79,
            wr: 48,
            rtp: 12,
            cwl: 22,
            rfc: 30,
            faw: 32,
            rrd: 8,
            burst_length: 16,
            refi_ns: 3900,
            tck_ps: 417,
        }
    }

    /// DDR4-3200 timings for the CXL-attached expanders. §III notes the
    /// "CXL-attached DDR4 memory has a low refresh rate over CPU-attached
    /// DDR5" — the longer tREFI reflects that.
    pub fn ddr4_3200() -> Self {
        DramTimings {
            cl: 22,
            rcd: 22,
            rp: 22,
            ras: 52,
            rc: 74,
            wr: 24,
            rtp: 12,
            cwl: 16,
            rfc: 35,
            faw: 34,
            rrd: 8,
            burst_length: 8,
            refi_ns: 7800,
            tck_ps: 625,
        }
    }

    /// Converts `cycles` device cycles to a wall-clock duration (rounding
    /// up to whole nanoseconds, consistent with the paper's 1 ns tick).
    pub fn cycles(&self, cycles: u32) -> SimDuration {
        SimDuration::from_ps_ceil(cycles as u64 * self.tck_ps)
    }

    /// ACT → readable data duration (tRCD + CL).
    pub fn act_to_data(&self) -> SimDuration {
        self.cycles(self.rcd + self.cl)
    }

    /// Read-command-to-first-data latency.
    pub fn cas_latency(&self) -> SimDuration {
        self.cycles(self.cl)
    }

    /// Duration one 64 B line occupies the data bus: 8 transfers on an
    /// 8-byte bus, i.e. 4 clock cycles at double data rate.
    pub fn burst_time(&self) -> SimDuration {
        self.cycles(4)
    }

    /// Precomputes every duration the channel/bank state machines use.
    pub fn durations(&self) -> TimingDurations {
        TimingDurations {
            cl: self.cycles(self.cl),
            cwl: self.cycles(self.cwl),
            rcd: self.cycles(self.rcd),
            rp: self.cycles(self.rp),
            ras: self.cycles(self.ras),
            rc: self.cycles(self.rc),
            wr: self.cycles(self.wr),
            rtp: self.cycles(self.rtp),
            rfc: self.cycles(self.rfc),
            faw: self.cycles(self.faw),
            rrd: self.cycles(self.rrd),
            burst: self.burst_time(),
            refi_ns: self.refi_ns,
        }
    }
}

/// [`DramTimings`] with every cycle count pre-converted to a
/// [`SimDuration`].
///
/// `cycles()` pays a picosecond→nanosecond ceiling division; the access
/// path needs up to ten such conversions per 64 B line, which made the
/// conversion itself a measurable slice of simulation time. The values
/// here are exactly `DramTimings::cycles(...)` of the corresponding
/// field (asserted by `durations_match_cycles` below), so state machines
/// consuming this struct are bit-identical to ones converting on the
/// fly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingDurations {
    /// CAS latency.
    pub cl: SimDuration,
    /// CAS write latency.
    pub cwl: SimDuration,
    /// RAS-to-CAS delay.
    pub rcd: SimDuration,
    /// Row precharge time.
    pub rp: SimDuration,
    /// Row active time.
    pub ras: SimDuration,
    /// Row cycle.
    pub rc: SimDuration,
    /// Write recovery.
    pub wr: SimDuration,
    /// Read-to-precharge.
    pub rtp: SimDuration,
    /// Refresh cycle time.
    pub rfc: SimDuration,
    /// Four-activate window.
    pub faw: SimDuration,
    /// ACT-to-ACT, different banks, same rank.
    pub rrd: SimDuration,
    /// Data-bus occupancy of one 64 B burst.
    pub burst: SimDuration,
    /// Average refresh interval, nanoseconds.
    pub refi_ns: u64,
}

/// Physical organization of one DRAM device (one set of channels behind a
/// single controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramOrg {
    /// Independent channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Bus width in bytes (8 for a standard DIMM channel).
    pub bus_bytes: u32,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
}

impl DramOrg {
    /// Table II local configuration: 4 channels × 2 ranks, 64 GB DIMMs.
    pub fn table2_local() -> Self {
        DramOrg {
            channels: 4,
            ranks: 2,
            banks: 16,
            row_bytes: 8192,
            bus_bytes: 8,
            capacity_bytes: 4 * 64 * (1 << 30),
        }
    }

    /// A single-channel CXL expander backing one Type 3 device (the paper
    /// enables CXL memory through four channels of DDR4 across devices;
    /// each simulated device owns one).
    pub fn cxl_expander() -> Self {
        DramOrg {
            channels: 1,
            ranks: 2,
            banks: 16,
            row_bytes: 8192,
            bus_bytes: 8,
            capacity_bytes: 64 * (1 << 30),
        }
    }
}

/// Complete configuration for a [`crate::DramDevice`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Timing parameters.
    pub timings: DramTimings,
    /// Organization.
    pub org: DramOrg,
    /// How physical addresses map onto (channel, rank, bank, row, column).
    pub mapping: crate::AddressMapping,
}

impl DramConfig {
    /// The CPU-attached DDR5 pool from Table II.
    pub fn ddr5_4800_local() -> Self {
        DramConfig {
            timings: DramTimings::ddr5_4800(),
            org: DramOrg::table2_local(),
            mapping: crate::AddressMapping::CacheLineInterleave,
        }
    }

    /// One DDR4 CXL expander device.
    pub fn ddr4_cxl_expander() -> Self {
        DramConfig {
            timings: DramTimings::ddr4_3200(),
            org: DramOrg::cxl_expander(),
            mapping: crate::AddressMapping::CacheLineInterleave,
        }
    }

    /// Peak data-bus bandwidth of the whole device in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        // transfers/s = 2 / tCK ; bytes/s = transfers × bus width × channels
        let transfers_per_ns = 2000.0 / self.timings.tck_ps as f64;
        transfers_per_ns * self.org.bus_bytes as f64 * self.org.channels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr5_cycle_conversion_rounds_up() {
        let t = DramTimings::ddr5_4800();
        // 28 cycles × 417 ps = 11.676 ns → 12 ns.
        assert_eq!(t.cycles(t.cl).as_ns(), 12);
    }

    #[test]
    fn ddr5_peak_bandwidth_matches_datasheet() {
        let c = DramConfig::ddr5_4800_local();
        // 4800 MT/s × 8 B × 4 channels = 153.6 GB/s.
        let bw = c.peak_bandwidth_gbps();
        assert!((bw - 153.6).abs() < 0.5, "got {bw}");
    }

    #[test]
    fn ddr4_peak_bandwidth_matches_datasheet() {
        let c = DramConfig::ddr4_cxl_expander();
        // 3200 MT/s × 8 B × 1 channel = 25.6 GB/s.
        let bw = c.peak_bandwidth_gbps();
        assert!((bw - 25.6).abs() < 0.5, "got {bw}");
    }

    #[test]
    fn durations_match_cycles() {
        for t in [DramTimings::ddr5_4800(), DramTimings::ddr4_3200()] {
            let d = t.durations();
            assert_eq!(d.cl, t.cycles(t.cl));
            assert_eq!(d.cwl, t.cycles(t.cwl));
            assert_eq!(d.rcd, t.cycles(t.rcd));
            assert_eq!(d.rp, t.cycles(t.rp));
            assert_eq!(d.ras, t.cycles(t.ras));
            assert_eq!(d.rc, t.cycles(t.rc));
            assert_eq!(d.wr, t.cycles(t.wr));
            assert_eq!(d.rtp, t.cycles(t.rtp));
            assert_eq!(d.rfc, t.cycles(t.rfc));
            assert_eq!(d.faw, t.cycles(t.faw));
            assert_eq!(d.rrd, t.cycles(t.rrd));
            assert_eq!(d.burst, t.burst_time());
            assert_eq!(d.refi_ns, t.refi_ns);
        }
    }

    #[test]
    fn burst_time_is_four_cycles() {
        let t = DramTimings::ddr5_4800();
        assert_eq!(t.burst_time(), t.cycles(4));
        let t4 = DramTimings::ddr4_3200();
        assert_eq!(t4.burst_time(), t4.cycles(4));
    }

    #[test]
    fn ddr4_is_slower_than_ddr5_per_burst() {
        assert!(DramTimings::ddr4_3200().burst_time() > DramTimings::ddr5_4800().burst_time());
    }

    #[test]
    fn act_to_data_combines_rcd_and_cl() {
        let t = DramTimings::ddr5_4800();
        assert_eq!(t.act_to_data(), t.cycles(t.rcd + t.cl));
    }
}
