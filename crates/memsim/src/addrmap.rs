//! Physical-address decomposition into DRAM coordinates.

use serde::{Deserialize, Serialize};

use crate::config::DramOrg;

/// Where one 64-byte access lands inside the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
}

/// Address-interleaving policy.
///
/// `CacheLineInterleave` spreads consecutive cache lines round-robin over
/// channels then banks, maximizing parallelism for streaming access —
/// the policy real memory controllers default to and the one the paper's
/// bandwidth-expansion argument assumes. `RowInterleave` keeps whole rows
/// on one bank, maximizing row-buffer locality for sequential scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressMapping {
    /// 64 B granularity: channel bits lowest, then bank, then rank.
    CacheLineInterleave,
    /// Row granularity: consecutive addresses fill a row before moving on.
    RowInterleave,
}

impl AddressMapping {
    /// Decodes `addr` into DRAM coordinates for a device organized as
    /// `org`. Addresses beyond capacity wrap (the simulation treats the
    /// device as its own physical address space).
    pub fn decode(self, addr: u64, org: &DramOrg) -> Location {
        let line = (addr % org.capacity_bytes.max(1)) / 64;
        let ch = org.channels as u64;
        let ba = org.banks as u64;
        let ra = org.ranks as u64;
        let lines_per_row = (org.row_bytes / 64).max(1);
        match self {
            AddressMapping::CacheLineInterleave => {
                // line = (((row * ranks + rank) * banks + bank) * channels + channel)
                //        × lines_per_row + line_in_row   — channel varies fastest.
                let channel = line % ch;
                let rest = line / ch;
                let in_row = rest % lines_per_row;
                let _ = in_row;
                let rest = rest / lines_per_row;
                let bank = rest % ba;
                let rest = rest / ba;
                let rank = rest % ra;
                let row = rest / ra;
                Location {
                    channel: channel as u32,
                    rank: rank as u32,
                    bank: bank as u32,
                    row,
                }
            }
            AddressMapping::RowInterleave => {
                let rest = line / lines_per_row;
                let channel = rest % ch;
                let rest = rest / ch;
                let bank = rest % ba;
                let rest = rest / ba;
                let rank = rest % ra;
                let row = rest / ra;
                Location {
                    channel: channel as u32,
                    rank: rank as u32,
                    bank: bank as u32,
                    row,
                }
            }
        }
    }
}

/// Precomputed decode state for one `(mapping, org)` pair.
///
/// [`AddressMapping::decode`] re-derives every divisor from the
/// organization on each call and pays a hardware divide per level of the
/// hierarchy. The device front-end instead builds a `LineDecoder` once:
/// when every divisor is a power of two (true of every stock
/// organization) the whole decode chain collapses to shifts and masks,
/// and otherwise it falls back to the reference path. Both paths produce
/// bit-identical [`Location`]s — `decode_is_cached_exactly` in the tests
/// below sweeps both mappings against the reference.
#[derive(Debug, Clone, Copy)]
pub struct LineDecoder {
    mapping: AddressMapping,
    org: DramOrg,
    /// Shift/mask constants, present only when every divisor is a power
    /// of two.
    fast: Option<DecodeShifts>,
}

#[derive(Debug, Clone, Copy)]
struct DecodeShifts {
    /// `log2(capacity_bytes)` wrap mask.
    cap_mask: u64,
    /// `log2(channels)` / its mask.
    ch_shift: u32,
    ch_mask: u64,
    /// `log2(lines_per_row)`.
    lpr_shift: u32,
    /// `log2(banks)` / its mask.
    ba_shift: u32,
    ba_mask: u64,
    /// `log2(ranks)` / its mask.
    ra_shift: u32,
    ra_mask: u64,
}

impl LineDecoder {
    /// Builds the decoder for `mapping` over `org`.
    pub fn new(mapping: AddressMapping, org: DramOrg) -> Self {
        let cap = org.capacity_bytes.max(1);
        let lpr = (org.row_bytes / 64).max(1);
        let pow2 = |x: u64| x.is_power_of_two();
        let fast = (pow2(cap)
            && pow2(org.channels as u64)
            && pow2(lpr)
            && pow2(org.banks as u64)
            && pow2(org.ranks as u64))
        .then(|| DecodeShifts {
            cap_mask: cap - 1,
            ch_shift: (org.channels as u64).trailing_zeros(),
            ch_mask: org.channels as u64 - 1,
            lpr_shift: lpr.trailing_zeros(),
            ba_shift: (org.banks as u64).trailing_zeros(),
            ba_mask: org.banks as u64 - 1,
            ra_shift: (org.ranks as u64).trailing_zeros(),
            ra_mask: org.ranks as u64 - 1,
        });
        LineDecoder { mapping, org, fast }
    }

    /// Decodes `addr` exactly as [`AddressMapping::decode`] would.
    #[inline]
    pub fn decode(&self, addr: u64) -> Location {
        let Some(s) = &self.fast else {
            return self.mapping.decode(addr, &self.org);
        };
        let line = (addr & s.cap_mask) >> 6;
        let (channel, rest) = match self.mapping {
            AddressMapping::CacheLineInterleave => {
                let channel = line & s.ch_mask;
                let rest = (line >> s.ch_shift) >> s.lpr_shift;
                (channel, rest)
            }
            AddressMapping::RowInterleave => {
                let rest = line >> s.lpr_shift;
                (rest & s.ch_mask, rest >> s.ch_shift)
            }
        };
        Location {
            channel: channel as u32,
            rank: ((rest >> s.ba_shift) & s.ra_mask) as u32,
            bank: (rest & s.ba_mask) as u32,
            row: (rest >> s.ba_shift) >> s.ra_shift,
        }
    }

    /// The mapping this decoder implements.
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> DramOrg {
        DramOrg {
            channels: 4,
            ranks: 2,
            banks: 16,
            row_bytes: 8192,
            bus_bytes: 8,
            capacity_bytes: 1 << 30,
        }
    }

    #[test]
    fn cacheline_interleave_rotates_channels() {
        let m = AddressMapping::CacheLineInterleave;
        let o = org();
        for i in 0..16u64 {
            let loc = m.decode(i * 64, &o);
            assert_eq!(loc.channel, (i % 4) as u32, "line {i}");
        }
    }

    #[test]
    fn row_interleave_keeps_row_on_one_channel() {
        let m = AddressMapping::RowInterleave;
        let o = org();
        let first = m.decode(0, &o);
        for i in 0..(o.row_bytes / 64) {
            let loc = m.decode(i * 64, &o);
            assert_eq!(loc.channel, first.channel);
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.row, first.row);
        }
        // The next row moves to a different channel.
        let next = m.decode(o.row_bytes, &o);
        assert_ne!(next.channel, first.channel);
    }

    #[test]
    fn decode_is_within_bounds() {
        let o = org();
        for m in [
            AddressMapping::CacheLineInterleave,
            AddressMapping::RowInterleave,
        ] {
            for i in 0..10_000u64 {
                let loc = m.decode(i * 64 + 3, &o);
                assert!(loc.channel < o.channels);
                assert!(loc.rank < o.ranks);
                assert!(loc.bank < o.banks);
            }
        }
    }

    #[test]
    fn decode_is_cached_exactly() {
        // The precomputed decoder must agree with the reference decode
        // bit-for-bit, on both mappings, for pow2 and non-pow2 layouts.
        let non_pow2 = DramOrg {
            channels: 3,
            ..org()
        };
        for o in [org(), non_pow2] {
            for m in [
                AddressMapping::CacheLineInterleave,
                AddressMapping::RowInterleave,
            ] {
                let d = LineDecoder::new(m, o);
                assert_eq!(d.mapping(), m);
                let mut addr = 0u64;
                for i in 0..50_000u64 {
                    // Stride through lines, odd offsets, and wraps.
                    addr = addr.wrapping_mul(6364136223846793005).wrapping_add(i);
                    assert_eq!(d.decode(addr), m.decode(addr, &o), "addr {addr:#x}");
                }
            }
        }
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let o = org();
        let m = AddressMapping::CacheLineInterleave;
        assert_eq!(m.decode(64, &o), m.decode(o.capacity_bytes + 64, &o));
    }

    #[test]
    fn same_line_same_location() {
        let o = org();
        let m = AddressMapping::CacheLineInterleave;
        assert_eq!(m.decode(128, &o), m.decode(129, &o));
        assert_eq!(m.decode(128, &o), m.decode(191, &o));
    }
}
