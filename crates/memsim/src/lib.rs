//! `memsim` — an event-driven DDR4/DDR5 timing model.
//!
//! This crate is the workspace's substitute for Ramulator 2.0, which the
//! paper wraps for cycle-level memory simulation (§VI-A). It models the
//! pieces of DRAM behaviour the paper's results actually depend on:
//!
//! * **per-bank state machines** — ACT/PRE/RD/WR legality windows (tRCD,
//!   tRP, tRAS, tRC, tWR, tRTP), so row-buffer hits are fast and conflicts
//!   are slow;
//! * **rank-level constraints** — the tFAW rolling four-activate window
//!   that throttles bank-level parallelism;
//! * **a shared per-channel data bus** — which imposes the channel
//!   bandwidth ceiling that makes DLRM bandwidth-bound in the first place;
//! * **refresh** — periodic tREFI/tRFC blackouts;
//! * **configurable address interleaving** — cache-line vs row granularity
//!   across channels and banks.
//!
//! Scheduling is greedy in arrival order with row-hit-aware bank timing
//! (a first-ready approximation of FR-FCFS): each request is scheduled at
//! the earliest instant every resource it touches is legal. Bank-level
//! parallelism — the effect RecNMP exploits (§VI-C1) — emerges naturally
//! because requests to different banks overlap everywhere except the data
//! bus.
//!
//! # Examples
//!
//! ```
//! use memsim::{DramConfig, DramDevice, MemOp};
//! use simkit::SimTime;
//!
//! let mut dev = DramDevice::new(DramConfig::ddr5_4800_local());
//! let done = dev.access(SimTime::ZERO, 0x4000, MemOp::Read);
//! assert!(done > SimTime::ZERO);
//! ```

#![warn(missing_docs)]

pub mod addrmap;
pub mod bank;
pub mod channel;
pub mod config;
pub mod device;

pub use addrmap::{AddressMapping, LineDecoder, Location};
pub use channel::MemOp;
pub use config::{DramConfig, DramOrg, DramTimings};
pub use device::{DramDevice, DramStats};
