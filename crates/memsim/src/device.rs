//! A whole DRAM device: address mapping plus a set of channels.

use simkit::SimTime;

use crate::addrmap::LineDecoder;
use crate::channel::{Channel, ChannelStats, MemOp};
use crate::config::DramConfig;
use crate::config::TimingDurations;

/// A multi-channel DRAM device (one local pool or one CXL expander).
///
/// # Examples
///
/// ```
/// use memsim::{DramConfig, DramDevice, MemOp};
/// use simkit::SimTime;
///
/// let mut dev = DramDevice::new(DramConfig::ddr4_cxl_expander());
/// let t1 = dev.access(SimTime::ZERO, 0, MemOp::Read);
/// let t2 = dev.access(t1, 64, MemOp::Read);
/// assert!(t2 > t1);
/// assert_eq!(dev.stats().reads, 2);
/// ```
#[derive(Debug, Clone)]
pub struct DramDevice {
    cfg: DramConfig,
    /// Address-decode constants cached at construction so the per-access
    /// front-end never re-derives them from the organization.
    decoder: LineDecoder,
    /// Timing durations pre-converted from cycles at construction.
    durs: TimingDurations,
    channels: Vec<Channel>,
}

/// Aggregated statistics across all channels of a device.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStats {
    /// Row-buffer hits.
    pub hits: u64,
    /// Activates into idle banks.
    pub empties: u64,
    /// Row-buffer conflicts.
    pub conflicts: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Refresh-induced stalls.
    pub refresh_stalls: u64,
}

impl DramStats {
    fn absorb(&mut self, c: &ChannelStats) {
        self.hits += c.hits;
        self.empties += c.empties;
        self.conflicts += c.conflicts;
        self.reads += c.reads;
        self.writes += c.writes;
        self.bytes += c.bytes;
        self.refresh_stalls += c.refresh_stalls;
    }

    /// Row-buffer hit ratio over all accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.empties + self.conflicts;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl DramDevice {
    /// Creates an idle device from `cfg`.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.org.channels)
            .map(|_| Channel::new(cfg.org))
            .collect();
        DramDevice {
            cfg,
            decoder: LineDecoder::new(cfg.mapping, cfg.org),
            durs: cfg.timings.durations(),
            channels,
        }
    }

    /// The device's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Schedules one 64 B access to physical `addr` arriving at `now`;
    /// returns when its data burst completes.
    pub fn access(&mut self, now: SimTime, addr: u64, op: MemOp) -> SimTime {
        simkit::stats::record_events(1);
        let loc = self.decoder.decode(addr);
        self.channels[loc.channel as usize].access(now, &loc, op, &self.durs)
    }

    /// Schedules an access spanning `bytes` starting at `addr` (split into
    /// 64 B lines); returns when the last line completes.
    pub fn access_span(&mut self, now: SimTime, addr: u64, bytes: u64, op: MemOp) -> SimTime {
        let first_line = addr / 64;
        let last_line = (addr + bytes.max(1) - 1) / 64;
        let mut done = now;
        for line in first_line..=last_line {
            done = done.max(self.access(now, line * 64, op));
        }
        done
    }

    /// Aggregated statistics over all channels.
    pub fn stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for ch in &self.channels {
            s.absorb(&ch.stats);
        }
        s
    }

    /// Earliest instant at which every channel's data bus is free.
    pub fn all_quiet_at(&self) -> SimTime {
        self.channels
            .iter()
            .map(|c| c.bus_free_at())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Peak aggregate bandwidth in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.cfg.peak_bandwidth_gbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_run_in_parallel() {
        let cfg = DramConfig::ddr5_4800_local();
        let mut dev = DramDevice::new(cfg);
        // Cache-line interleave puts consecutive lines on different
        // channels, so 4 lines should finish much sooner than 4× one line.
        let single = dev.access(SimTime::ZERO, 0, MemOp::Read);
        let mut dev2 = DramDevice::new(cfg);
        let mut done = SimTime::ZERO;
        for i in 0..4u64 {
            done = done.max(dev2.access(SimTime::ZERO, i * 64, MemOp::Read));
        }
        let serial_estimate = SimTime::from_ns(single.as_ns() * 3);
        assert!(
            done < serial_estimate,
            "done={done} serial≈{serial_estimate}"
        );
    }

    #[test]
    fn access_span_touches_every_line() {
        let mut dev = DramDevice::new(DramConfig::ddr5_4800_local());
        dev.access_span(SimTime::ZERO, 0, 256, MemOp::Read);
        assert_eq!(dev.stats().reads, 4);
        // Sub-line spans still cost one full line.
        let mut dev2 = DramDevice::new(DramConfig::ddr5_4800_local());
        dev2.access_span(SimTime::ZERO, 10, 16, MemOp::Read);
        assert_eq!(dev2.stats().reads, 1);
    }

    #[test]
    fn span_crossing_line_boundary_costs_two() {
        let mut dev = DramDevice::new(DramConfig::ddr5_4800_local());
        dev.access_span(SimTime::ZERO, 60, 16, MemOp::Read);
        assert_eq!(dev.stats().reads, 2);
    }

    #[test]
    fn sustained_stream_approaches_peak_bandwidth() {
        let cfg = DramConfig::ddr5_4800_local();
        let mut dev = DramDevice::new(cfg);
        let lines = 20_000u64;
        let mut done = SimTime::ZERO;
        for i in 0..lines {
            done = done.max(dev.access(SimTime::ZERO, i * 64, MemOp::Read));
        }
        let gbps = (lines * 64) as f64 / done.as_ns() as f64;
        let peak = dev.peak_bandwidth_gbps();
        assert!(
            gbps > peak * 0.5,
            "sequential stream should exceed 50% of peak: {gbps:.1} vs {peak:.1}"
        );
        assert!(
            gbps <= peak * 1.05,
            "cannot beat the bus: {gbps:.1} vs {peak:.1}"
        );
    }

    #[test]
    fn random_access_is_slower_than_sequential() {
        let cfg = DramConfig::ddr5_4800_local();
        let lines = 5_000u64;
        let mut seq = DramDevice::new(cfg);
        let mut seq_done = SimTime::ZERO;
        for i in 0..lines {
            seq_done = seq_done.max(seq.access(SimTime::ZERO, i * 64, MemOp::Read));
        }
        let mut rnd = DramDevice::new(cfg);
        let mut rnd_done = SimTime::ZERO;
        let mut x = 0x12345u64;
        for _ in 0..lines {
            // Simple LCG over a wide range to defeat row locality.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rnd_done = rnd_done.max(rnd.access(SimTime::ZERO, (x % (1 << 32)) & !63, MemOp::Read));
        }
        assert!(
            rnd_done > seq_done,
            "random={rnd_done} sequential={seq_done}"
        );
        assert!(rnd.stats().hit_ratio() < seq.stats().hit_ratio());
    }

    #[test]
    fn stats_aggregate_across_channels() {
        let mut dev = DramDevice::new(DramConfig::ddr5_4800_local());
        for i in 0..16u64 {
            dev.access(SimTime::ZERO, i * 64, MemOp::Read);
        }
        let s = dev.stats();
        assert_eq!(s.reads, 16);
        assert_eq!(s.bytes, 16 * 64);
        assert_eq!(s.hits + s.empties + s.conflicts, 16);
    }
}
