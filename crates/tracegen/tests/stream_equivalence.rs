//! Property tests for [`QueryStream`]: the lazy iterator must be
//! *exactly* the materialized path, for arbitrary workloads — the
//! byte-identity contract every streaming entry point upstream
//! (serving, cluster, sweep runner) rests on.

use proptest::prelude::*;
use simkit::{DetRng, SimTime};
use tracegen::{ArrivalProcess, Distribution, QueryStreamSpec, TraceSpec};

/// Decodes a distribution family from two sampled knobs.
fn distribution(family: u8, knob: f64) -> Distribution {
    match family % 5 {
        0 => Distribution::Random,
        1 => Distribution::Uniform,
        2 => Distribution::Zipfian { s: 0.5 + knob },
        3 => Distribution::Normal {
            sigma_frac: 0.05 + knob / 4.0,
        },
        _ => Distribution::MetaLike {
            reuse_frac: knob.min(0.9),
            s: 1.05,
        },
    }
}

/// Decodes an arrival family from a sampled selector.
fn arrival(family: u8, qps: f64) -> ArrivalProcess {
    match family % 4 {
        0 => ArrivalProcess::Fixed { qps },
        1 => ArrivalProcess::Poisson { qps },
        2 => ArrivalProcess::Bursty {
            qps,
            burst: 0.8,
            dwell_us: 200.0,
        },
        _ => ArrivalProcess::Diurnal {
            qps,
            amplitude: 0.5,
            period_s: 0.001,
        },
    }
}

proptest! {
    /// For arbitrary (distribution, dimensions, arrival, qps, seeds):
    /// every query the stream emits has the timestamp of
    /// `ArrivalProcess::times` and, for every table, the bag of the
    /// materialized `Trace::generate` output.
    #[test]
    fn prop_stream_equals_materialized_trace(
        dist_family in 0u8..5,
        dist_knob in 0.0f64..1.0,
        arrival_family in 0u8..4,
        qps in 10_000.0f64..10_000_000.0,
        n_tables in 1u32..5,
        rows in 16u64..2_000,
        batch_size in 1u32..17,
        n_batches in 1u32..9,
        bag_size in 1u32..9,
        seed in 0u64..u64::MAX,
    ) {
        let spec = QueryStreamSpec {
            trace: TraceSpec {
                distribution: distribution(dist_family, dist_knob),
                n_tables,
                rows_per_table: rows,
                batch_size,
                n_batches,
                bag_size,
                seed,
            },
            arrival: arrival(arrival_family, qps),
            arrival_seed: seed ^ 0x5EED,
        };
        let trace = spec.trace.generate();
        let times: Vec<SimTime> =
            spec.arrival.times(spec.n_queries() as usize, spec.arrival_seed);
        let mut stream = spec.stream();
        for expect_qid in 0..spec.n_queries() {
            let (qid, at) = stream.next_query().expect("stream shorter than trace");
            prop_assert_eq!(qid, expect_qid);
            prop_assert_eq!(at, times[qid as usize]);
            let batch = (qid / batch_size as u64) as usize;
            let sample = (qid % batch_size as u64) as u32;
            for table in 0..n_tables {
                prop_assert_eq!(stream.bag(table), trace.bag(batch, table, sample));
            }
        }
        prop_assert_eq!(stream.next_query(), None);
    }

    /// A checkpoint taken at an arbitrary cursor position (a clone of
    /// the stream) replays the exact continuation — queries, times, and
    /// bags — the original goes on to produce.
    #[test]
    fn prop_checkpointed_stream_resumes_identically(
        dist_family in 0u8..5,
        arrival_family in 0u8..4,
        seed in 0u64..u64::MAX,
        cut_frac in 0.0f64..1.0,
    ) {
        let spec = QueryStreamSpec {
            trace: TraceSpec {
                distribution: distribution(dist_family, 0.5),
                n_tables: 3,
                rows_per_table: 256,
                batch_size: 8,
                n_batches: 6,
                bag_size: 4,
                seed,
            },
            arrival: arrival(arrival_family, 200_000.0),
            arrival_seed: seed.wrapping_add(1),
        };
        let mut stream = spec.stream();
        let cut = (cut_frac * spec.n_queries() as f64) as u64;
        for _ in 0..cut {
            let _ = stream.next_query();
        }
        let mut resumed = stream.clone();
        loop {
            let a = stream.next_query();
            let b = resumed.next_query();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            for table in 0..stream.n_tables() {
                prop_assert_eq!(stream.bag(table), resumed.bag(table));
            }
        }
    }

    /// The RNG cursor underneath it all: a `DetRng` state snapshot
    /// taken mid-stream restores to a generator that replays the exact
    /// continuation.
    #[test]
    fn prop_rng_cursor_round_trips(seed in 0u64..u64::MAX, advance in 0usize..256) {
        let mut g = DetRng::new(seed);
        for _ in 0..advance {
            let _ = g.next_u64();
        }
        let mut restored = DetRng::from_state(g.state());
        prop_assert_eq!(&restored, &g);
        for _ in 0..64 {
            prop_assert_eq!(restored.next_u64(), g.next_u64());
        }
    }
}
