//! The trace container and its generator.

use serde::{Deserialize, Serialize};
use simkit::DetRng;

use crate::dist::{Distribution, Sampler};

/// Row lookups for one table within one batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableLookups {
    /// Table index.
    pub table: u32,
    /// `batch_size × bag_size` row indices, sample-major.
    pub indices: Vec<u64>,
}

/// One inference batch: lookups for every table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// Per-table lookup lists (one entry per table).
    pub tables: Vec<TableLookups>,
}

/// A complete embedding-access trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of tables.
    pub n_tables: u32,
    /// Rows per table.
    pub rows_per_table: u64,
    /// Samples per batch.
    pub batch_size: u32,
    /// Lookups per table per sample.
    pub bag_size: u32,
    /// The batches, in arrival order.
    pub batches: Vec<Batch>,
}

impl Trace {
    /// Total row lookups across the whole trace.
    pub fn total_lookups(&self) -> u64 {
        self.batches
            .iter()
            .map(|b| b.tables.iter().map(|t| t.indices.len() as u64).sum::<u64>())
            .sum()
    }

    /// Iterates over `(batch_idx, table, sample, row)` in arrival order.
    pub fn iter_lookups(&self) -> impl Iterator<Item = (usize, u32, u32, u64)> + '_ {
        self.batches.iter().enumerate().flat_map(move |(bi, b)| {
            b.tables.iter().flat_map(move |t| {
                t.indices
                    .iter()
                    .enumerate()
                    .map(move |(k, &row)| (bi, t.table, k as u32 / self.bag_size, row))
            })
        })
    }

    /// The bag (row indices) for `(table, sample)` within batch `batch`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn bag(&self, batch: usize, table: u32, sample: u32) -> &[u64] {
        let t = &self.batches[batch].tables[table as usize];
        let start = sample as usize * self.bag_size as usize;
        &t.indices[start..start + self.bag_size as usize]
    }
}

/// Everything needed to generate a [`Trace`] deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Index distribution.
    pub distribution: Distribution,
    /// Number of tables.
    pub n_tables: u32,
    /// Rows per table.
    pub rows_per_table: u64,
    /// Samples per batch.
    pub batch_size: u32,
    /// Number of batches.
    pub n_batches: u32,
    /// Lookups per table per sample.
    pub bag_size: u32,
    /// RNG seed; the same spec always yields the same trace.
    pub seed: u64,
}

impl TraceSpec {
    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn generate(&self) -> Trace {
        assert!(
            self.n_tables > 0
                && self.rows_per_table > 0
                && self.batch_size > 0
                && self.n_batches > 0
                && self.bag_size > 0,
            "all trace dimensions must be positive"
        );
        let mut root = DetRng::new(self.seed);
        // One sampler per table: tables have independent popularity
        // structure, matching per-table skew in production traces.
        let mut samplers: Vec<Sampler> = (0..self.n_tables)
            .map(|_| Sampler::new(self.distribution, self.rows_per_table, root.fork()))
            .collect();
        let mut batches = Vec::with_capacity(self.n_batches as usize);
        for _ in 0..self.n_batches {
            let tables = samplers
                .iter_mut()
                .enumerate()
                .map(|(t, s)| TableLookups {
                    table: t as u32,
                    indices: (0..self.batch_size as u64 * self.bag_size as u64)
                        .map(|_| s.next_index())
                        .collect(),
                })
                .collect();
            batches.push(Batch { tables });
        }
        Trace {
            n_tables: self.n_tables,
            rows_per_table: self.rows_per_table,
            batch_size: self.batch_size,
            bag_size: self.bag_size,
            batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TraceSpec {
        TraceSpec {
            distribution: Distribution::Random,
            n_tables: 3,
            rows_per_table: 500,
            batch_size: 8,
            n_batches: 4,
            bag_size: 2,
            seed: 11,
        }
    }

    #[test]
    fn generation_matches_dimensions() {
        let t = spec().generate();
        assert_eq!(t.batches.len(), 4);
        assert_eq!(t.batches[0].tables.len(), 3);
        assert_eq!(t.batches[0].tables[0].indices.len(), 16);
        assert_eq!(t.total_lookups(), 4 * 3 * 16);
    }

    // Determinism doubles as the persistence story: the `TraceSpec` is
    // the canonical serialized form of a trace, and regenerating from a
    // stored spec is a lossless round trip. (A JSON round trip of the
    // full `Trace` needs the real serde; the in-tree stand-in only
    // decorates the derives.)
    #[test]
    fn generation_is_deterministic() {
        assert_eq!(spec().generate(), spec().generate());
        let mut other = spec();
        other.seed = 12;
        assert_ne!(spec().generate(), other.generate());
    }

    #[test]
    fn tables_draw_independent_streams() {
        let t = spec().generate();
        assert_ne!(
            t.batches[0].tables[0].indices,
            t.batches[0].tables[1].indices
        );
    }

    #[test]
    fn bag_slicing_is_consistent_with_iteration() {
        let t = spec().generate();
        let bag = t.bag(1, 2, 3);
        assert_eq!(bag.len(), 2);
        let collected: Vec<u64> = t
            .iter_lookups()
            .filter(|&(b, table, sample, _)| b == 1 && table == 2 && sample == 3)
            .map(|(_, _, _, row)| row)
            .collect();
        assert_eq!(collected, bag);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batches_rejected() {
        let mut s = spec();
        s.n_batches = 0;
        let _ = s.generate();
    }
}
