//! The trace container and its generator.

use serde::{Deserialize, Serialize};
use simkit::DetRng;

use crate::dist::{Distribution, Sampler};

/// Row lookups for one table within one batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableLookups {
    /// Table index.
    pub table: u32,
    /// Row indices, sample-major. In the fixed layout (`offsets ==
    /// None`) this holds `batch_size × bag_size` entries; with offsets,
    /// sample `s` owns `indices[offsets[s]..offsets[s + 1]]`.
    pub indices: Vec<u64>,
    /// CSR sample boundaries for variable-size bags: `batch_size + 1`
    /// non-decreasing positions into `indices` (first 0, last
    /// `indices.len()`). `None` means every sample's bag is exactly
    /// `bag_size` rows — the layout the generator emits. The cluster
    /// router uses offsets to express per-shard *sub-bags* (each shard
    /// sees only the rows it owns, so bags shrink unevenly).
    pub offsets: Option<Vec<u32>>,
}

impl TableLookups {
    /// The fixed `bag_size`-per-sample layout (what [`TraceSpec`]
    /// generates).
    pub fn fixed(table: u32, indices: Vec<u64>) -> Self {
        TableLookups {
            table,
            indices,
            offsets: None,
        }
    }

    /// A variable-bag layout: sample `s` owns
    /// `indices[offsets[s]..offsets[s + 1]]`.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty, does not start at 0, is not
    /// non-decreasing, or does not end at `indices.len()`.
    pub fn with_offsets(table: u32, indices: Vec<u64>, offsets: Vec<u32>) -> Self {
        assert!(
            offsets.first() == Some(&0),
            "offsets must start at 0 (got {:?})",
            offsets.first()
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert_eq!(
            *offsets.last().expect("non-empty offsets") as usize,
            indices.len(),
            "offsets must end at indices.len()"
        );
        TableLookups {
            table,
            indices,
            offsets: Some(offsets),
        }
    }
}

/// One inference batch: lookups for every table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// Per-table lookup lists (one entry per table).
    pub tables: Vec<TableLookups>,
}

/// A complete embedding-access trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of tables.
    pub n_tables: u32,
    /// Rows per table.
    pub rows_per_table: u64,
    /// Samples per batch.
    pub batch_size: u32,
    /// Lookups per table per sample.
    pub bag_size: u32,
    /// The batches, in arrival order.
    pub batches: Vec<Batch>,
}

impl Trace {
    /// Total row lookups across the whole trace.
    pub fn total_lookups(&self) -> u64 {
        self.batches
            .iter()
            .map(|b| b.tables.iter().map(|t| t.indices.len() as u64).sum::<u64>())
            .sum()
    }

    /// Iterates over `(batch_idx, table, sample, row)` in arrival order.
    pub fn iter_lookups(&self) -> impl Iterator<Item = (usize, u32, u32, u64)> + '_ {
        self.batches.iter().enumerate().flat_map(move |(bi, b)| {
            b.tables.iter().flat_map(move |t| {
                (0..self.batch_size).flat_map(move |s| {
                    self.sample_slice(t, s)
                        .iter()
                        .map(move |&row| (bi, t.table, s, row))
                })
            })
        })
    }

    /// The bag (row indices) for `(table, sample)` within batch `batch`.
    /// Fixed layouts slice `bag_size` rows; offset layouts slice the
    /// sample's CSR range (possibly empty).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn bag(&self, batch: usize, table: u32, sample: u32) -> &[u64] {
        self.sample_slice(&self.batches[batch].tables[table as usize], sample)
    }

    /// Sample `sample`'s row slice within one table's lookups.
    fn sample_slice<'a>(&self, t: &'a TableLookups, sample: u32) -> &'a [u64] {
        match &t.offsets {
            Some(off) => {
                &t.indices[off[sample as usize] as usize..off[sample as usize + 1] as usize]
            }
            None => {
                let start = sample as usize * self.bag_size as usize;
                &t.indices[start..start + self.bag_size as usize]
            }
        }
    }
}

/// Everything needed to generate a [`Trace`] deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Index distribution.
    pub distribution: Distribution,
    /// Number of tables.
    pub n_tables: u32,
    /// Rows per table.
    pub rows_per_table: u64,
    /// Samples per batch.
    pub batch_size: u32,
    /// Number of batches.
    pub n_batches: u32,
    /// Lookups per table per sample.
    pub bag_size: u32,
    /// RNG seed; the same spec always yields the same trace.
    pub seed: u64,
}

impl TraceSpec {
    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn generate(&self) -> Trace {
        assert!(
            self.n_tables > 0
                && self.rows_per_table > 0
                && self.batch_size > 0
                && self.n_batches > 0
                && self.bag_size > 0,
            "all trace dimensions must be positive"
        );
        let mut root = DetRng::new(self.seed);
        // One sampler per table: tables have independent popularity
        // structure, matching per-table skew in production traces.
        let mut samplers: Vec<Sampler> = (0..self.n_tables)
            .map(|_| Sampler::new(self.distribution, self.rows_per_table, root.fork()))
            .collect();
        let mut batches = Vec::with_capacity(self.n_batches as usize);
        for _ in 0..self.n_batches {
            let tables = samplers
                .iter_mut()
                .enumerate()
                .map(|(t, s)| {
                    TableLookups::fixed(
                        t as u32,
                        (0..self.batch_size as u64 * self.bag_size as u64)
                            .map(|_| s.next_index())
                            .collect(),
                    )
                })
                .collect();
            batches.push(Batch { tables });
        }
        Trace {
            n_tables: self.n_tables,
            rows_per_table: self.rows_per_table,
            batch_size: self.batch_size,
            bag_size: self.bag_size,
            batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TraceSpec {
        TraceSpec {
            distribution: Distribution::Random,
            n_tables: 3,
            rows_per_table: 500,
            batch_size: 8,
            n_batches: 4,
            bag_size: 2,
            seed: 11,
        }
    }

    #[test]
    fn generation_matches_dimensions() {
        let t = spec().generate();
        assert_eq!(t.batches.len(), 4);
        assert_eq!(t.batches[0].tables.len(), 3);
        assert_eq!(t.batches[0].tables[0].indices.len(), 16);
        assert_eq!(t.total_lookups(), 4 * 3 * 16);
    }

    // Determinism doubles as the persistence story: the `TraceSpec` is
    // the canonical serialized form of a trace, and regenerating from a
    // stored spec is a lossless round trip. (A JSON round trip of the
    // full `Trace` needs the real serde; the in-tree stand-in only
    // decorates the derives.)
    #[test]
    fn generation_is_deterministic() {
        assert_eq!(spec().generate(), spec().generate());
        let mut other = spec();
        other.seed = 12;
        assert_ne!(spec().generate(), other.generate());
    }

    #[test]
    fn tables_draw_independent_streams() {
        let t = spec().generate();
        assert_ne!(
            t.batches[0].tables[0].indices,
            t.batches[0].tables[1].indices
        );
    }

    #[test]
    fn bag_slicing_is_consistent_with_iteration() {
        let t = spec().generate();
        let bag = t.bag(1, 2, 3);
        assert_eq!(bag.len(), 2);
        let collected: Vec<u64> = t
            .iter_lookups()
            .filter(|&(b, table, sample, _)| b == 1 && table == 2 && sample == 3)
            .map(|(_, _, _, row)| row)
            .collect();
        assert_eq!(collected, bag);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batches_rejected() {
        let mut s = spec();
        s.n_batches = 0;
        let _ = s.generate();
    }

    /// A trace whose batch holds variable-size bags via CSR offsets:
    /// sample 0 → 2 rows, sample 1 → 0 rows, sample 2 → 1 row.
    fn offset_trace() -> Trace {
        Trace {
            n_tables: 1,
            rows_per_table: 100,
            batch_size: 3,
            bag_size: 2, // nominal; the offsets override per sample
            batches: vec![Batch {
                tables: vec![TableLookups::with_offsets(
                    0,
                    vec![7, 8, 9],
                    vec![0, 2, 2, 3],
                )],
            }],
        }
    }

    #[test]
    fn offset_bags_slice_their_csr_ranges() {
        let t = offset_trace();
        assert_eq!(t.bag(0, 0, 0), [7, 8]);
        assert_eq!(t.bag(0, 0, 1), &[] as &[u64]);
        assert_eq!(t.bag(0, 0, 2), [9]);
        assert_eq!(t.total_lookups(), 3);
    }

    #[test]
    fn offset_iteration_matches_bag_slicing() {
        let t = offset_trace();
        let collected: Vec<(usize, u32, u32, u64)> = t.iter_lookups().collect();
        assert_eq!(
            collected,
            [(0, 0, 0, 7), (0, 0, 0, 8), (0, 0, 2, 9)],
            "iter_lookups must honor the CSR sample boundaries"
        );
    }

    #[test]
    fn full_offsets_are_equivalent_to_the_fixed_layout() {
        // A CSR layout whose every bag is exactly bag_size rows slices
        // identically to the fixed layout — the bridge the 1-shard
        // cluster byte-identity rests on.
        let fixed = spec().generate();
        let mut csr = fixed.clone();
        for b in &mut csr.batches {
            for t in &mut b.tables {
                let step = fixed.bag_size;
                t.offsets = Some((0..=fixed.batch_size).map(|s| s * step).collect());
            }
        }
        for bi in 0..fixed.batches.len() {
            for table in 0..fixed.n_tables {
                for s in 0..fixed.batch_size {
                    assert_eq!(fixed.bag(bi, table, s), csr.bag(bi, table, s));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "end at indices.len()")]
    fn truncated_offsets_rejected() {
        let _ = TableLookups::with_offsets(0, vec![1, 2, 3], vec![0, 2]);
    }
}
