//! Query arrival processes for open-loop serving experiments.
//!
//! Closed-loop runs feed the simulator batches back-to-back, so load is
//! whatever the engine can absorb. Open-loop serving instead timestamps
//! each query from an *arrival process* at a configured rate and lets
//! the queue build when the engine falls behind — the setup that turns
//! aggregate runtime into a latency-vs-QPS curve. Three families cover
//! the serving literature's standard shapes:
//!
//! * [`ArrivalProcess::Fixed`] — metronome arrivals at exactly `qps`
//!   (the zero-variance baseline; any queueing observed is service-time
//!   variance, not arrival jitter);
//! * [`ArrivalProcess::Poisson`] — exponential inter-arrival gaps, the
//!   classic open-loop model of independent users;
//! * [`ArrivalProcess::Bursty`] — a two-state Markov-modulated Poisson
//!   process (MMPP-2) alternating between a high-rate and a low-rate
//!   state with exponentially distributed dwell times; time-averaged
//!   rate stays `qps` while bursts stress the batcher and queue depth;
//! * [`ArrivalProcess::Diurnal`] — a non-homogeneous Poisson process
//!   whose rate follows a sinusoid of configurable amplitude and period
//!   around `qps`, the load shape of day/night traffic compressed to
//!   simulation time scales. Long-horizon streaming runs use it to
//!   sweep the engine through the latency knee and back within one
//!   trace.
//! * [`ArrivalProcess::Flash`] — the diurnal base with a crowd spike:
//!   a `flash:<mult>:<at_s>:<dur_s>` window inside which the rate is
//!   multiplied by `mult`, the sudden-hot-item shape the adaptive
//!   serving controllers are stress-tested against.
//!
//! Generation is deterministic: the same `(process, seed)` pair always
//! yields the same timestamp stream (golden-value tested), seeded
//! per-point via the same splitmix convention as the trace generator.

use serde::{Deserialize, Serialize};
use simkit::{DetRng, SimTime};

/// The stochastic process query arrival times are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Metronome arrivals: query `i` arrives at exactly `i / qps`.
    Fixed {
        /// Mean arrival rate, queries per second.
        qps: f64,
    },
    /// Poisson arrivals: i.i.d. exponential inter-arrival gaps.
    Poisson {
        /// Mean arrival rate, queries per second.
        qps: f64,
    },
    /// MMPP-2 arrivals: Poisson at rate `qps·(1+burst)` in the high
    /// state and `qps·(1-burst)` in the low state, with exponentially
    /// distributed state dwell times of mean `dwell_us`. Equal expected
    /// dwell in each state keeps the time-averaged rate at `qps`.
    Bursty {
        /// Time-averaged arrival rate, queries per second.
        qps: f64,
        /// Burst intensity in `[0, 1)`: 0 degenerates to Poisson, 0.9
        /// means the high state runs at 1.9× and the low state at 0.1×
        /// the mean rate.
        burst: f64,
        /// Mean dwell time per state, microseconds.
        dwell_us: f64,
    },
    /// Sinusoidally modulated Poisson arrivals: the instantaneous rate
    /// is `qps·(1 + amplitude·sin(2πt/period))`, approximated by
    /// [`DIURNAL_SEGMENTS`] piecewise-constant rate segments per period
    /// (exponential gaps within a segment; a draw that overruns the
    /// segment boundary is redrawn at the next segment's rate, exact by
    /// memorylessness). The sinusoid integrates to zero over a period,
    /// so the time-averaged rate stays `qps`.
    Diurnal {
        /// Time-averaged arrival rate, queries per second.
        qps: f64,
        /// Modulation depth in `[0, 1)`: peak rate `qps·(1+amplitude)`,
        /// trough `qps·(1-amplitude)`.
        amplitude: f64,
        /// Modulation period, seconds of simulated time.
        period_s: f64,
    },
    /// A crowd spike layered on [`ArrivalProcess::Diurnal`]: the same
    /// segmented sinusoid, with every segment whose midpoint falls in
    /// `[at_s, at_s + dur_s)` running at `mult` times its sinusoidal
    /// rate. Outside the spike window the stream is the diurnal base
    /// (though not draw-for-draw identical to a [`Self::Diurnal`] of
    /// the same seed once the window has consumed RNG draws).
    Flash {
        /// Base (off-spike) time-averaged arrival rate, queries per second.
        qps: f64,
        /// Diurnal modulation depth in `[0, 1)`.
        amplitude: f64,
        /// Diurnal modulation period, seconds of simulated time.
        period_s: f64,
        /// Rate multiplier inside the spike window (`>= 1`).
        mult: f64,
        /// Spike start, seconds of simulated time.
        at_s: f64,
        /// Spike duration, seconds of simulated time (`> 0`).
        dur_s: f64,
    },
}

/// Piecewise-constant rate segments per diurnal period. 64 keeps the
/// staircase within a fraction of a percent of the true sinusoid while
/// the per-segment rate stays a pure function of the segment index
/// (checkpoint state is just the segment cursor).
pub const DIURNAL_SEGMENTS: u64 = 64;

impl ArrivalProcess {
    /// Parses a sweep-parameter spelling at a given rate: `fixed`,
    /// `poisson`, `bursty` (defaults: burst 0.8, dwell 200 µs),
    /// `bursty:<burst>:<dwell_us>`, `diurnal` (defaults: amplitude 0.5,
    /// period 1 s), `diurnal:<amplitude>:<period_s>`, or
    /// `flash:<mult>:<at_s>:<dur_s>` (a crowd spike layered on the
    /// default diurnal base). The error names the offending piece:
    /// unknown spellings, non-positive `qps`, burst/amplitude outside
    /// `[0, 1)`, non-positive dwell/period, or a degenerate spike
    /// window.
    pub fn parse(spec: &str, qps: f64) -> Result<ArrivalProcess, String> {
        if !(qps > 0.0 && qps.is_finite()) {
            return Err(format!(
                "arrival rate must be positive and finite, got {qps}"
            ));
        }
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or_default().to_ascii_lowercase();
        let mut arg = |what: &str| -> Result<Option<f64>, String> {
            match parts.next() {
                None => Ok(None),
                Some(raw) => raw
                    .parse::<f64>()
                    .map(Some)
                    .map_err(|_| format!("{what} {raw:?} is not a number")),
            }
        };
        let process = match head.as_str() {
            "fixed" => ArrivalProcess::Fixed { qps },
            "poisson" => ArrivalProcess::Poisson { qps },
            "bursty" => {
                let (burst, dwell_us) = match arg("burst fraction")? {
                    Some(b) => {
                        let dwell = arg("dwell")?
                            .ok_or_else(|| "bursty:<burst> is missing its dwell (µs)".to_string())?;
                        (b, dwell)
                    }
                    None => (0.8, 200.0),
                };
                if !(0.0..1.0).contains(&burst) {
                    return Err(format!("burst fraction {burst} must lie in [0, 1)"));
                }
                if !(dwell_us > 0.0 && dwell_us.is_finite()) {
                    return Err(format!("dwell {dwell_us} must be positive and finite"));
                }
                ArrivalProcess::Bursty {
                    qps,
                    burst,
                    dwell_us,
                }
            }
            "diurnal" => {
                let (amplitude, period_s) = match arg("amplitude")? {
                    Some(a) => {
                        let period = arg("period")?
                            .ok_or_else(|| "diurnal:<amplitude> is missing its period (s)".to_string())?;
                        (a, period)
                    }
                    None => (0.5, 1.0),
                };
                if !(0.0..1.0).contains(&amplitude) {
                    return Err(format!("amplitude {amplitude} must lie in [0, 1)"));
                }
                if !(period_s > 0.0 && period_s.is_finite()) {
                    return Err(format!("period {period_s} must be positive and finite"));
                }
                ArrivalProcess::Diurnal {
                    qps,
                    amplitude,
                    period_s,
                }
            }
            "flash" => {
                let mult = arg("flash multiplier")?.ok_or_else(|| {
                    "flash is missing its multiplier (flash:<mult>:<at_s>:<dur_s>)".to_string()
                })?;
                let at_s = arg("flash start")?
                    .ok_or_else(|| "flash:<mult> is missing its start (s)".to_string())?;
                let dur_s = arg("flash duration")?
                    .ok_or_else(|| "flash:<mult>:<at_s> is missing its duration (s)".to_string())?;
                if !(mult >= 1.0 && mult.is_finite()) {
                    return Err(format!("flash multiplier {mult} must be >= 1 and finite"));
                }
                if !(at_s >= 0.0 && at_s.is_finite()) {
                    return Err(format!("flash start {at_s} must be >= 0 and finite"));
                }
                if !(dur_s > 0.0 && dur_s.is_finite()) {
                    return Err(format!("flash duration {dur_s} must be positive and finite"));
                }
                ArrivalProcess::Flash {
                    qps,
                    amplitude: 0.5,
                    period_s: 1.0,
                    mult,
                    at_s,
                    dur_s,
                }
            }
            other => {
                return Err(format!(
                    "unknown arrival process {other:?} (fixed|poisson|bursty[:burst:dwell_us]|diurnal[:amplitude:period_s]|flash:<mult>:<at_s>:<dur_s>)"
                ))
            }
        };
        match parts.next() {
            Some(junk) => Err(format!("trailing arrival argument {junk:?}")),
            None => Ok(process),
        }
    }

    /// The configured mean rate, queries per second.
    pub fn qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Fixed { qps }
            | ArrivalProcess::Poisson { qps }
            | ArrivalProcess::Bursty { qps, .. }
            | ArrivalProcess::Diurnal { qps, .. }
            | ArrivalProcess::Flash { qps, .. } => qps,
        }
    }

    /// Generates the first `n` arrival timestamps for `seed`, sorted
    /// non-decreasing (a convenience over [`ArrivalGen`]).
    pub fn times(&self, n: usize, seed: u64) -> Vec<SimTime> {
        let mut generator = ArrivalGen::new(*self, seed);
        (0..n).map(|_| generator.next_time()).collect()
    }
}

/// Nanoseconds per second, as the f64 the rate arithmetic runs in.
const NS_PER_S: f64 = 1e9;

/// A stateful, deterministic arrival-timestamp generator.
///
/// # Examples
///
/// ```
/// use tracegen::{ArrivalGen, ArrivalProcess};
/// let p = ArrivalProcess::Poisson { qps: 100_000.0 };
/// let mut a = ArrivalGen::new(p, 7);
/// let mut b = ArrivalGen::new(p, 7);
/// assert_eq!(a.next_time(), b.next_time()); // same seed ⇒ same stream
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: DetRng,
    /// Exact arrival clock in f64 nanoseconds (timestamps are rounded
    /// per-emission, so rounding error does not accumulate).
    clock_ns: f64,
    /// Fixed: arrivals emitted so far. Diurnal: current rate-segment
    /// index (monotone; the rate depends on it modulo
    /// [`DIURNAL_SEGMENTS`]).
    emitted: u64,
    /// Bursty: currently in the high-rate state.
    high: bool,
    /// Bursty: nanoseconds left in the current state's dwell. Diurnal:
    /// nanoseconds left in the current rate segment.
    dwell_left_ns: f64,
}

impl ArrivalGen {
    /// Creates a generator for `process` with its own RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if the process rate is not positive and finite, or if a
    /// bursty process has `burst` outside `[0, 1)` or a non-positive
    /// dwell.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        let qps = process.qps();
        assert!(
            qps > 0.0 && qps.is_finite(),
            "arrival rate must be positive and finite"
        );
        if let ArrivalProcess::Bursty {
            burst, dwell_us, ..
        } = process
        {
            assert!(
                (0.0..1.0).contains(&burst),
                "burst intensity must be in [0, 1)"
            );
            assert!(
                dwell_us > 0.0 && dwell_us.is_finite(),
                "dwell time must be positive and finite"
            );
        }
        if let ArrivalProcess::Diurnal {
            amplitude,
            period_s,
            ..
        }
        | ArrivalProcess::Flash {
            amplitude,
            period_s,
            ..
        } = process
        {
            assert!(
                (0.0..1.0).contains(&amplitude),
                "diurnal amplitude must be in [0, 1)"
            );
            assert!(
                period_s > 0.0 && period_s.is_finite(),
                "diurnal period must be positive and finite"
            );
        }
        if let ArrivalProcess::Flash {
            mult, at_s, dur_s, ..
        } = process
        {
            assert!(
                mult >= 1.0 && mult.is_finite(),
                "flash multiplier must be >= 1 and finite"
            );
            assert!(
                at_s >= 0.0 && at_s.is_finite(),
                "flash start must be >= 0 and finite"
            );
            assert!(
                dur_s > 0.0 && dur_s.is_finite(),
                "flash duration must be positive and finite"
            );
        }
        let mut rng = DetRng::new(seed);
        let dwell_left_ns = match process {
            ArrivalProcess::Bursty { dwell_us, .. } => exp_draw(&mut rng, dwell_us * 1_000.0),
            ArrivalProcess::Diurnal { period_s, .. } | ArrivalProcess::Flash { period_s, .. } => {
                period_s * NS_PER_S / DIURNAL_SEGMENTS as f64
            }
            _ => 0.0,
        };
        ArrivalGen {
            process,
            rng,
            clock_ns: 0.0,
            emitted: 0,
            high: true,
            dwell_left_ns,
        }
    }

    /// The next arrival timestamp. Successive calls are non-decreasing.
    pub fn next_time(&mut self) -> SimTime {
        let ns = match self.process {
            ArrivalProcess::Fixed { qps } => {
                let t = (self.emitted as f64 * (NS_PER_S / qps)).round();
                self.emitted += 1;
                t
            }
            ArrivalProcess::Poisson { qps } => {
                self.clock_ns += exp_draw(&mut self.rng, NS_PER_S / qps);
                self.clock_ns.round()
            }
            ArrivalProcess::Bursty {
                qps,
                burst,
                dwell_us,
            } => {
                loop {
                    let rate = if self.high {
                        qps * (1.0 + burst)
                    } else {
                        qps * (1.0 - burst)
                    };
                    // Rate 0 (burst → 1 in the low state) draws an
                    // infinite gap, falling through to the state flip.
                    let gap = exp_draw(&mut self.rng, NS_PER_S / rate);
                    if gap <= self.dwell_left_ns {
                        self.dwell_left_ns -= gap;
                        self.clock_ns += gap;
                        break;
                    }
                    // The draw overruns this state's dwell: consume the
                    // remainder, flip state, and redraw at the new rate
                    // (the exponential's memorylessness makes the
                    // redraw distribution-exact).
                    self.clock_ns += self.dwell_left_ns;
                    self.high = !self.high;
                    self.dwell_left_ns = exp_draw(&mut self.rng, dwell_us * 1_000.0);
                }
                self.clock_ns.round()
            }
            ArrivalProcess::Diurnal {
                qps,
                amplitude,
                period_s,
            } => self.segmented_walk(qps, amplitude, period_s, None),
            ArrivalProcess::Flash {
                qps,
                amplitude,
                period_s,
                mult,
                at_s,
                dur_s,
            } => self.segmented_walk(qps, amplitude, period_s, Some((mult, at_s, dur_s))),
        };
        SimTime::from_ns(ns as u64)
    }

    /// The shared diurnal/flash segment walk: exponential gaps within a
    /// piecewise-constant rate segment, redrawn at the boundary (exact
    /// by memorylessness). `flash = Some((mult, at_s, dur_s))` layers
    /// the crowd spike on top: segments whose midpoint falls inside
    /// `[at_s, at_s + dur_s)` run at `mult` times the sinusoidal rate.
    fn segmented_walk(
        &mut self,
        qps: f64,
        amplitude: f64,
        period_s: f64,
        flash: Option<(f64, f64, f64)>,
    ) -> f64 {
        let seg_ns = period_s * NS_PER_S / DIURNAL_SEGMENTS as f64;
        loop {
            // Segment rate at the segment's midpoint phase: a
            // pure function of the segment index, so the only
            // checkpoint state is (index, remaining dwell).
            let phase = (self.emitted % DIURNAL_SEGMENTS) as f64 + 0.5;
            let mut rate = qps
                * (1.0
                    + amplitude * (std::f64::consts::TAU * phase / DIURNAL_SEGMENTS as f64).sin());
            if let Some((mult, at_s, dur_s)) = flash {
                let mid_ns = (self.emitted as f64 + 0.5) * seg_ns;
                if mid_ns >= at_s * NS_PER_S && mid_ns < (at_s + dur_s) * NS_PER_S {
                    rate *= mult;
                }
            }
            let gap = exp_draw(&mut self.rng, NS_PER_S / rate);
            if gap <= self.dwell_left_ns {
                self.dwell_left_ns -= gap;
                self.clock_ns += gap;
                break;
            }
            // Overran the segment: consume the remainder and
            // redraw at the next segment's rate (memorylessness
            // makes the redraw distribution-exact).
            self.clock_ns += self.dwell_left_ns;
            self.emitted += 1;
            self.dwell_left_ns = seg_ns;
        }
        self.clock_ns.round()
    }
}

/// One exponential draw with the given mean (f64 nanoseconds).
fn exp_draw(rng: &mut DetRng, mean: f64) -> f64 {
    // Inverse CDF on (0, 1]: 1 - u avoids ln(0).
    -(1.0 - rng.unit_f64()).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_n(process: ArrivalProcess, seed: u64, n: usize) -> Vec<u64> {
        process
            .times(n, seed)
            .into_iter()
            .map(SimTime::as_ns)
            .collect()
    }

    #[test]
    fn fixed_is_a_metronome() {
        let t = first_n(ArrivalProcess::Fixed { qps: 1_000_000.0 }, 0, 5);
        assert_eq!(t, [0, 1000, 2000, 3000, 4000]);
    }

    /// Golden first-20 values (like the DetRng stream test): any change
    /// to the generator algorithm — which would silently re-time every
    /// serving experiment — fails loudly here.
    #[test]
    fn poisson_stream_matches_golden_values() {
        let t = first_n(ArrivalProcess::Poisson { qps: 100_000.0 }, 2024, 20);
        assert_eq!(
            t,
            [
                9749, 10772, 14318, 15553, 33307, 41346, 42817, 51888, 53738, 59304, 65495, 83634,
                102214, 113046, 114619, 126291, 174266, 178406, 194932, 200843
            ]
        );
    }

    #[test]
    fn bursty_stream_matches_golden_values() {
        let p = ArrivalProcess::Bursty {
            qps: 100_000.0,
            burst: 0.8,
            dwell_us: 200.0,
        };
        let t = first_n(p, 2024, 20);
        assert_eq!(
            t,
            [
                568, 2539, 3225, 13088, 17554, 18371, 23411, 24438, 27531, 30970, 41047, 51370,
                57387, 58261, 64746, 91398, 93699, 102880, 106164, 110032
            ]
        );
    }

    #[test]
    fn diurnal_stream_matches_golden_values() {
        let p = ArrivalProcess::Diurnal {
            qps: 100_000.0,
            amplitude: 0.5,
            period_s: 0.01,
        };
        let t = first_n(p, 2024, 20);
        assert_eq!(
            t,
            [
                9515, 10514, 13975, 15181, 32509, 40356, 41791, 50646, 52451, 57884, 63926, 81631,
                99767, 110339, 111874, 123267, 160107, 175504, 181011, 187498
            ]
        );
    }

    #[test]
    fn flash_stream_matches_golden_values() {
        let p = ArrivalProcess::Flash {
            qps: 100_000.0,
            amplitude: 0.5,
            period_s: 0.01,
            mult: 4.0,
            at_s: 0.0,
            dur_s: 0.0001,
        };
        let t = first_n(p, 2024, 20);
        assert_eq!(
            t,
            [
                2379, 2628, 3494, 3795, 8127, 10089, 10448, 12661, 13113, 14471, 15982, 20408,
                24942, 27585, 27968, 30817, 42523, 43534, 47566, 49008
            ]
        );
    }

    #[test]
    fn flash_spike_concentrates_arrivals() {
        // A 4× spike over [1 ms, 3 ms) of a 10 ms period must make the
        // in-window arrival rate several times the off-window rate.
        let p = ArrivalProcess::Flash {
            qps: 1_000_000.0,
            amplitude: 0.5,
            period_s: 0.01,
            mult: 4.0,
            at_s: 0.001,
            dur_s: 0.002,
        };
        let t = first_n(p, 17, 20_000);
        let window = (1_000_000u64, 3_000_000u64);
        let inside = t
            .iter()
            .filter(|&&ns| (window.0..window.1).contains(&ns))
            .count() as f64;
        let before = t.iter().filter(|&&ns| ns < window.0).count() as f64;
        // Per-ns densities: the window is 2 ms wide, the lead-in 1 ms.
        assert!(
            inside / 2.0 > 2.5 * before,
            "spike density {inside}/2 vs lead-in {before}"
        );
    }

    #[test]
    fn diurnal_rate_tracks_the_sinusoid() {
        // With a 10 ms period, arrivals in the first half-period (rate
        // above mean) must outnumber arrivals in the second (rate below
        // mean) by a clear margin.
        let p = ArrivalProcess::Diurnal {
            qps: 1_000_000.0,
            amplitude: 0.8,
            period_s: 0.01,
        };
        let t = first_n(p, 17, 12_000);
        let half_ns = 5_000_000u64;
        let first_half = t.iter().filter(|&&ns| ns < half_ns).count();
        let second_half = t
            .iter()
            .filter(|&&ns| (half_ns..2 * half_ns).contains(&ns))
            .count();
        assert!(
            first_half > 2 * second_half,
            "peak-phase arrivals {first_half} vs trough-phase {second_half}"
        );
    }

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        for p in [
            ArrivalProcess::Fixed { qps: 50_000.0 },
            ArrivalProcess::Poisson { qps: 50_000.0 },
            ArrivalProcess::Bursty {
                qps: 50_000.0,
                burst: 0.5,
                dwell_us: 100.0,
            },
            ArrivalProcess::Diurnal {
                qps: 50_000.0,
                amplitude: 0.5,
                period_s: 0.01,
            },
            ArrivalProcess::Flash {
                qps: 50_000.0,
                amplitude: 0.5,
                period_s: 0.01,
                mult: 3.0,
                at_s: 0.001,
                dur_s: 0.002,
            },
        ] {
            assert_eq!(first_n(p, 7, 100), first_n(p, 7, 100), "{p:?}");
            if p != (ArrivalProcess::Fixed { qps: 50_000.0 }) {
                assert_ne!(first_n(p, 7, 100), first_n(p, 8, 100), "{p:?}");
            }
        }
    }

    #[test]
    fn timestamps_are_monotone_nondecreasing() {
        for p in [
            ArrivalProcess::Fixed { qps: 250_000.0 },
            ArrivalProcess::Poisson { qps: 250_000.0 },
            ArrivalProcess::Bursty {
                qps: 250_000.0,
                burst: 0.9,
                dwell_us: 50.0,
            },
            ArrivalProcess::Diurnal {
                qps: 250_000.0,
                amplitude: 0.9,
                period_s: 0.002,
            },
            ArrivalProcess::Flash {
                qps: 250_000.0,
                amplitude: 0.9,
                period_s: 0.002,
                mult: 8.0,
                at_s: 0.0005,
                dur_s: 0.001,
            },
        ] {
            let t = first_n(p, 3, 10_000);
            for w in t.windows(2) {
                assert!(w[0] <= w[1], "{p:?}: {} > {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn mean_rate_converges_to_qps() {
        // 50k draws: the empirical rate of every family lands within a
        // few percent of the configured rate.
        for p in [
            ArrivalProcess::Poisson { qps: 100_000.0 },
            ArrivalProcess::Bursty {
                qps: 100_000.0,
                burst: 0.8,
                dwell_us: 200.0,
            },
            ArrivalProcess::Diurnal {
                qps: 100_000.0,
                amplitude: 0.5,
                period_s: 0.01,
            },
        ] {
            let n = 50_000;
            let t = first_n(p, 11, n);
            let span_s = *t.last().unwrap() as f64 / NS_PER_S;
            let rate = (n as f64 - 1.0) / span_s;
            assert!(
                (rate - 100_000.0).abs() < 5_000.0,
                "{p:?}: empirical rate {rate}"
            );
        }
    }

    #[test]
    fn bursty_gaps_have_higher_variance_than_poisson() {
        let gaps = |p| {
            let t = first_n(p, 13, 20_000);
            let d: Vec<f64> = t.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = d.iter().sum::<f64>() / d.len() as f64;
            d.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / d.len() as f64
        };
        let poisson = gaps(ArrivalProcess::Poisson { qps: 100_000.0 });
        let bursty = gaps(ArrivalProcess::Bursty {
            qps: 100_000.0,
            burst: 0.8,
            dwell_us: 200.0,
        });
        assert!(
            bursty > 1.5 * poisson,
            "bursty variance {bursty} vs poisson {poisson}"
        );
    }

    #[test]
    fn parse_covers_families_and_reports_why_it_rejects() {
        assert_eq!(
            ArrivalProcess::parse("poisson", 1000.0),
            Ok(ArrivalProcess::Poisson { qps: 1000.0 })
        );
        assert_eq!(
            ArrivalProcess::parse("Fixed", 10.0),
            Ok(ArrivalProcess::Fixed { qps: 10.0 })
        );
        assert_eq!(
            ArrivalProcess::parse("bursty", 500.0),
            Ok(ArrivalProcess::Bursty {
                qps: 500.0,
                burst: 0.8,
                dwell_us: 200.0
            })
        );
        assert_eq!(
            ArrivalProcess::parse("bursty:0.5:100", 500.0),
            Ok(ArrivalProcess::Bursty {
                qps: 500.0,
                burst: 0.5,
                dwell_us: 100.0
            })
        );
        assert_eq!(
            ArrivalProcess::parse("diurnal", 500.0),
            Ok(ArrivalProcess::Diurnal {
                qps: 500.0,
                amplitude: 0.5,
                period_s: 1.0
            })
        );
        assert_eq!(
            ArrivalProcess::parse("diurnal:0.8:0.05", 500.0),
            Ok(ArrivalProcess::Diurnal {
                qps: 500.0,
                amplitude: 0.8,
                period_s: 0.05
            })
        );
        assert_eq!(
            ArrivalProcess::parse("flash:4:0.001:0.002", 500.0),
            Ok(ArrivalProcess::Flash {
                qps: 500.0,
                amplitude: 0.5,
                period_s: 1.0,
                mult: 4.0,
                at_s: 0.001,
                dur_s: 0.002
            })
        );
        let err = |spec: &str, qps: f64| ArrivalProcess::parse(spec, qps).unwrap_err();
        assert!(err("flash", 500.0).contains("missing its multiplier"));
        assert!(err("flash:4", 500.0).contains("missing its start"));
        assert!(err("flash:4:0.001", 500.0).contains("missing its duration"));
        assert!(err("flash:0.5:0:0.001", 500.0).contains(">= 1"));
        assert!(err("flash:4:-1:0.001", 500.0).contains(">= 0"));
        assert!(err("flash:4:0:0", 500.0).contains("positive and finite"));
        assert!(err("flash:4:0:0.001:9", 500.0).contains("trailing"));
        assert!(err("diurnal:1.2:0.05", 500.0).contains("[0, 1)"));
        assert!(err("diurnal:0.5", 500.0).contains("missing its period"));
        assert!(err("bursty:1.5:100", 500.0).contains("[0, 1)"));
        assert!(err("bursty:0.5", 500.0).contains("missing its dwell"));
        assert!(err("bursty:x:100", 500.0).contains("not a number"));
        assert!(err("poisson:1", 500.0).contains("trailing"));
        assert!(err("poisson", 0.0).contains("positive and finite"));
        assert!(err("sawtooth", 500.0).contains("unknown arrival process"));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_rate_rejected() {
        let _ = ArrivalGen::new(ArrivalProcess::Poisson { qps: 0.0 }, 1);
    }
}
