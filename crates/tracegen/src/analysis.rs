//! Trace characterization: skew, reuse, and footprint.
//!
//! The characterization study (§III) motivates every PIFS-Rec mechanism
//! with trace properties — skew justifies the HTR buffer, footprint
//! justifies CXL pooling, balance justifies embedding spreading. This
//! module extracts those properties from any [`Trace`].

use std::collections::HashMap;

use crate::trace::Trace;

/// Aggregate properties of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Total lookups.
    pub lookups: u64,
    /// Distinct (table, row) pairs touched.
    pub unique_rows: u64,
    /// Fraction of accesses landing on the top 1 % most popular rows.
    pub top1pct_mass: f64,
    /// Fraction of accesses whose previous occurrence of the same row was
    /// within the last 256 lookups of the same table (temporal reuse).
    pub near_reuse_frac: f64,
    /// Touched footprint in bytes for rows of `row_bytes` each.
    pub touched_bytes: u64,
}

impl TraceProfile {
    /// Profiles `trace`, assuming `row_bytes` per row.
    pub fn of(trace: &Trace, row_bytes: u64) -> TraceProfile {
        let mut counts: HashMap<(u32, u64), u64> = HashMap::new();
        let mut last_pos: HashMap<(u32, u64), u64> = HashMap::new();
        let mut per_table_pos: HashMap<u32, u64> = HashMap::new();
        let mut near_reuse = 0u64;
        let mut lookups = 0u64;

        for batch in &trace.batches {
            for t in &batch.tables {
                for &row in &t.indices {
                    let pos = per_table_pos.entry(t.table).or_insert(0);
                    let key = (t.table, row);
                    if let Some(&prev) = last_pos.get(&key) {
                        if *pos - prev <= 256 {
                            near_reuse += 1;
                        }
                    }
                    last_pos.insert(key, *pos);
                    *counts.entry(key).or_insert(0) += 1;
                    *pos += 1;
                    lookups += 1;
                }
            }
        }

        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top_n = (freq.len().max(100) / 100).max(1).min(freq.len());
        let top_mass: u64 = freq.iter().take(top_n).sum();

        TraceProfile {
            lookups,
            unique_rows: counts.len() as u64,
            top1pct_mass: if lookups == 0 {
                0.0
            } else {
                top_mass as f64 / lookups as f64
            },
            near_reuse_frac: if lookups == 0 {
                0.0
            } else {
                near_reuse as f64 / lookups as f64
            },
            touched_bytes: counts.len() as u64 * row_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::trace::TraceSpec;

    fn profile(dist: Distribution) -> TraceProfile {
        let spec = TraceSpec {
            distribution: dist,
            n_tables: 2,
            rows_per_table: 10_000,
            batch_size: 64,
            n_batches: 16,
            bag_size: 8,
            seed: 21,
        };
        TraceProfile::of(&spec.generate(), 256)
    }

    #[test]
    fn zipf_shows_more_skew_than_random() {
        let z = profile(Distribution::Zipfian { s: 1.05 });
        let r = profile(Distribution::Random);
        assert!(z.top1pct_mass > r.top1pct_mass * 2.0, "z={z:?} r={r:?}");
    }

    #[test]
    fn metalike_shows_more_reuse_than_random() {
        let m = profile(Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        });
        let r = profile(Distribution::Random);
        assert!(m.near_reuse_frac > r.near_reuse_frac, "m={m:?} r={r:?}");
        assert!(m.near_reuse_frac > 0.2);
    }

    #[test]
    fn uniform_touches_the_most_unique_rows() {
        let u = profile(Distribution::Uniform);
        let z = profile(Distribution::Zipfian { s: 1.05 });
        assert!(u.unique_rows > z.unique_rows);
    }

    #[test]
    fn footprint_counts_unique_rows_only() {
        let p = profile(Distribution::Zipfian { s: 1.05 });
        assert_eq!(p.touched_bytes, p.unique_rows * 256);
        assert!(p.lookups >= p.unique_rows);
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let t = Trace {
            n_tables: 1,
            rows_per_table: 10,
            batch_size: 1,
            bag_size: 1,
            batches: vec![],
        };
        let p = TraceProfile::of(&t, 64);
        assert_eq!(p.lookups, 0);
        assert_eq!(p.top1pct_mass, 0.0);
        assert_eq!(p.near_reuse_frac, 0.0);
    }
}
