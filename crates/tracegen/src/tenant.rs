//! Multi-tenant traffic mixes: several independent query streams — one
//! per tenant, each with its own model dimensions, arrival process, and
//! QoS class — merged into one arrival-ordered stream.
//!
//! A production serving fleet rarely hosts one model: a latency-critical
//! ranking model shares nodes with batch-class embedding backfill, and
//! the serving controllers must hold the former's tail while the latter
//! soaks up slack. [`TenantMixStream`] reproduces that shape
//! deterministically: each tenant is a full [`QueryStreamSpec`] (trace
//! recipe + arrival process + seeds), and the mix emits queries in
//! global arrival order with ties broken by tenant index — a k-way
//! merge of per-tenant sorted streams, so the output is sorted and
//! byte-reproducible.
//!
//! Tenants may have different table counts: the mix's
//! [`TenantMixStream::n_tables`] is the maximum, and
//! [`TenantMixStream::bag`] returns an empty bag for tables beyond the
//! emitting tenant's model (an empty bag costs zero simulated time, so
//! narrower tenants are not padded with fake work).
//!
//! Checkpointing falls out of the representation, exactly as for
//! [`QueryStream`](crate::QueryStream): the mix is `Clone`, and a clone
//! is a resumable snapshot.

use serde::{Deserialize, Serialize};
use simkit::SimTime;

use crate::stream::{QueryStream, QueryStreamSpec};

/// A tenant's service class: what its latency means to the operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QosClass {
    /// User-facing traffic: the tenant's p99 is held against the SLA.
    LatencyCritical,
    /// Throughput traffic: only starvation matters, not the tail.
    Batch,
}

impl QosClass {
    /// Parses the knob spelling `latency_critical | batch`. Errors say
    /// why the spec was rejected.
    pub fn parse(spec: &str) -> Result<QosClass, String> {
        match spec.to_ascii_lowercase().as_str() {
            "latency_critical" => Ok(QosClass::LatencyCritical),
            "batch" => Ok(QosClass::Batch),
            other => Err(format!(
                "unknown QoS class {other:?} (latency_critical|batch)"
            )),
        }
    }

    /// A short stable label for curve keys.
    pub fn label(&self) -> &'static str {
        match self {
            QosClass::LatencyCritical => "latency_critical",
            QosClass::Batch => "batch",
        }
    }
}

/// One tenant of a multi-tenant mix: its workload recipe and QoS class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Display name (curve keys, per-tenant metric labels).
    pub name: String,
    /// The tenant's service class.
    pub qos: QosClass,
    /// The tenant's workload: trace recipe, arrival process, seeds.
    pub stream: QueryStreamSpec,
}

/// The k-way merge of several per-tenant [`QueryStream`]s, in global
/// arrival order (ties broken by tenant index, then per-tenant FIFO).
///
/// [`Self::next_query`] returns `(qid, tenant, arrival)` — qids are
/// mix-global and push-sequential, matching what a serving session
/// assigns — and [`Self::bag`] reads the emitted query's bags until the
/// next call, exactly the [`QueryStream`] contract.
#[derive(Debug, Clone)]
pub struct TenantMixStream {
    specs: Vec<TenantSpec>,
    streams: Vec<QueryStream>,
    /// Each tenant's buffered head arrival: `heads[i]` is the arrival
    /// of the query `streams[i]` has already drawn (its bags are live
    /// in that stream's buffers) but the mix has not yet emitted;
    /// `None` once the tenant is exhausted.
    heads: Vec<Option<SimTime>>,
    /// The tenant whose query was emitted last (its bags are readable);
    /// its stream advances lazily on the next [`Self::next_query`].
    current: Option<usize>,
    next_qid: u64,
    n_tables: u32,
}

impl TenantMixStream {
    /// Opens the mix at query 0.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, holds more than `u16::MAX` tenants,
    /// or any tenant's stream is degenerate (as [`QueryStreamSpec::stream`]).
    pub fn new(specs: Vec<TenantSpec>) -> TenantMixStream {
        assert!(!specs.is_empty(), "a tenant mix needs at least one tenant");
        assert!(
            specs.len() <= u16::MAX as usize,
            "tenant indices are u16-sized"
        );
        let mut streams: Vec<QueryStream> = specs.iter().map(|t| t.stream.stream()).collect();
        // Pre-draw every tenant's first query so each head arrival is
        // known before the first merge decision.
        let heads = streams
            .iter_mut()
            .map(|s| s.next_query().map(|(_, at)| at))
            .collect();
        let n_tables = streams.iter().map(QueryStream::n_tables).max().unwrap_or(0);
        TenantMixStream {
            specs,
            streams,
            heads,
            current: None,
            next_qid: 0,
            n_tables,
        }
    }

    /// The tenant specs this mix was opened from, tenant-index order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// Number of tenants in the mix.
    pub fn n_tenants(&self) -> u16 {
        self.specs.len() as u16
    }

    /// Tables per query: the maximum across tenants (narrower tenants
    /// read empty bags for the excess tables).
    pub fn n_tables(&self) -> u32 {
        self.n_tables
    }

    /// Queries the mix emits in total (the sum over tenants).
    pub fn len(&self) -> u64 {
        self.specs.iter().map(|t| t.stream.n_queries()).sum()
    }

    /// Whether the mix is exhausted.
    pub fn is_empty(&self) -> bool {
        self.next_qid >= self.len()
    }

    /// Queries emitted so far.
    pub fn position(&self) -> u64 {
        self.next_qid
    }

    /// Advances to the next query in global arrival order, returning
    /// `(qid, tenant, arrival)`, or `None` when every tenant is
    /// exhausted. Arrivals are non-decreasing; equal arrivals emit the
    /// lower tenant index first.
    pub fn next_query(&mut self) -> Option<(u64, u16, SimTime)> {
        // Replace the emitted query's head: only now may its stream
        // advance (advancing earlier would invalidate its bags).
        if let Some(cur) = self.current.take() {
            self.heads[cur] = self.streams[cur].next_query().map(|(_, at)| at);
        }
        let (tenant, at) = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|at| (i, at)))
            .min_by_key(|&(i, at)| (at, i))?;
        let qid = self.next_qid;
        self.next_qid += 1;
        self.current = Some(tenant);
        Some((qid, tenant as u16, at))
    }

    /// The current query's bag for `table` — valid after a successful
    /// [`Self::next_query`], until the next call. Tables beyond the
    /// emitting tenant's model read as empty.
    ///
    /// # Panics
    ///
    /// Panics if no query has been emitted yet or `table` is outside
    /// the mix's table range.
    pub fn bag(&self, table: u32) -> &[u64] {
        let cur = self.current.expect("bag() before the first next_query()");
        assert!(table < self.n_tables, "table {table} out of range");
        if table >= self.streams[cur].n_tables() {
            return &[];
        }
        self.streams[cur].bag(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::dist::Distribution;
    use crate::trace::TraceSpec;

    fn tenant(name: &str, qos: QosClass, n_tables: u32, qps: f64, seed: u64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            qos,
            stream: QueryStreamSpec {
                trace: TraceSpec {
                    distribution: Distribution::Random,
                    n_tables,
                    rows_per_table: 200,
                    batch_size: 4,
                    n_batches: 3,
                    bag_size: 2,
                    seed,
                },
                arrival: ArrivalProcess::Poisson { qps },
                arrival_seed: seed ^ 0x5eed,
            },
        }
    }

    fn mix() -> TenantMixStream {
        TenantMixStream::new(vec![
            tenant("rank", QosClass::LatencyCritical, 3, 150_000.0, 7),
            tenant("backfill", QosClass::Batch, 2, 100_000.0, 11),
        ])
    }

    #[test]
    fn qos_parse_covers_spellings_and_reports_why_it_rejects() {
        assert_eq!(
            QosClass::parse("latency_critical"),
            Ok(QosClass::LatencyCritical)
        );
        assert_eq!(QosClass::parse("Batch"), Ok(QosClass::Batch));
        assert!(QosClass::parse("gold")
            .unwrap_err()
            .contains("unknown QoS class"));
        for qos in [QosClass::LatencyCritical, QosClass::Batch] {
            assert_eq!(QosClass::parse(qos.label()), Ok(qos));
        }
    }

    #[test]
    fn merge_is_sorted_sequential_and_complete() {
        let mut m = mix();
        assert_eq!(m.len(), 24);
        assert_eq!(m.n_tables(), 3);
        let mut last = SimTime::ZERO;
        let mut per_tenant = [0u64; 2];
        for expect_qid in 0..m.len() {
            let (qid, t, at) = m.next_query().expect("mix too short");
            assert_eq!(qid, expect_qid);
            assert!(at >= last, "arrivals must be non-decreasing");
            last = at;
            per_tenant[t as usize] += 1;
        }
        assert_eq!(per_tenant, [12, 12], "every tenant query emitted once");
        assert_eq!(m.next_query(), None);
        assert!(m.is_empty());
    }

    #[test]
    fn merged_queries_match_their_source_streams() {
        // Every emitted (tenant, bags, arrival) triple must equal the
        // corresponding element of that tenant's standalone stream.
        let specs = mix().specs().to_vec();
        let mut solo: Vec<QueryStream> = specs.iter().map(|t| t.stream.stream()).collect();
        let mut m = mix();
        while let Some((_, t, at)) = m.next_query() {
            let s = &mut solo[t as usize];
            let (_, solo_at) = s.next_query().expect("solo stream too short");
            assert_eq!(at, solo_at);
            for table in 0..s.n_tables() {
                assert_eq!(m.bag(table), s.bag(table));
            }
        }
    }

    #[test]
    fn narrow_tenants_read_empty_bags_for_excess_tables() {
        let mut m = mix();
        loop {
            let (_, t, _) = m.next_query().expect("mix has queries");
            if t == 1 {
                assert_eq!(m.bag(2), &[] as &[u64], "beyond tenant 1's 2 tables");
                assert!(!m.bag(1).is_empty());
                break;
            }
        }
    }

    #[test]
    fn clone_is_a_resumable_checkpoint() {
        let mut m = mix();
        for _ in 0..9 {
            let _ = m.next_query();
        }
        let mut resumed = m.clone();
        loop {
            let a = m.next_query();
            let b = resumed.next_query();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            for table in 0..m.n_tables() {
                assert_eq!(m.bag(table), resumed.bag(table));
            }
        }
    }

    #[test]
    fn equal_arrivals_emit_the_lower_tenant_first() {
        // Two fixed metronomes at the same rate arrive at identical
        // instants: tenant 0 must always precede tenant 1.
        let t0 = TenantSpec {
            name: "a".into(),
            qos: QosClass::LatencyCritical,
            stream: QueryStreamSpec {
                arrival: ArrivalProcess::Fixed { qps: 1_000_000.0 },
                ..tenant("a", QosClass::LatencyCritical, 2, 1.0, 3).stream
            },
        };
        let t1 = TenantSpec {
            name: "b".into(),
            qos: QosClass::Batch,
            stream: QueryStreamSpec {
                arrival: ArrivalProcess::Fixed { qps: 1_000_000.0 },
                ..tenant("b", QosClass::Batch, 2, 1.0, 5).stream
            },
        };
        let mut m = TenantMixStream::new(vec![t0, t1]);
        let mut expect = 0u16;
        while let Some((_, t, _)) = m.next_query() {
            assert_eq!(t, expect, "ties must alternate 0 then 1");
            expect = 1 - expect;
        }
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_mix_rejected() {
        let _ = TenantMixStream::new(Vec::new());
    }
}
