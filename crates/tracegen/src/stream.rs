//! Lazy query streaming: the fused trace + arrival iterator.
//!
//! [`TraceSpec::generate`] materializes every batch of every table up
//! front — O(batches × tables × batch_size × bag_size) memory — which
//! caps open-loop experiments at seconds of simulated traffic.
//! [`QueryStream`] walks the *same* deterministic draw sequence one
//! query at a time, holding only the current batch's lookups
//! (regenerated in place when the cursor crosses a batch boundary) plus
//! the per-table sampler states: memory is O(batch), independent of
//! trace length.
//!
//! The equivalence contract is exact, not statistical: for the same
//! [`QueryStreamSpec`], query `q`'s bag for table `t` is byte-identical
//! to `trace.bag(q / batch_size, t, q % batch_size)` of the generated
//! trace, and its timestamp equals `arrival.times(n, arrival_seed)[q]`.
//! This holds because both paths construct the per-table samplers in
//! the same order from the same root fork and then draw
//! `batch_size × bag_size` indices per (batch, table) in the same
//! nesting — the stream simply defers each batch's draws until the
//! cursor reaches it. `tests/stream_equivalence.rs` proves the contract
//! property-based over arbitrary specs.
//!
//! Checkpointing falls out of the representation: `QueryStream` is
//! `Clone`, and a clone *is* a resumable snapshot — sampler RNG
//! cursors, the current batch's buffered lookups, and the arrival
//! generator all travel with it.

use serde::{Deserialize, Serialize};
use simkit::SimTime;

use crate::arrival::{ArrivalGen, ArrivalProcess};
use crate::dist::Sampler;
use crate::trace::TraceSpec;

/// Everything needed to stream a workload deterministically: the trace
/// recipe plus the arrival process and its seed. This is the value
/// sweep runners ship between workers instead of a materialized
/// [`Trace`](crate::Trace) — a few dozen bytes, not the whole workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryStreamSpec {
    /// The trace recipe (dimensions, distribution, seed).
    pub trace: TraceSpec,
    /// The arrival process queries are timestamped from.
    pub arrival: ArrivalProcess,
    /// Seed of the arrival generator's RNG stream (independent of the
    /// trace seed, matching the separate seeding of
    /// [`ArrivalProcess::times`]).
    pub arrival_seed: u64,
}

impl QueryStreamSpec {
    /// Total queries the stream will emit: `n_batches × batch_size`.
    pub fn n_queries(&self) -> u64 {
        self.trace.n_batches as u64 * self.trace.batch_size as u64
    }

    /// Opens the stream at query 0.
    ///
    /// # Panics
    ///
    /// Panics if any trace dimension is zero or the arrival process is
    /// invalid (same validation as [`TraceSpec::generate`] and
    /// [`ArrivalGen::new`]).
    pub fn stream(&self) -> QueryStream {
        QueryStream::new(*self)
    }
}

/// A lazy, seekable-by-clone query iterator: one `(qid, arrival time)`
/// pair per [`QueryStream::next_query`] call, with the query's per-table
/// bags readable through [`QueryStream::bag`] until the next call.
///
/// # Examples
///
/// ```
/// use tracegen::{ArrivalProcess, Distribution, QueryStreamSpec, TraceSpec};
///
/// let spec = QueryStreamSpec {
///     trace: TraceSpec {
///         distribution: Distribution::Random,
///         n_tables: 2,
///         rows_per_table: 100,
///         batch_size: 4,
///         n_batches: 3,
///         bag_size: 2,
///         seed: 7,
///     },
///     arrival: ArrivalProcess::Fixed { qps: 1_000_000.0 },
///     arrival_seed: 7,
/// };
/// let mut stream = spec.stream();
/// let (qid, at) = stream.next_query().expect("first query");
/// assert_eq!(qid, 0);
/// assert_eq!(at.as_ns(), 0);
/// assert_eq!(stream.bag(0).len(), 2); // bag_size rows per table
///
/// // The stream agrees with the materialized trace, query by query.
/// let trace = spec.trace.generate();
/// assert_eq!(stream.bag(1), trace.bag(0, 1, 0));
/// ```
#[derive(Debug, Clone)]
pub struct QueryStream {
    spec: QueryStreamSpec,
    /// Per-table samplers, constructed exactly as `generate` does.
    samplers: Vec<Sampler>,
    /// Current batch's lookups, one `batch_size × bag_size` buffer per
    /// table, recycled across batches.
    bufs: Vec<Vec<u64>>,
    /// Batches fully drawn so far (the buffers hold batch
    /// `batches_drawn - 1` once positive).
    batches_drawn: u32,
    /// Next query id to emit.
    next_qid: u64,
    arrivals: ArrivalGen,
}

impl QueryStream {
    /// Opens a stream for `spec` (see [`QueryStreamSpec::stream`]).
    pub fn new(spec: QueryStreamSpec) -> QueryStream {
        let t = &spec.trace;
        assert!(
            t.n_tables > 0
                && t.rows_per_table > 0
                && t.batch_size > 0
                && t.n_batches > 0
                && t.bag_size > 0,
            "all trace dimensions must be positive"
        );
        // Identical sampler construction order to TraceSpec::generate:
        // one fork of the root per table, in table order.
        let mut root = simkit::DetRng::new(t.seed);
        let samplers: Vec<Sampler> = (0..t.n_tables)
            .map(|_| Sampler::new(t.distribution, t.rows_per_table, root.fork()))
            .collect();
        let per_table = t.batch_size as usize * t.bag_size as usize;
        let bufs = (0..t.n_tables)
            .map(|_| Vec::with_capacity(per_table))
            .collect();
        QueryStream {
            spec,
            samplers,
            bufs,
            batches_drawn: 0,
            next_qid: 0,
            arrivals: ArrivalGen::new(spec.arrival, spec.arrival_seed),
        }
    }

    /// The spec this stream was opened from.
    pub fn spec(&self) -> &QueryStreamSpec {
        &self.spec
    }

    /// Number of tables per query.
    pub fn n_tables(&self) -> u32 {
        self.spec.trace.n_tables
    }

    /// Queries emitted so far (the next [`QueryStream::next_query`]
    /// returns qid `position()` while it lasts).
    pub fn position(&self) -> u64 {
        self.next_qid
    }

    /// Queries this stream emits in total.
    pub fn len(&self) -> u64 {
        self.spec.n_queries()
    }

    /// Whether the stream is exhausted.
    pub fn is_empty(&self) -> bool {
        self.next_qid >= self.len()
    }

    /// Advances to the next query, returning its id and arrival time,
    /// or `None` once `n_batches × batch_size` queries have been
    /// emitted. Query ids count up from 0; timestamps are the arrival
    /// process's non-decreasing stream.
    pub fn next_query(&mut self) -> Option<(u64, SimTime)> {
        if self.next_qid >= self.len() {
            return None;
        }
        let qid = self.next_qid;
        let t = &self.spec.trace;
        // Crossing into an undrawn batch: replay generate's inner loop
        // for exactly that batch (per table, batch_size × bag_size
        // sequential draws) into the recycled buffers.
        if qid == self.batches_drawn as u64 * t.batch_size as u64 {
            let per_table = t.batch_size as u64 * t.bag_size as u64;
            for (s, buf) in self.samplers.iter_mut().zip(&mut self.bufs) {
                buf.clear();
                buf.extend((0..per_table).map(|_| s.next_index()));
            }
            self.batches_drawn += 1;
        }
        self.next_qid += 1;
        Some((qid, self.arrivals.next_time()))
    }

    /// The current query's bag (row indices) for `table` — valid after
    /// a successful [`QueryStream::next_query`], until the next call.
    ///
    /// # Panics
    ///
    /// Panics if no query has been emitted yet or `table` is out of
    /// range.
    pub fn bag(&self, table: u32) -> &[u64] {
        assert!(self.next_qid > 0, "bag() before the first next_query()");
        let t = &self.spec.trace;
        let sample = ((self.next_qid - 1) % t.batch_size as u64) as usize;
        let start = sample * t.bag_size as usize;
        &self.bufs[table as usize][start..start + t.bag_size as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;

    fn spec() -> QueryStreamSpec {
        QueryStreamSpec {
            trace: TraceSpec {
                distribution: Distribution::MetaLike {
                    reuse_frac: 0.35,
                    s: 1.05,
                },
                n_tables: 3,
                rows_per_table: 500,
                batch_size: 8,
                n_batches: 4,
                bag_size: 2,
                seed: 11,
            },
            arrival: ArrivalProcess::Poisson { qps: 100_000.0 },
            arrival_seed: 2024,
        }
    }

    #[test]
    fn stream_matches_materialized_trace_and_arrivals() {
        let spec = spec();
        let trace = spec.trace.generate();
        let times = spec
            .arrival
            .times(spec.n_queries() as usize, spec.arrival_seed);
        let mut stream = spec.stream();
        for expect_qid in 0..spec.n_queries() {
            let (qid, at) = stream.next_query().expect("stream too short");
            assert_eq!(qid, expect_qid);
            assert_eq!(at, times[qid as usize]);
            let batch = (qid / spec.trace.batch_size as u64) as usize;
            let sample = (qid % spec.trace.batch_size as u64) as u32;
            for table in 0..spec.trace.n_tables {
                assert_eq!(
                    stream.bag(table),
                    trace.bag(batch, table, sample),
                    "qid {qid} table {table}"
                );
            }
        }
        assert_eq!(stream.next_query(), None, "stream must end at capacity");
    }

    #[test]
    fn clone_is_a_resumable_checkpoint() {
        let mut stream = spec().stream();
        for _ in 0..13 {
            let _ = stream.next_query();
        }
        let mut resumed = stream.clone();
        loop {
            let a = stream.next_query();
            let b = resumed.next_query();
            assert_eq!(a, b);
            for table in 0..stream.n_tables() {
                assert_eq!(stream.bag(table), resumed.bag(table));
            }
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn position_and_len_track_the_cursor() {
        let mut stream = spec().stream();
        assert_eq!(stream.len(), 32);
        assert_eq!(stream.position(), 0);
        assert!(!stream.is_empty());
        while stream.next_query().is_some() {}
        assert_eq!(stream.position(), 32);
        assert!(stream.is_empty());
    }

    #[test]
    #[should_panic(expected = "before the first next_query")]
    fn bag_before_first_query_rejected() {
        let stream = spec().stream();
        let _ = stream.bag(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimensions_rejected() {
        let mut s = spec();
        s.trace.n_batches = 0;
        let _ = s.stream();
    }
}
