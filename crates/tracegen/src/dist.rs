//! Row-index distributions.

use serde::{Deserialize, Serialize};
use simkit::DetRng;

/// The distribution family a trace draws its row indices from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Power-law skew with exponent `s` (Fig 12(b) "ZF"). Larger `s`
    /// concentrates accesses on fewer rows.
    Zipfian {
        /// Skew exponent (0 = uniform, ~1 = classic Zipf).
        s: f64,
    },
    /// Discretized normal centered on the table middle (Fig 12(b) "NoL").
    Normal {
        /// Standard deviation as a fraction of the table size.
        sigma_frac: f64,
    },
    /// Perfectly balanced striding (Fig 12(b) "Um") — the best case for
    /// device-level parallelism.
    Uniform,
    /// Independent uniform draws (Fig 12(b) "Rm") — balanced on average
    /// but with no structure to exploit.
    Random,
    /// Zipfian skew with hot rows packed at the *head* of the table
    /// (rank = row index, no scattering). Paired with a blocked device
    /// layout this reproduces the Fig 10(b) worst case where one device
    /// absorbs most requests.
    ZipfianHead {
        /// Skew exponent.
        s: f64,
    },
    /// Synthetic stand-in for the Meta production traces: Zipfian hot set
    /// plus short-range temporal reuse.
    MetaLike {
        /// Fraction of accesses that re-reference a recently used row.
        reuse_frac: f64,
        /// Zipf exponent of the underlying popularity ranking.
        s: f64,
    },
}

impl Distribution {
    /// Parses a sweep-parameter spelling of a distribution: one of the
    /// Fig 12(b) labels (`Meta`, `ZF`, `NoL`, `Um`, `Rm`,
    /// case-insensitive) or a parameterized form — `zipf:<s>`,
    /// `zipf_head:<s>`, `normal:<sigma_frac>`, `meta:<reuse_frac>:<s>`,
    /// `uniform`, `random`.
    pub fn parse(spec: &str) -> Option<Distribution> {
        if let Some((_, dist)) = Self::fig12b_suite()
            .into_iter()
            .find(|(label, _)| label.eq_ignore_ascii_case(spec))
        {
            return Some(dist);
        }
        let mut parts = spec.split(':');
        let head = parts.next()?.to_ascii_lowercase();
        let mut arg = || parts.next()?.parse::<f64>().ok();
        let dist = match head.as_str() {
            "uniform" => Distribution::Uniform,
            "random" => Distribution::Random,
            "zipf" => Distribution::Zipfian { s: arg()? },
            "zipf_head" => Distribution::ZipfianHead { s: arg()? },
            "normal" => Distribution::Normal { sigma_frac: arg()? },
            "meta" => Distribution::MetaLike {
                reuse_frac: arg()?,
                s: arg()?,
            },
            _ => return None,
        };
        match parts.next() {
            Some(_) => None, // trailing junk
            None => Some(dist),
        }
    }

    /// The paper's Fig 12(b) trace families, in plot order.
    pub fn fig12b_suite() -> Vec<(&'static str, Distribution)> {
        vec![
            (
                "Meta",
                Distribution::MetaLike {
                    reuse_frac: 0.35,
                    s: 1.05,
                },
            ),
            ("ZF", Distribution::Zipfian { s: 1.05 }),
            ("NoL", Distribution::Normal { sigma_frac: 0.125 }),
            ("Um", Distribution::Uniform),
            ("Rm", Distribution::Random),
        ]
    }
}

/// A stateful index sampler for one table.
#[derive(Debug, Clone)]
pub struct Sampler {
    dist: Distribution,
    rows: u64,
    rng: DetRng,
    /// Zipf: precomputed cumulative weights for binary search.
    zipf_cdf: Vec<f64>,
    /// Uniform: current stride position.
    stride_pos: u64,
    /// MetaLike: recent accesses ring buffer.
    recent: Vec<u64>,
    recent_pos: usize,
}

const RECENT_WINDOW: usize = 256;

impl Sampler {
    /// Creates a sampler over `rows` rows with its own RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    pub fn new(dist: Distribution, rows: u64, rng: DetRng) -> Self {
        assert!(rows > 0, "sampler needs at least one row");
        let zipf_cdf = match dist {
            Distribution::Zipfian { s }
            | Distribution::ZipfianHead { s }
            | Distribution::MetaLike { s, .. } => build_zipf_cdf(rows, s),
            _ => Vec::new(),
        };
        Sampler {
            dist,
            rows,
            rng,
            zipf_cdf,
            stride_pos: 0,
            recent: Vec::with_capacity(RECENT_WINDOW),
            recent_pos: 0,
        }
    }

    /// Draws the next row index.
    pub fn next_index(&mut self) -> u64 {
        let idx = match self.dist {
            Distribution::Zipfian { .. } => self.draw_zipf(),
            Distribution::ZipfianHead { .. } => self.draw_zipf_rank(),
            Distribution::Normal { sigma_frac } => self.draw_normal(sigma_frac),
            Distribution::Uniform => {
                // Golden-ratio stride: visits rows in a balanced, spread
                // pattern with no hot spots.
                let idx = self.stride_pos;
                self.stride_pos = (self.stride_pos + golden_stride(self.rows)) % self.rows;
                idx
            }
            Distribution::Random => self.rng.below(self.rows),
            Distribution::MetaLike { reuse_frac, .. } => {
                if !self.recent.is_empty() && self.rng.unit_f64() < reuse_frac {
                    // Temporal reuse: re-reference something recent.
                    self.recent[self.rng.below(self.recent.len() as u64) as usize]
                } else {
                    self.draw_zipf()
                }
            }
        };
        if matches!(self.dist, Distribution::MetaLike { .. }) {
            if self.recent.len() < RECENT_WINDOW {
                self.recent.push(idx);
            } else {
                self.recent[self.recent_pos] = idx;
                self.recent_pos = (self.recent_pos + 1) % RECENT_WINDOW;
            }
        }
        idx
    }

    fn draw_zipf(&mut self) -> u64 {
        let u = self.rng.unit_f64();
        // Binary search the CDF; ranks are scattered over the row space
        // so that popular rows are not physically adjacent.
        let rank = match self
            .zipf_cdf
            .binary_search_by(|w| w.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) | Err(i) => i.min(self.zipf_cdf.len() - 1) as u64,
        };
        scatter_rank(rank, self.rows)
    }

    /// Zipf draw returning the raw rank (hot rows contiguous at index 0).
    fn draw_zipf_rank(&mut self) -> u64 {
        let u = self.rng.unit_f64();
        match self
            .zipf_cdf
            .binary_search_by(|w| w.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) | Err(i) => (i.min(self.zipf_cdf.len() - 1) as u64).min(self.rows - 1),
        }
    }

    fn draw_normal(&mut self, sigma_frac: f64) -> u64 {
        // Box–Muller.
        let u1 = self.rng.unit_f64().max(f64::MIN_POSITIVE);
        let u2 = self.rng.unit_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let mean = self.rows as f64 / 2.0;
        let sigma = (self.rows as f64 * sigma_frac).max(1.0);
        let v = mean + z * sigma;
        (v.round().max(0.0) as u64).min(self.rows - 1)
    }
}

/// Cumulative Zipf weights over `min(rows, CAP)` ranks. Capping the rank
/// table keeps memory bounded for huge tables; ranks past the cap carry
/// negligible probability mass at the exponents used here.
fn build_zipf_cdf(rows: u64, s: f64) -> Vec<f64> {
    const CAP: u64 = 262_144;
    let n = rows.min(CAP) as usize;
    let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

/// Maps a popularity rank onto a physical row index, scattering hot ranks
/// across the table (hot embeddings are not contiguous in practice).
fn scatter_rank(rank: u64, rows: u64) -> u64 {
    rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % rows
}

fn golden_stride(rows: u64) -> u64 {
    // A stride coprime with `rows` near the golden ratio visits every row
    // exactly once per cycle while staying spread out.
    let mut stride = ((rows as f64 * 0.618_033_988) as u64).max(1);
    while gcd(stride, rows) != 1 {
        stride += 1;
    }
    stride
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn histogram(dist: Distribution, rows: u64, draws: usize) -> HashMap<u64, u64> {
        let mut s = Sampler::new(dist, rows, DetRng::new(7));
        let mut h = HashMap::new();
        for _ in 0..draws {
            *h.entry(s.next_index()).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn all_draws_in_bounds() {
        for dist in [
            Distribution::Zipfian { s: 1.0 },
            Distribution::Normal { sigma_frac: 0.125 },
            Distribution::Uniform,
            Distribution::Random,
            Distribution::MetaLike {
                reuse_frac: 0.3,
                s: 1.0,
            },
            Distribution::ZipfianHead { s: 1.0 },
        ] {
            let mut s = Sampler::new(dist, 100, DetRng::new(1));
            for _ in 0..10_000 {
                assert!(s.next_index() < 100);
            }
        }
    }

    #[test]
    fn zipf_is_heavily_skewed() {
        let h = histogram(Distribution::Zipfian { s: 1.05 }, 10_000, 50_000);
        let mut counts: Vec<u64> = h.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = counts.iter().take(10).sum();
        assert!(
            top10 as f64 > 0.25 * 50_000.0,
            "top-10 rows should absorb >25% of accesses, got {top10}"
        );
    }

    #[test]
    fn zipf_head_concentrates_at_low_indices() {
        let h = histogram(Distribution::ZipfianHead { s: 1.05 }, 10_000, 50_000);
        let head: u64 = h.iter().filter(|(&k, _)| k < 100).map(|(_, &v)| v).sum();
        assert!(
            head as f64 > 0.4 * 50_000.0,
            "first 100 rows should absorb >40% of accesses, got {head}"
        );
    }

    #[test]
    fn uniform_stride_is_balanced() {
        let h = histogram(Distribution::Uniform, 1000, 10_000);
        let max = *h.values().max().unwrap();
        let min = h.values().copied().min().unwrap_or(0);
        assert!(max - min <= 2, "stride should be near-perfectly balanced");
    }

    #[test]
    fn random_covers_the_space() {
        let h = histogram(Distribution::Random, 1000, 50_000);
        assert!(h.len() > 900, "iid uniform should touch most rows");
    }

    #[test]
    fn normal_concentrates_near_the_middle() {
        let h = histogram(Distribution::Normal { sigma_frac: 0.1 }, 10_000, 50_000);
        let central: u64 = h
            .iter()
            .filter(|(&k, _)| (3_000..7_000).contains(&k))
            .map(|(_, &v)| v)
            .sum();
        assert!(central as f64 > 0.9 * 50_000.0);
    }

    #[test]
    fn metalike_has_more_reuse_than_plain_zipf() {
        let reuse = |dist| {
            let mut s = Sampler::new(dist, 100_000, DetRng::new(3));
            let mut last_seen: HashMap<u64, usize> = HashMap::new();
            let mut near = 0u64;
            for i in 0..50_000usize {
                let idx = s.next_index();
                if let Some(&prev) = last_seen.get(&idx) {
                    if i - prev < 512 {
                        near += 1;
                    }
                }
                last_seen.insert(idx, i);
            }
            near
        };
        let meta = reuse(Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        });
        let zipf = reuse(Distribution::Zipfian { s: 1.05 });
        assert!(meta > zipf, "meta={meta} zipf={zipf}");
    }

    #[test]
    fn samplers_are_deterministic() {
        let draws = |seed| {
            let mut s = Sampler::new(Distribution::Zipfian { s: 0.9 }, 1000, DetRng::new(seed));
            (0..100).map(|_| s.next_index()).collect::<Vec<_>>()
        };
        assert_eq!(draws(5), draws(5));
        assert_ne!(draws(5), draws(6));
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_rejected() {
        let _ = Sampler::new(Distribution::Uniform, 0, DetRng::new(0));
    }

    #[test]
    fn parse_covers_labels_and_parameterized_forms() {
        for (label, dist) in Distribution::fig12b_suite() {
            assert_eq!(Distribution::parse(label), Some(dist), "label {label}");
        }
        assert_eq!(
            Distribution::parse("zipf:0.9"),
            Some(Distribution::Zipfian { s: 0.9 })
        );
        assert_eq!(
            Distribution::parse("normal:0.125"),
            Some(Distribution::Normal { sigma_frac: 0.125 })
        );
        assert_eq!(
            Distribution::parse("meta:0.35:1.05"),
            Some(Distribution::MetaLike {
                reuse_frac: 0.35,
                s: 1.05
            })
        );
        assert_eq!(Distribution::parse("uniform"), Some(Distribution::Uniform));
        assert_eq!(Distribution::parse("zipf"), None);
        assert_eq!(Distribution::parse("zipf:0.9:junk"), None);
        assert_eq!(Distribution::parse("nope"), None);
    }
}
