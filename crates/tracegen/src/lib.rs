//! `tracegen` — embedding-access trace generation and analysis.
//!
//! The paper evaluates on the open-source Meta DLRM traces plus four
//! synthetic distribution families (Fig 12(b): Zipfian, Normal, Uniform,
//! Random). The production traces are not redistributable here, so
//! [`Distribution::MetaLike`] synthesizes a trace with the properties the
//! paper actually exploits: heavy skew (a small hot set absorbing most
//! accesses, which the on-switch buffer's HTR policy caches) and
//! short-range temporal reuse (§IV-A4's "temporal locality observed in
//! specific embedding tables").
//!
//! # Examples
//!
//! ```
//! use tracegen::{Distribution, TraceSpec};
//!
//! let spec = TraceSpec {
//!     distribution: Distribution::Zipfian { s: 0.9 },
//!     n_tables: 4,
//!     rows_per_table: 1000,
//!     batch_size: 16,
//!     n_batches: 2,
//!     bag_size: 8,
//!     seed: 42,
//! };
//! let trace = spec.generate();
//! assert_eq!(trace.batches.len(), 2);
//! assert_eq!(trace.total_lookups(), 2 * 16 * 4 * 8);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod arrival;
pub mod dist;
pub mod stream;
pub mod tenant;
pub mod trace;

pub use analysis::TraceProfile;
pub use arrival::{ArrivalGen, ArrivalProcess};
pub use dist::Distribution;
pub use stream::{QueryStream, QueryStreamSpec};
pub use tenant::{QosClass, TenantMixStream, TenantSpec};
pub use trace::{Batch, TableLookups, Trace, TraceSpec};
