//! Measures the heap and wall-clock cost of serving one minute of
//! diurnal traffic through the streamed open-loop path versus the
//! materialized trace path — the source of the PERFORMANCE.md
//! "streamed vs materialized" table.
//!
//! ```text
//! cargo run --release -p pifs-core --example streaming_footprint
//! ```

use pifs_core::system::{OpenLoopOpts, SlsSystem, SystemConfig};
use simkit::stats::{alloc_stats, reset_alloc_peak};
use tracegen::{ArrivalProcess, Distribution, QueryStreamSpec, TraceSpec};

#[global_allocator]
static ALLOC: simkit::stats::CountingAlloc = simkit::stats::CountingAlloc::new();

fn main() {
    let model = dlrm::ModelConfig {
        emb_num: 4096,
        ..dlrm::ModelConfig::rmc1()
    };
    let queries: u64 = 30_000; // 60 s at 500 qps
    let spec = QueryStreamSpec {
        trace: TraceSpec {
            distribution: Distribution::MetaLike {
                reuse_frac: 0.35,
                s: 1.05,
            },
            n_tables: model.n_tables,
            rows_per_table: model.emb_num,
            batch_size: 32,
            n_batches: (queries as u32).div_ceil(32),
            bag_size: model.bag_size,
            seed: 5,
        },
        arrival: ArrivalProcess::Diurnal {
            qps: 500.0,
            amplitude: 0.9,
            period_s: 20.0,
        },
        arrival_seed: 77,
    };
    let cfg = SystemConfig::pifs_rec(model);
    let opts = OpenLoopOpts {
        record_completion: false,
        window_ns: Some(1_000_000_000),
    };

    // Streamed: O(batch) working set.
    let mut sys = SlsSystem::new(cfg.clone());
    let base = alloc_stats().live_bytes;
    reset_alloc_peak();
    let t0 = std::time::Instant::now();
    let m = sys.run_open_loop_stream(&mut spec.stream(), opts);
    let streamed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let streamed_peak = alloc_stats().peak_live_bytes.saturating_sub(base);
    assert_eq!(m.queries, spec.n_queries());
    let streamed_checksum = m.run.checksum;

    // Materialized: the whole trace + arrival vector pinned live.
    let mut sys = SlsSystem::new(cfg);
    let base = alloc_stats().live_bytes;
    reset_alloc_peak();
    let t0 = std::time::Instant::now();
    let trace = spec.trace.generate();
    let arrivals = spec
        .arrival
        .times(spec.n_queries() as usize, spec.arrival_seed);
    let m = sys.run_open_loop(&trace, &arrivals);
    let materialized_ms = t0.elapsed().as_secs_f64() * 1e3;
    let materialized_peak = alloc_stats().peak_live_bytes.saturating_sub(base);
    assert_eq!(m.run.checksum.to_bits(), streamed_checksum.to_bits());

    println!(
        "workload: {} queries, 60 s simulated diurnal traffic",
        m.queries
    );
    println!(
        "materialized: peak heap {:>8.2} MiB, wall {:>7.1} ms",
        materialized_peak as f64 / (1 << 20) as f64,
        materialized_ms
    );
    println!(
        "streamed:     peak heap {:>8.2} MiB, wall {:>7.1} ms",
        streamed_peak as f64 / (1 << 20) as f64,
        streamed_ms
    );
    println!(
        "ratio:        {:.1}x smaller peak, {:+.1}% wall",
        materialized_peak as f64 / streamed_peak.max(1) as f64,
        (streamed_ms / materialized_ms - 1.0) * 100.0
    );
}
