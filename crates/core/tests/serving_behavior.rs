//! End-to-end behavior of the open-loop serving mode through the public
//! façade: conservation, determinism, load sensitivity, and the batcher
//! knobs' observable effects.

use dlrm::ModelConfig;
use pifs_core::system::{ServingMetrics, SlsSystem, SystemConfig};
use simkit::SimTime;
use tracegen::{ArrivalProcess, Distribution, Trace, TraceSpec};

fn small_model() -> ModelConfig {
    ModelConfig {
        emb_num: 4096,
        ..ModelConfig::rmc1()
    }
}

/// A trace with enough samples for `n` open-loop queries.
fn trace_for(model: &ModelConfig, n: u32) -> Trace {
    TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: 16,
        n_batches: n.div_ceil(16),
        bag_size: model.bag_size,
        seed: 5,
    }
    .generate()
}

fn serve(cfg: SystemConfig, qps: f64, n: u32) -> ServingMetrics {
    let trace = trace_for(&cfg.model.clone(), n);
    let arrivals = ArrivalProcess::Poisson { qps }.times(n as usize, 77);
    SlsSystem::new(cfg).run_open_loop(&trace, &arrivals)
}

#[test]
fn every_query_is_accounted_for() {
    let n = 96;
    let m = serve(SystemConfig::pifs_rec(small_model()), 50_000.0, n);
    assert_eq!(m.queries, n as u64);
    assert_eq!(m.latency.count(), n as u64);
    assert_eq!(m.wait.count(), n as u64);
    // One bag per (query, table).
    assert_eq!(m.run.bags, n as u64 * small_model().n_tables as u64);
    assert!(m.batches >= 1);
    assert!(m.mean_batch_fill > 0.0 && m.mean_batch_fill <= 1.0);
    assert!(m.makespan_ns > 0);
    assert!(m.achieved_qps() > 0.0);
}

#[test]
fn serving_runs_are_deterministic() {
    let run = || serve(SystemConfig::pifs_rec(small_model()), 100_000.0, 64);
    let (a, b) = (run(), run());
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.run.total_ns, b.run.total_ns);
}

#[test]
fn latency_grows_or_saturates_with_load() {
    // Tail latency deep in overload must not beat light load: the
    // monotone-or-saturating property the latency_qps scenario plots.
    // A small max-wait keeps the light-load batching floor below the
    // overload queueing delay.
    let p99 = |qps| {
        let mut cfg = SystemConfig::pifs_rec(small_model());
        cfg.apply_knob("serving.max_wait_us", "5").unwrap();
        serve(cfg, qps, 96).latency.percentile(0.99)
    };
    let light = p99(1_000.0);
    let heavy = p99(100_000_000.0);
    assert!(
        heavy >= light,
        "p99 under overload ({heavy} ns) below light load ({light} ns)"
    );
}

#[test]
fn overload_stretches_makespan_past_the_last_arrival() {
    // At an absurd offered rate, all queries arrive almost instantly —
    // the makespan is then service-bound and the achieved rate falls
    // far short of the offered rate (the saturation signature).
    let n = 64u32;
    let qps = 100_000_000.0;
    let cfg = SystemConfig::pifs_rec(small_model());
    let trace = trace_for(&cfg.model.clone(), n);
    let arrivals = ArrivalProcess::Poisson { qps }.times(n as usize, 77);
    let last = arrivals.last().copied().unwrap_or(SimTime::ZERO);
    let m = SlsSystem::new(cfg).run_open_loop(&trace, &arrivals);
    assert!(m.makespan_ns > 4 * last.as_ns());
    assert!(m.achieved_qps() < 0.5 * qps);
}

#[test]
fn max_wait_bounds_idle_queue_latency() {
    // At a trickle arrival rate the fill condition never triggers, so
    // every batch closes on max-wait: the queueing delay component of
    // every query's latency is bounded by the knob.
    let mut cfg = SystemConfig::pond(small_model());
    cfg.apply_knob("serving.max_wait_us", "10").unwrap();
    let m = serve(cfg, 1_000.0, 32);
    assert_eq!(m.queries, 32);
    assert!(
        m.wait.max_ns() <= 10_000,
        "wait {} ns exceeds the 10 µs max-wait at trickle load",
        m.wait.max_ns()
    );
    // Batches stayed far from full (fill condition never reached).
    assert!(m.mean_batch_fill < 0.5, "fill {}", m.mean_batch_fill);
}

#[test]
fn batch_size_one_serves_unbatched() {
    let mut cfg = SystemConfig::pond(small_model());
    cfg.apply_knob("serving.batch_size", "1").unwrap();
    let m = serve(cfg, 20_000.0, 48);
    assert_eq!(m.batches, 48);
    assert_eq!(m.mean_batch_fill, 1.0);
}

#[test]
fn open_loop_replays_are_comparable_across_schemes() {
    // The same trace + arrivals fed to two schemes: the functional
    // checksum must agree (placement-independent arithmetic), while
    // the timing differs.
    let n = 48;
    let pond = serve(SystemConfig::pond(small_model()), 50_000.0, n);
    let pifs = serve(SystemConfig::pifs_rec(small_model()), 50_000.0, n);
    let tol = (pond.run.checksum.abs() + pifs.run.checksum.abs()) * 1e-5 + 1e-6;
    assert!((pond.run.checksum - pifs.run.checksum).abs() <= tol);
    assert_ne!(pond.makespan_ns, pifs.makespan_ns);
}

#[test]
fn warm_system_measures_only_its_own_run() {
    // An open-loop run on a system that already served a closed-loop
    // trace must report this run's latencies and makespan, not absolute
    // simulated time: arrival timestamps are relative to the run start.
    let n = 48u32;
    let cfg = || SystemConfig::pond(small_model());
    let trace = trace_for(&cfg().model, n);
    let arrivals = ArrivalProcess::Poisson { qps: 50_000.0 }.times(n as usize, 77);

    let fresh = SlsSystem::new(cfg()).run_open_loop(&trace, &arrivals);
    let mut warm_sys = SlsSystem::new(cfg());
    let closed = warm_sys.run_trace(&trace);
    assert!(closed.total_ns > 0);
    let warm = warm_sys.run_open_loop(&trace, &arrivals);

    // The prior run's duration must not leak into this run's numbers
    // (cache/placement state may differ slightly; time offsets may not).
    assert!(warm.makespan_ns < fresh.makespan_ns + closed.total_ns / 2);
    assert!(warm.latency.max_ns() < fresh.latency.max_ns() + closed.total_ns / 2);
    assert_eq!(warm.queries, fresh.queries);
}

#[test]
#[should_panic(expected = "sorted non-decreasing")]
fn unsorted_arrivals_rejected() {
    let cfg = SystemConfig::pond(small_model());
    let trace = trace_for(&cfg.model.clone(), 16);
    let arrivals = vec![SimTime::from_ns(10), SimTime::from_ns(5)];
    let _ = SlsSystem::new(cfg).run_open_loop(&trace, &arrivals);
}

#[test]
#[should_panic(expected = "more queries than the trace")]
fn arrival_overrun_rejected() {
    let cfg = SystemConfig::pond(small_model());
    let trace = trace_for(&cfg.model.clone(), 16);
    let arrivals = vec![SimTime::ZERO; 17];
    let _ = SlsSystem::new(cfg).run_open_loop(&trace, &arrivals);
}
