//! Streamed-vs-materialized differential suite: the lazy query path
//! ([`QueryStream`] → `run_open_loop_stream` / `run_open_loop_streamed`)
//! must be byte-identical to the materialized path
//! (`TraceSpec::generate` + `ArrivalProcess::times` → `run_open_loop`)
//! — same histograms, same completion instants, same functional
//! checksums to the bit — across schemes, arrival processes, and
//! pre/post-knee rates. On top of that, a [`SimCheckpoint`] captured at
//! *every* query boundary and resumed to completion must reproduce the
//! straight-through run exactly, and a 1-shard streamed cluster must be
//! the streamed node. Mirrors `cluster_behavior.rs` one axis over.

use dlrm::ModelConfig;
use pifs_core::engine::checkpoint;
use pifs_core::engine::cluster::{ClusterConfig, ClusterMetrics, ShardPolicy, SlsCluster};
use pifs_core::system::{OpenLoopOpts, RunMetrics, ServingMetrics, SlsSystem, SystemConfig};
use pifs_core::SimCheckpoint;
use tracegen::{ArrivalProcess, Distribution, QueryStreamSpec, TraceSpec};

fn small_model() -> ModelConfig {
    ModelConfig {
        emb_num: 4096,
        ..ModelConfig::rmc1()
    }
}

/// The canonical differential workload: same trace recipe and seeds as
/// `cluster_behavior.rs` (`trace_for` seed 5, arrival seed 77), spelled
/// as a stream spec so both paths derive from one value.
fn spec_for(model: &ModelConfig, n: u32, arrival: ArrivalProcess) -> QueryStreamSpec {
    QueryStreamSpec {
        trace: TraceSpec {
            distribution: Distribution::MetaLike {
                reuse_frac: 0.35,
                s: 1.05,
            },
            n_tables: model.n_tables,
            rows_per_table: model.emb_num,
            batch_size: 16,
            n_batches: n.div_ceil(16),
            bag_size: model.bag_size,
            seed: 5,
        },
        arrival,
        arrival_seed: 77,
    }
}

/// The eager reference: materialize the whole trace and arrival vector,
/// then serve them through the classic entry point.
fn materialized(cfg: &SystemConfig, spec: &QueryStreamSpec) -> ServingMetrics {
    let trace = spec.trace.generate();
    let arrivals = spec
        .arrival
        .times(spec.n_queries() as usize, spec.arrival_seed);
    SlsSystem::new(cfg.clone()).run_open_loop(&trace, &arrivals)
}

/// The lazy candidate: same workload, O(batch) memory.
fn streamed(cfg: &SystemConfig, spec: &QueryStreamSpec) -> ServingMetrics {
    SlsSystem::new(cfg.clone()).run_open_loop_stream(&mut spec.stream(), OpenLoopOpts::default())
}

fn assert_run_eq(a: &RunMetrics, b: &RunMetrics, ctx: &str) {
    assert_eq!(a.total_ns, b.total_ns, "{ctx}: total_ns");
    assert_eq!(a.bags, b.bags, "{ctx}: bags");
    assert_eq!(a.lookups, b.lookups, "{ctx}: lookups");
    assert_eq!(a.local_lookups, b.local_lookups, "{ctx}: local_lookups");
    assert_eq!(a.remote_lookups, b.remote_lookups, "{ctx}: remote_lookups");
    assert_eq!(a.cxl_lookups, b.cxl_lookups, "{ctx}: cxl_lookups");
    assert_eq!(a.buffer_hits, b.buffer_hits, "{ctx}: buffer_hits");
    assert_eq!(a.buffer_misses, b.buffer_misses, "{ctx}: buffer_misses");
    assert_eq!(
        a.device_accesses, b.device_accesses,
        "{ctx}: device_accesses"
    );
    assert_eq!(a.migrations, b.migrations, "{ctx}: migrations");
    assert_eq!(a.migration_ns, b.migration_ns, "{ctx}: migration_ns");
    assert_eq!(a.ooo_stalls, b.ooo_stalls, "{ctx}: ooo_stalls");
    assert_eq!(a.sram_spills, b.sram_spills, "{ctx}: sram_spills");
    assert_eq!(
        a.host_link_bytes, b.host_link_bytes,
        "{ctx}: host_link_bytes"
    );
    assert_eq!(
        a.checksum.to_bits(),
        b.checksum.to_bits(),
        "{ctx}: checksum"
    );
    assert_eq!(
        a.mean_bag_ns.to_bits(),
        b.mean_bag_ns.to_bits(),
        "{ctx}: mean_bag_ns"
    );
}

fn assert_serving_eq(a: &ServingMetrics, b: &ServingMetrics, ctx: &str) {
    assert_eq!(a.queries, b.queries, "{ctx}: queries");
    assert_eq!(a.batches, b.batches, "{ctx}: batches");
    assert_eq!(a.makespan_ns, b.makespan_ns, "{ctx}: makespan_ns");
    assert_eq!(a.latency, b.latency, "{ctx}: latency hist");
    assert_eq!(a.wait, b.wait, "{ctx}: wait hist");
    assert_eq!(
        a.mean_batch_fill.to_bits(),
        b.mean_batch_fill.to_bits(),
        "{ctx}: mean_batch_fill"
    );
    assert_eq!(a.completion, b.completion, "{ctx}: completion instants");
    assert_eq!(a.windows, b.windows, "{ctx}: latency windows");
    assert_run_eq(&a.run, &b.run, ctx);
}

fn assert_cluster_eq(a: &ClusterMetrics, b: &ClusterMetrics, ctx: &str) {
    assert_eq!(a.queries, b.queries, "{ctx}: queries");
    assert_eq!(a.latency, b.latency, "{ctx}: latency hist");
    assert_eq!(a.makespan_ns, b.makespan_ns, "{ctx}: makespan_ns");
    assert_eq!(a.agg_bytes, b.agg_bytes, "{ctx}: agg_bytes");
    assert_eq!(
        a.mean_fanout.to_bits(),
        b.mean_fanout.to_bits(),
        "{ctx}: mean_fanout"
    );
    assert_eq!(
        a.checksum.to_bits(),
        b.checksum.to_bits(),
        "{ctx}: checksum"
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(&a.query_checksums),
        bits(&b.query_checksums),
        "{ctx}: per-query checksums"
    );
    assert_eq!(a.per_node.len(), b.per_node.len(), "{ctx}: node count");
    for (i, (na, nb)) in a.per_node.iter().zip(&b.per_node).enumerate() {
        assert_serving_eq(na, nb, &format!("{ctx}: node {i}"));
    }
}

#[test]
fn streamed_matches_materialized_across_schemes() {
    // The tentpole contract on the scheme axis: every engine
    // configuration (host compute, switch compute, DIMM compute,
    // PIFS-Rec) serves the streamed workload byte-identically to the
    // materialized one — the dispatch path is shared, so a divergence
    // anywhere in the plant would show up in at least one scheme.
    let m = small_model();
    let spec = spec_for(&m, 64, ArrivalProcess::Poisson { qps: 50_000.0 });
    for (name, cfg) in [
        ("pond", SystemConfig::pond(m.clone())),
        ("beacon", SystemConfig::beacon(m.clone())),
        ("recnmp", SystemConfig::recnmp(m.clone(), 0.5)),
        ("pifs_rec", SystemConfig::pifs_rec(m.clone())),
    ] {
        assert_serving_eq(&streamed(&cfg, &spec), &materialized(&cfg, &spec), name);
    }
}

#[test]
fn streamed_matches_materialized_across_arrivals_and_rates() {
    // The arrival axis, at a pre-knee rate (batcher mostly fires on
    // max-wait) and a post-knee rate (batcher mostly fires full and
    // queues grow): both regimes exercise different flush interleavings
    // in `open_loop_push`, and both must stay exact.
    let m = small_model();
    let cfg = SystemConfig::pifs_rec(m.clone());
    for qps in [50_000.0, 5_000_000.0] {
        for arrival in [
            ArrivalProcess::Fixed { qps },
            ArrivalProcess::Poisson { qps },
            ArrivalProcess::Bursty {
                qps,
                burst: 0.8,
                dwell_us: 200.0,
            },
            ArrivalProcess::Diurnal {
                qps,
                amplitude: 0.5,
                period_s: 0.001,
            },
        ] {
            let spec = spec_for(&m, 64, arrival);
            let ctx = format!("{arrival:?} @ {qps} qps");
            assert_serving_eq(&streamed(&cfg, &spec), &materialized(&cfg, &spec), &ctx);
        }
    }
}

#[test]
fn windowed_summaries_match_between_paths() {
    // The windowed-latency option rides the same push path on both
    // sides, but only the streaming entry exposes it; drive both
    // through the session API directly to compare window summaries.
    let m = small_model();
    let cfg = SystemConfig::pifs_rec(m.clone());
    let spec = spec_for(
        &m,
        96,
        ArrivalProcess::Diurnal {
            qps: 100_000.0,
            amplitude: 0.5,
            period_s: 0.001,
        },
    );
    let opts = OpenLoopOpts {
        record_completion: true,
        window_ns: Some(100_000),
    };

    let a = SlsSystem::new(cfg.clone()).run_open_loop_stream(&mut spec.stream(), opts);

    // "Materialized" side: pre-generate everything, then push.
    let trace = spec.trace.generate();
    let arrivals = spec
        .arrival
        .times(spec.n_queries() as usize, spec.arrival_seed);
    let mut sys = SlsSystem::new(cfg);
    sys.open_loop_begin(spec.trace.n_tables, opts);
    let mut stream = spec.stream();
    for (qid, &at) in arrivals.iter().enumerate() {
        let (sq, _) = stream.next_query().expect("stream length");
        assert_eq!(sq as usize, qid);
        let _ = trace; // trace and stream bags are proven identical in tracegen
        sys.open_loop_push(at, &stream);
    }
    let b = sys.open_loop_finish();

    assert!(!a.windows.is_empty(), "windowed run must emit summaries");
    assert_serving_eq(&a, &b, "windowed");
    let total: u64 = a.windows.iter().map(|w| w.count).sum();
    assert_eq!(total, a.queries, "every query lands in exactly one window");
}

#[test]
fn checkpoint_resume_at_every_query_matches_straight_through() {
    // The checkpoint contract at its strongest: capture after every
    // single pushed query, resume each capture to completion, and
    // require the full metrics (histograms, completion vector,
    // checksum bits) to equal the straight-through run. Also proves
    // capture is non-perturbing: the original session keeps running
    // after the snapshot and must stay exact too.
    let m = small_model();
    let cfg = SystemConfig::pifs_rec(m.clone());
    let spec = spec_for(&m, 48, ArrivalProcess::Poisson { qps: 200_000.0 });
    let reference = streamed(&cfg, &spec);

    for k in 0..=spec.n_queries() {
        let mut sys = SlsSystem::new(cfg.clone());
        let mut stream = spec.stream();
        sys.open_loop_begin(spec.trace.n_tables, OpenLoopOpts::default());
        assert_eq!(checkpoint::advance(&mut sys, &mut stream, k), k);

        let ck = SimCheckpoint::capture(&sys, &stream);
        assert_eq!(ck.position(), k);

        // The original continues past the capture, unperturbed.
        checkpoint::advance(&mut sys, &mut stream, u64::MAX);
        assert_serving_eq(
            &sys.open_loop_finish(),
            &reference,
            &format!("original after capture at {k}"),
        );

        // The resumed copy replays the suffix from the snapshot alone.
        let (mut rsys, mut rstream) = ck.resume();
        assert_eq!(
            checkpoint::advance(&mut rsys, &mut rstream, u64::MAX),
            spec.n_queries() - k
        );
        assert_serving_eq(
            &rsys.open_loop_finish(),
            &reference,
            &format!("resume at {k}"),
        );
    }
}

#[test]
fn checkpoint_is_reusable_across_sweep_points() {
    // The warm-start shape sweeps actually use: one prefix checkpoint,
    // several points resumed from it — each resume must be independent
    // (resuming twice gives bitwise-equal results) and equal to running
    // its point straight through.
    let m = small_model();
    let cfg = SystemConfig::pifs_rec(m.clone());
    let spec = spec_for(&m, 48, ArrivalProcess::Poisson { qps: 200_000.0 });
    let prefix = 16u64;

    let mut sys = SlsSystem::new(cfg.clone());
    let mut stream = spec.stream();
    sys.open_loop_begin(spec.trace.n_tables, OpenLoopOpts::default());
    checkpoint::advance(&mut sys, &mut stream, prefix);
    let ck = SimCheckpoint::capture(&sys, &stream);

    for point in [24u64, 32, 48] {
        // Straight-through reference for this point: push `point`
        // queries from scratch, then finish.
        let mut ref_sys = SlsSystem::new(cfg.clone());
        let mut ref_stream = spec.stream();
        ref_sys.open_loop_begin(spec.trace.n_tables, OpenLoopOpts::default());
        checkpoint::advance(&mut ref_sys, &mut ref_stream, point);
        let reference = ref_sys.open_loop_finish();

        for attempt in 0..2 {
            let (mut rsys, mut rstream) = ck.resume();
            checkpoint::advance(&mut rsys, &mut rstream, point - prefix);
            assert_serving_eq(
                &rsys.open_loop_finish(),
                &reference,
                &format!("point {point} attempt {attempt}"),
            );
        }
    }
}

#[test]
fn one_shard_streamed_cluster_is_the_streamed_node() {
    // The cluster bridge, streaming edition: a 1-shard streamed cluster
    // must reproduce the plain streamed node exactly under both
    // placement policies, with no aggregation traffic.
    let m = small_model();
    let cfg = SystemConfig::pifs_rec(m.clone());
    let spec = spec_for(&m, 96, ArrivalProcess::Poisson { qps: 50_000.0 });
    let plain = streamed(&cfg, &spec);
    for policy in [ShardPolicy::RowHash, ShardPolicy::TablePartition] {
        let cl = SlsCluster::new(ClusterConfig::new(1, policy, cfg.clone()))
            .run_open_loop_streamed(&mut spec.stream());
        assert_eq!(cl.latency, plain.latency, "{policy:?}");
        assert_eq!(cl.makespan_ns, plain.makespan_ns, "{policy:?}");
        assert_eq!(cl.queries, plain.queries);
        assert_eq!(cl.agg_bytes, 0, "a lone shard never crosses the fabric");
        assert_eq!(cl.mean_fanout, 1.0);
        assert_eq!(cl.per_node.len(), 1);
        assert_run_eq(&cl.per_node[0].run, &plain.run, &format!("{policy:?} node"));
    }
}

#[test]
fn streamed_cluster_matches_materialized_cluster() {
    // Multi-shard: incremental routing + streamed merge must equal the
    // materialized shard_workloads + merge_cluster path field for
    // field, per node, at every shard count and policy — including
    // with hot-row replication, which exercises the streamed hotness
    // scan in `ShardPlacement::build_streamed`.
    let m = small_model();
    let node = SystemConfig::pifs_rec(m.clone());
    let spec = spec_for(&m, 64, ArrivalProcess::Poisson { qps: 50_000.0 });
    let trace = spec.trace.generate();
    let arrivals = spec
        .arrival
        .times(spec.n_queries() as usize, spec.arrival_seed);

    for policy in [ShardPolicy::RowHash, ShardPolicy::TablePartition] {
        for k in [1u16, 2, 4] {
            for hot_rows in [0u32, 8] {
                let mut cfg = ClusterConfig::new(k, policy, node.clone());
                cfg.hot_rows_per_table = hot_rows;
                let eager = SlsCluster::new(cfg.clone()).run_open_loop(&trace, &arrivals);
                let lazy = SlsCluster::new(cfg).run_open_loop_streamed(&mut spec.stream());
                assert_cluster_eq(
                    &lazy,
                    &eager,
                    &format!("{policy:?} k={k} hot_rows={hot_rows}"),
                );
            }
        }
    }
}
