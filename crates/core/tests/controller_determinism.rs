//! Determinism of the serving controllers through the public façade:
//! every [`ControllerPolicy`] is a pure function of sim-time-visible
//! state, so two identically-seeded open-loop runs agree to the bit —
//! the property that makes adaptive goldens possible at all.

use dlrm::ModelConfig;
use pifs_core::system::{ServingMetrics, SlsSystem, SystemConfig};
use proptest::prelude::*;
use tracegen::{ArrivalProcess, Distribution, Trace, TraceSpec};

/// Every `serving.controller` spelling the knob accepts.
const CONTROLLERS: [&str; 4] = ["fixed", "load", "epoch", "adaptive"];

fn small_model() -> ModelConfig {
    ModelConfig {
        emb_num: 4096,
        ..ModelConfig::rmc1()
    }
}

fn trace_for(model: &ModelConfig, n: u32) -> Trace {
    TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: 16,
        n_batches: n.div_ceil(16),
        bag_size: model.bag_size,
        seed: 5,
    }
    .generate()
}

fn serve(controller: &str, arrival: &ArrivalProcess, n: u32) -> ServingMetrics {
    let mut cfg = SystemConfig::pifs_rec(small_model());
    cfg.apply_knob("serving.max_wait_us", "10").unwrap();
    cfg.apply_knob("serving.controller", controller).unwrap();
    let trace = trace_for(&cfg.model.clone(), n);
    let arrivals = arrival.times(n as usize, 77);
    SlsSystem::new(cfg).run_open_loop(&trace, &arrivals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two fresh runs of any controller over any arrival shape and
    /// load agree on every metric bit — histograms, knob trajectory
    /// side effects (batch count), PM epochs, and the SLS checksum.
    #[test]
    fn prop_every_controller_is_deterministic(
        ctl_idx in 0usize..CONTROLLERS.len(),
        arrival_idx in 0usize..3,
        qps_idx in 0usize..3,
    ) {
        let controller = CONTROLLERS[ctl_idx];
        let qps = [50_000.0f64, 2_000_000.0, 100_000_000.0][qps_idx];
        let arrival = [
            ArrivalProcess::Poisson { qps },
            ArrivalProcess::Bursty { qps, burst: 0.8, dwell_us: 200.0 },
            ArrivalProcess::parse("flash:4:0.0001:0.0002", qps).unwrap(),
        ][arrival_idx];
        let a = serve(controller, &arrival, 256);
        let b = serve(controller, &arrival, 256);
        prop_assert_eq!(&a.latency, &b.latency, "latency hist drifted ({})", controller);
        prop_assert_eq!(&a.wait, &b.wait, "wait hist drifted ({})", controller);
        prop_assert_eq!(a.makespan_ns, b.makespan_ns);
        prop_assert_eq!(a.batches, b.batches);
        prop_assert_eq!(a.pm_epochs, b.pm_epochs);
        prop_assert_eq!(a.run.checksum.to_bits(), b.run.checksum.to_bits());
        prop_assert_eq!(a.queries, 256u64, "open-loop conservation");
    }
}

/// The load controller demonstrably *acts* under sustained overload —
/// it grows the batch, so the run closes fewer, fuller batches than
/// the fixed policy over the identical workload. Guards against the
/// silent-no-op regression where the tick never fires within a run.
#[test]
fn load_controller_resizes_batches_under_overload() {
    let overload = ArrivalProcess::Poisson { qps: 100_000_000.0 };
    let fixed = serve("fixed", &overload, 512);
    let load = serve("load", &overload, 512);
    assert!(
        load.batches < fixed.batches,
        "load controller closed {} batches vs fixed {} — it never grew the batch",
        load.batches,
        fixed.batches
    );
    assert_eq!(
        fixed.queries, load.queries,
        "same offered queries either way"
    );
}

/// The fixed policy is the default: an untouched config and an explicit
/// `serving.controller=fixed` produce bit-identical runs, so every
/// pre-controller golden stays valid.
#[test]
fn fixed_spelling_is_byte_identical_to_the_default_config() {
    let arrival = ArrivalProcess::Bursty {
        qps: 2_000_000.0,
        burst: 0.8,
        dwell_us: 200.0,
    };
    let explicit = serve("fixed", &arrival, 256);
    let mut cfg = SystemConfig::pifs_rec(small_model());
    cfg.apply_knob("serving.max_wait_us", "10").unwrap();
    let trace = trace_for(&cfg.model.clone(), 256);
    let arrivals = arrival.times(256, 77);
    let default = SlsSystem::new(cfg).run_open_loop(&trace, &arrivals);
    assert_eq!(explicit.latency, default.latency);
    assert_eq!(explicit.makespan_ns, default.makespan_ns);
    assert_eq!(explicit.batches, default.batches);
    assert_eq!(
        explicit.run.checksum.to_bits(),
        default.run.checksum.to_bits()
    );
}
