//! End-to-end behavior of the cluster layer through the public façade:
//! the 1-shard byte-identity bridge to plain serving, shard-count and
//! policy invariance of the exact merge plane, query/lookup
//! conservation (including under hot-row replication), determinism, and
//! load monotonicity. Mirrors `serving_behavior.rs` one level up.

use dlrm::ModelConfig;
use pifs_core::engine::cluster::{ClusterConfig, ClusterMetrics, ShardPolicy, SlsCluster};
use pifs_core::system::{SlsSystem, SystemConfig};
use simkit::SimTime;
use tracegen::{ArrivalProcess, Distribution, Trace, TraceSpec};

fn small_model() -> ModelConfig {
    ModelConfig {
        emb_num: 4096,
        ..ModelConfig::rmc1()
    }
}

/// A trace with enough samples for `n` open-loop queries.
fn trace_for(model: &ModelConfig, n: u32) -> Trace {
    TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: 16,
        n_batches: n.div_ceil(16),
        bag_size: model.bag_size,
        seed: 5,
    }
    .generate()
}

fn cluster_cfg(k: u16, policy: ShardPolicy) -> ClusterConfig {
    ClusterConfig::new(k, policy, SystemConfig::pifs_rec(small_model()))
}

fn serve_cluster(cfg: ClusterConfig, qps: f64, n: u32) -> ClusterMetrics {
    let trace = trace_for(&cfg.node.model.clone(), n);
    let arrivals = ArrivalProcess::Poisson { qps }.times(n as usize, 77);
    SlsCluster::new(cfg).run_open_loop(&trace, &arrivals)
}

#[test]
fn one_shard_cluster_is_byte_identical_to_plain_serving() {
    // The cluster acceptance bar: a 1-shard cluster IS the node. Same
    // latency histogram, same makespan, no aggregation traffic.
    let n = 96u32;
    let qps = 50_000.0;
    let node_cfg = SystemConfig::pifs_rec(small_model());
    let trace = trace_for(&node_cfg.model.clone(), n);
    let arrivals = ArrivalProcess::Poisson { qps }.times(n as usize, 77);

    let plain = SlsSystem::new(node_cfg.clone()).run_open_loop(&trace, &arrivals);
    for policy in [ShardPolicy::RowHash, ShardPolicy::TablePartition] {
        let m = SlsCluster::new(ClusterConfig::new(1, policy, node_cfg.clone()))
            .run_open_loop(&trace, &arrivals);
        assert_eq!(m.latency, plain.latency, "{policy:?}");
        assert_eq!(m.makespan_ns, plain.makespan_ns, "{policy:?}");
        assert_eq!(m.queries, plain.queries);
        assert_eq!(m.agg_bytes, 0, "a lone shard never crosses the fabric");
        assert_eq!(m.mean_fanout, 1.0);
        assert_eq!(m.per_node.len(), 1);
        assert_eq!(m.per_node[0].run.total_ns, plain.run.total_ns);
        assert_eq!(
            m.per_node[0].run.checksum.to_bits(),
            plain.run.checksum.to_bits()
        );
    }
}

#[test]
fn merged_checksums_are_shard_count_and_policy_invariant() {
    // The exact f64 merge plane: per-query checksums must be
    // bit-identical at every shard count under both policies — the
    // functional core of the shard-invariance suite.
    let n = 64u32;
    let base = serve_cluster(cluster_cfg(1, ShardPolicy::RowHash), 50_000.0, n);
    assert_eq!(base.query_checksums.len(), n as usize);
    for policy in [ShardPolicy::RowHash, ShardPolicy::TablePartition] {
        for k in [1u16, 2, 4, 8] {
            let m = serve_cluster(cluster_cfg(k, policy), 50_000.0, n);
            assert_eq!(
                m.checksum.to_bits(),
                base.checksum.to_bits(),
                "{policy:?} k={k}"
            );
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            assert_eq!(
                bits(&m.query_checksums),
                bits(&base.query_checksums),
                "{policy:?} k={k}: per-query checksums must merge exactly"
            );
        }
    }
}

#[test]
fn lookups_are_conserved_across_shards() {
    // Every (query, table, row) lookup is served exactly once, however
    // the rows scatter. `run.lookups` (not `bags`: non-owned tables
    // contribute empty zero-cost bags that still count as bags).
    let n = 64u32;
    let model = small_model();
    let expected = n as u64 * model.n_tables as u64 * model.bag_size as u64;
    for policy in [ShardPolicy::RowHash, ShardPolicy::TablePartition] {
        for k in [1u16, 2, 4, 8] {
            let m = serve_cluster(cluster_cfg(k, policy), 50_000.0, n);
            let total: u64 = m.per_node.iter().map(|s| s.run.lookups).sum();
            assert_eq!(total, expected, "{policy:?} k={k}");
            assert_eq!(m.queries, n as u64);
            assert_eq!(m.latency.count(), n as u64);
        }
    }
}

#[test]
fn replication_keeps_conservation_and_exactness() {
    // Hot-row replication must not duplicate or drop lookups, must not
    // perturb the exact merge, and must not increase fan-out.
    let n = 64u32;
    let model = small_model();
    let expected = n as u64 * model.n_tables as u64 * model.bag_size as u64;
    let base = serve_cluster(cluster_cfg(4, ShardPolicy::RowHash), 50_000.0, n);
    let mut cfg = cluster_cfg(4, ShardPolicy::RowHash);
    cfg.hot_rows_per_table = 32;
    let m = serve_cluster(cfg, 50_000.0, n);
    let total: u64 = m.per_node.iter().map(|s| s.run.lookups).sum();
    assert_eq!(total, expected, "replicas must serve each lookup once");
    assert_eq!(m.checksum.to_bits(), base.checksum.to_bits());
    assert!(
        m.mean_fanout <= base.mean_fanout,
        "co-routing replicas must not widen fan-out ({} > {})",
        m.mean_fanout,
        base.mean_fanout
    );
}

#[test]
fn cluster_runs_are_deterministic() {
    let run = || serve_cluster(cluster_cfg(4, ShardPolicy::RowHash), 100_000.0, 64);
    let (a, b) = (run(), run());
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.agg_bytes, b.agg_bytes);
    assert_eq!(a.checksum.to_bits(), b.checksum.to_bits());
}

#[test]
fn cluster_latency_grows_or_saturates_with_load() {
    // Same monotone-or-saturating property the single node honors —
    // the cluster_qps scenario plots exactly this per node count.
    let p99 = |qps| {
        let mut cfg = cluster_cfg(4, ShardPolicy::RowHash);
        cfg.node.apply_knob("serving.max_wait_us", "5").unwrap();
        serve_cluster(cfg, qps, 96).latency.percentile(0.99)
    };
    let light = p99(1_000.0);
    let heavy = p99(100_000_000.0);
    assert!(
        heavy >= light,
        "cluster p99 under overload ({heavy} ns) below light load ({light} ns)"
    );
}

#[test]
fn sharding_splits_the_per_node_service_work() {
    // The scaling lever the cluster_qps scenario measures: each node
    // serves a strict fraction of the lookups. (Cluster *makespan* may
    // still lose at toy scale — the aggregation link serializes the
    // cross-shard partials — which is exactly the knee-vs-nodes
    // trade-off the scenario sweeps.)
    let qps = 100_000_000.0;
    let n = 96u32;
    let model = small_model();
    let total = n as u64 * model.n_tables as u64 * model.bag_size as u64;
    let one = serve_cluster(cluster_cfg(1, ShardPolicy::TablePartition), qps, n);
    assert_eq!(one.per_node[0].run.lookups, total);
    let eight = serve_cluster(cluster_cfg(8, ShardPolicy::TablePartition), qps, n);
    // RMC1 has 8 tables: table-partition over 8 shards is one table per
    // node, an exactly even lookup split.
    for node in &eight.per_node {
        assert_eq!(node.run.lookups, total / 8);
        assert!(node.run.total_ns < one.per_node[0].run.total_ns);
    }
}

#[test]
#[should_panic(expected = "at least one shard")]
fn zero_shards_rejected() {
    let mut cfg = cluster_cfg(1, ShardPolicy::RowHash);
    cfg.n_shards = 0;
    let _ = SlsCluster::new(cfg);
}

#[test]
#[should_panic(expected = "more queries than the trace")]
fn cluster_arrival_overrun_rejected() {
    let cfg = cluster_cfg(2, ShardPolicy::RowHash);
    let trace = trace_for(&cfg.node.model.clone(), 16);
    let arrivals = vec![SimTime::ZERO; 17];
    let _ = SlsCluster::new(cfg).run_open_loop(&trace, &arrivals);
}
