//! Property tests for the cluster placement policies and the exact
//! partial-sum merge: single ownership, routing determinism, the
//! policies' shard-count stability promises, replica/owner agreement,
//! and bitwise equality of the fixed-shard-order merge with the exact
//! whole-bag reference (plus the f32 scalar reference on small bags,
//! where the cast is provably exact).

use dlrm::sls::{sls_reference_exact, sls_reference_scalar};
use dlrm::EmbeddingTable;
use pifs_core::engine::cluster::{
    merged_bag_embedding, ClusterConfig, ShardPlacement, ShardPolicy,
};
use pifs_core::system::SystemConfig;
use proptest::prelude::*;
use tracegen::{Batch, TableLookups, Trace};

const POLICIES: [ShardPolicy; 2] = [ShardPolicy::RowHash, ShardPolicy::TablePartition];

/// A placement over `n_tables` tables with no replication (the build
/// only reads the trace's access stream when replication is on).
fn placement(k: u16, policy: ShardPolicy, n_tables: u32, rows: u64) -> ShardPlacement {
    let cfg = ClusterConfig::new(k, policy, SystemConfig::pifs_rec_default());
    ShardPlacement::build(&cfg, &empty_trace(n_tables, rows))
}

fn empty_trace(n_tables: u32, rows: u64) -> Trace {
    Trace {
        n_tables,
        rows_per_table: rows,
        batch_size: 1,
        bag_size: 1,
        batches: Vec::new(),
    }
}

/// A one-batch trace whose single sample's bag (every table) is `bag` —
/// enough to drive the hotness tracker for replication builds.
fn bag_trace(n_tables: u32, rows: u64, bag: &[u64]) -> Trace {
    let offsets = vec![0u32, bag.len() as u32];
    Trace {
        n_tables,
        rows_per_table: rows,
        batch_size: 1,
        bag_size: bag.len() as u32,
        batches: vec![Batch {
            tables: (0..n_tables)
                .map(|t| TableLookups::with_offsets(t, bag.to_vec(), offsets.clone()))
                .collect(),
        }],
    }
}

proptest! {
    #[test]
    fn prop_every_row_has_exactly_one_owner(
        k in 1u16..9,
        n_tables in 1u32..12,
        rows in proptest::collection::vec(0u64..100_000, 1..48),
    ) {
        for policy in POLICIES {
            let p = placement(k, policy, n_tables, 100_000);
            for t in 0..n_tables {
                let mut route = Vec::new();
                p.route_bag(t, &rows, &mut route);
                prop_assert_eq!(route.len(), rows.len());
                for (&row, &s) in rows.iter().zip(&route) {
                    // In range, equal to the owner (no replication), and
                    // a pure function of (table, row).
                    prop_assert!(s < k);
                    prop_assert_eq!(s, p.owner(t, row));
                    prop_assert_eq!(s, p.owner(t, row));
                }
                // Routing is deterministic across calls.
                let mut again = Vec::new();
                p.route_bag(t, &rows, &mut again);
                prop_assert_eq!(&route, &again);
            }
        }
    }

    #[test]
    fn prop_row_hash_owner_is_stable_mod_shard_count(
        k in 1u16..6,
        m in 1u16..6,
        table in 0u32..8,
        row in 0u64..1_000_000,
    ) {
        // The RowHash promise: growing the cluster k → m·k moves a row
        // only within its residue class — owner_at(m·k) ≡ owner_at(k)
        // (mod k), because both reduce the same shard-count-free hash.
        let coarse = ShardPolicy::RowHash.owner(k, 8, table, row);
        let fine = ShardPolicy::RowHash.owner(m * k, 8, table, row);
        prop_assert_eq!(fine % k, coarse);
    }

    #[test]
    fn prop_table_partition_refines_hierarchically(
        k in 1u16..6,
        m in 1u16..6,
        n_tables in 1u32..16,
        row in 0u64..1_000_000,
    ) {
        // The TablePartition promise: each coarse shard's table range
        // splits into its m children — owner_at(k) = ⌊owner_at(m·k)/m⌋
        // — and owners never depend on the row.
        for table in 0..n_tables {
            let coarse = ShardPolicy::TablePartition.owner(k, n_tables, table, row);
            let fine = ShardPolicy::TablePartition.owner(m * k, n_tables, table, row);
            prop_assert_eq!(fine / m, coarse);
            prop_assert_eq!(
                coarse,
                ShardPolicy::TablePartition.owner(k, n_tables, table, 0)
            );
        }
    }

    #[test]
    fn prop_replicas_agree_with_their_owner(
        k in 2u16..8,
        hot in 1u32..8,
        bag in proptest::collection::vec(0u64..256, 1..24),
    ) {
        // Replication must be invisible to the functional plane: the
        // replicated placement's merged embedding is bit-identical to
        // the unreplicated one (replicas carry the owner's values), and
        // every bag row is still served exactly once.
        let trace = bag_trace(2, 256, &bag);
        let mut cfg = ClusterConfig::new(k, ShardPolicy::RowHash, SystemConfig::pifs_rec_default());
        let plain = ShardPlacement::build(&cfg, &trace);
        cfg.hot_rows_per_table = hot;
        let repl = ShardPlacement::build(&cfg, &trace);
        let table = EmbeddingTable::new(0, 256, 32, 0);
        let a = merged_bag_embedding(&plain, &table, 0, &bag);
        let b = merged_bag_embedding(&repl, &table, 0, &bag);
        prop_assert_eq!(a, b);
        let mut route = Vec::new();
        repl.route_bag(0, &bag, &mut route);
        prop_assert_eq!(route.len(), bag.len());
        for &s in &route {
            prop_assert!(s < k);
        }
    }

    #[test]
    fn prop_merge_in_shard_order_equals_the_exact_reference(
        k in 1u16..9,
        dim in 1u32..256,
        bag in proptest::collection::vec(0u64..4096, 1..32),
    ) {
        // The tentpole invariant: per-shard partials merged in fixed
        // shard-index order are bit-identical to summing the whole bag
        // in one place — for every k, both policies, any dim. (The f64
        // plane is exact, hence associative; see engine::cluster docs.)
        let reference = sls_reference_exact(&EmbeddingTable::new(0, 4096, dim, 0), &bag, None);
        for policy in POLICIES {
            let p = placement(k, policy, 4, 4096);
            let table = EmbeddingTable::new(0, 4096, dim, 0);
            let merged = merged_bag_embedding(&p, &table, 0, &bag);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            prop_assert_eq!(bits(&merged), bits(&reference));
        }
    }

    #[test]
    fn prop_small_bag_merge_casts_to_the_scalar_reference(
        k in 1u16..5,
        dim in 1u32..64,
        bag in proptest::collection::vec(0u64..4096, 1..5),
    ) {
        // Bags of ≤ 4 rows: numerators stay below 2²⁴, so the f32 fold
        // is itself exact and the f64 merge casts to it bitwise.
        let table = EmbeddingTable::new(0, 4096, dim, 0);
        let scalar = sls_reference_scalar(&table, &bag, None);
        for policy in POLICIES {
            let p = placement(k, policy, 4, 4096);
            let merged = merged_bag_embedding(&p, &table, 0, &bag);
            let cast: Vec<u32> = merged.iter().map(|&v| (v as f32).to_bits()).collect();
            let want: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(cast, want);
        }
    }
}
