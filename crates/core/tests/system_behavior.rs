//! End-to-end behavior of the composed system across every scheme:
//! conservation, determinism, placement-independent checksums, and the
//! paper's headline orderings. These exercise the whole engine stack
//! through the public façade only.

use dlrm::ModelConfig;
use pifs_core::system::{RunMetrics, SlsSystem, SystemConfig};
use tracegen::{Distribution, Trace, TraceSpec};

fn small_model() -> ModelConfig {
    ModelConfig {
        emb_num: 4096,
        ..ModelConfig::rmc1()
    }
}

fn trace_for(model: &ModelConfig, batches: u32, batch: u32, seed: u64) -> Trace {
    TraceSpec {
        distribution: Distribution::MetaLike {
            reuse_frac: 0.35,
            s: 1.05,
        },
        n_tables: model.n_tables,
        rows_per_table: model.emb_num,
        batch_size: batch,
        n_batches: batches,
        bag_size: model.bag_size,
        seed,
    }
    .generate()
}

fn run(cfg: SystemConfig, seed: u64) -> RunMetrics {
    run_batches(cfg, seed, 6)
}

fn run_batches(cfg: SystemConfig, seed: u64, batches: u32) -> RunMetrics {
    let trace = trace_for(&cfg.model.clone(), batches, 16, seed);
    SlsSystem::new(cfg).run_trace(&trace)
}

fn assert_close(a: f64, b: f64) {
    let tol = (a.abs() + b.abs()) * 1e-5 + 1e-6;
    assert!((a - b).abs() <= tol, "checksums differ: {a} vs {b}");
}

#[test]
fn every_lookup_is_accounted_for() {
    let m = run_batches(SystemConfig::pifs_rec(small_model()), 3, 2);
    assert_eq!(
        m.lookups,
        m.local_lookups + m.remote_lookups + m.cxl_lookups
    );
    assert_eq!(m.bags, 2 * 16 * 8);
    assert_eq!(m.lookups, m.bags * 8);
}

#[test]
fn runs_are_deterministic() {
    let a = run(SystemConfig::pifs_rec(small_model()), 3);
    let b = run(SystemConfig::pifs_rec(small_model()), 3);
    assert_eq!(a.total_ns, b.total_ns);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.device_accesses, b.device_accesses);
}

#[test]
fn checksum_is_placement_independent() {
    // The functional SLS result must not depend on where rows live or
    // where accumulation happens (up to FP32 reassociation; the
    // per-bag fold order here is identical, so it is exact).
    let pond = run(SystemConfig::pond(small_model()), 7);
    let beacon = run(SystemConfig::beacon(small_model()), 7);
    let pifs = run(SystemConfig::pifs_rec(small_model()), 7);
    let recnmp = run(SystemConfig::recnmp(small_model(), 0.5), 7);
    assert_close(pond.checksum, beacon.checksum);
    assert_close(pond.checksum, pifs.checksum);
    assert_close(pond.checksum, recnmp.checksum);
}

#[test]
fn pifs_beats_beacon_beats_pond() {
    let pond = run(SystemConfig::pond(small_model()), 5);
    let beacon = run(SystemConfig::beacon(small_model()), 5);
    let pifs = run(SystemConfig::pifs_rec(small_model()), 5);
    assert!(
        pifs.total_ns < beacon.total_ns,
        "pifs={} beacon={}",
        pifs.total_ns,
        beacon.total_ns
    );
    assert!(
        beacon.total_ns < pond.total_ns,
        "beacon={} pond={}",
        beacon.total_ns,
        pond.total_ns
    );
}

#[test]
fn page_management_helps_pond() {
    let pond = run(SystemConfig::pond(small_model()), 9);
    let pond_pm = run(SystemConfig::pond_pm(small_model()), 9);
    assert!(
        pond_pm.total_ns < pond.total_ns,
        "pond_pm={} pond={}",
        pond_pm.total_ns,
        pond.total_ns
    );
    assert!(pond_pm.local_lookups > 0);
}

#[test]
fn buffer_hits_occur_on_skewed_traffic() {
    let m = run(SystemConfig::pifs_rec(small_model()), 11);
    assert!(
        m.buffer_hits > 0,
        "HTR buffer should hit on a Meta-like trace"
    );
    assert!(m.buffer_hit_ratio() > 0.05);
}

#[test]
fn ooo_reduces_stalls_to_zero() {
    let mut cfg = SystemConfig::beacon(small_model());
    cfg.ooo = false;
    let in_order = run(cfg.clone(), 13);
    cfg.ooo = true;
    let ooo = run(cfg, 13);
    assert!(in_order.ooo_stalls > 0);
    assert_eq!(ooo.ooo_stalls, 0);
    assert!(ooo.total_ns <= in_order.total_ns);
}

#[test]
fn multi_host_improves_makespan() {
    let mut cfg = SystemConfig::pifs_rec(small_model());
    cfg.n_hosts = 1;
    let trace = trace_for(&cfg.model.clone(), 4, 16, 17);
    let one = SlsSystem::new(cfg.clone()).run_trace(&trace);
    cfg.n_hosts = 4;
    let four = SlsSystem::new(cfg).run_trace(&trace);
    assert!(
        four.total_ns < one.total_ns,
        "four hosts {} vs one {}",
        four.total_ns,
        one.total_ns
    );
}

#[test]
fn multi_switch_runs_and_stays_correct() {
    let mut cfg = SystemConfig::pifs_rec(small_model());
    cfg.n_switches = 4;
    cfg.n_devices = 8;
    let trace = trace_for(&cfg.model.clone(), 2, 8, 19);
    let multi = SlsSystem::new(cfg.clone()).run_trace(&trace);
    cfg.n_switches = 1;
    let single = SlsSystem::new(cfg).run_trace(&trace);
    assert_close(multi.checksum, single.checksum);
    assert!(multi.total_ns > 0);
}

#[test]
fn device_accesses_cover_all_devices_under_spreading() {
    let m = run(SystemConfig::pifs_rec(small_model()), 23);
    assert_eq!(m.device_accesses.len(), 8);
    let active = m.device_accesses.iter().filter(|&&c| c > 0).count();
    assert!(
        active >= 6,
        "spreading should use most devices: {:?}",
        m.device_accesses
    );
}

#[test]
fn migration_overhead_is_tracked_when_pm_enabled() {
    let pifs = run(SystemConfig::pifs_rec(small_model()), 29);
    assert!(pifs.migrations > 0, "PM should migrate on a skewed trace");
    assert!(pifs.migration_ns > 0);
    let pond = run(SystemConfig::pond(small_model()), 29);
    assert_eq!(pond.migrations, 0);
    assert_eq!(pond.migration_ns, 0);
}

#[test]
fn app_bandwidth_is_positive_and_bounded() {
    let m = run(SystemConfig::pifs_rec(small_model()), 31);
    let bw = m.app_bandwidth_gbps(small_model().row_bytes());
    assert!(bw > 0.0);
    assert!(bw < 10_000.0, "bandwidth {bw} GB/s is implausible");
}
