//! Bounded-memory guard for the streaming serving path: a long
//! open-loop run driven by a [`tracegen::QueryStream`] must hold its
//! heap footprint flat — O(batch), not O(trace) — because everything
//! that scales with trace length is either recycled (bag buffers, the
//! pending-query row store) or bounded (log-bucketed histograms, the
//! batcher's ≤ batch-size queue, the windowed-latency deque whose
//! windows retire as batches close).
//!
//! The binary installs [`simkit::stats::CountingAlloc`] as the global
//! allocator and keeps a single `#[test]` so no concurrent test
//! pollutes the process-wide counters.

use pifs_core::engine::checkpoint;
use pifs_core::system::{OpenLoopOpts, SlsSystem, SystemConfig};
use simkit::stats::{alloc_stats, reset_alloc_peak};
use tracegen::{ArrivalProcess, Distribution, QueryStreamSpec, TraceSpec};

#[global_allocator]
static ALLOC: simkit::stats::CountingAlloc = simkit::stats::CountingAlloc::new();

#[test]
fn streamed_open_loop_runs_in_bounded_memory() {
    let model = dlrm::ModelConfig {
        emb_num: 4096,
        ..dlrm::ModelConfig::rmc1()
    };
    let spec = QueryStreamSpec {
        trace: TraceSpec {
            distribution: Distribution::MetaLike {
                reuse_frac: 0.35,
                s: 1.05,
            },
            n_tables: model.n_tables,
            rows_per_table: model.emb_num,
            batch_size: 16,
            n_batches: 512, // 8192 queries
            bag_size: model.bag_size,
            seed: 5,
        },
        arrival: ArrivalProcess::Poisson { qps: 500_000.0 },
        arrival_seed: 77,
    };
    // What `TraceSpec::generate` would materialize for this workload:
    // every row index of every bag, up front.
    let materialized_bytes = spec.trace.n_batches as u64
        * spec.trace.n_tables as u64
        * spec.trace.batch_size as u64
        * spec.trace.bag_size as u64
        * std::mem::size_of::<u64>() as u64;
    assert!(
        materialized_bytes >= 4 << 20,
        "workload too small to prove anything"
    );

    let mut sys = SlsSystem::new(SystemConfig::pifs_rec(model));
    let mut stream = spec.stream();
    sys.open_loop_begin(
        spec.trace.n_tables,
        OpenLoopOpts {
            record_completion: false, // the one intentionally O(queries) buffer
            window_ns: Some(1_000_000),
        },
    );

    // Warm up past one-time growth: histogram bucket vectors, hotness
    // maps over the (finite) row space, scratch high-water marks.
    let quarter = spec.n_queries() / 4;
    checkpoint::advance(&mut sys, &mut stream, 2 * quarter);
    let warm = alloc_stats().live_bytes;
    reset_alloc_peak();

    // Steady state, first half: live growth and transient peak.
    checkpoint::advance(&mut sys, &mut stream, quarter);
    let early_growth = alloc_stats().live_bytes.saturating_sub(warm);

    // Steady state, second half.
    checkpoint::advance(&mut sys, &mut stream, quarter);
    let late = alloc_stats();
    let total_growth = late.live_bytes.saturating_sub(warm);
    let late_growth = total_growth.saturating_sub(early_growth);
    let peak_over_warm = late.peak_live_bytes.saturating_sub(warm);

    let m = sys.open_loop_finish();
    assert_eq!(m.queries, spec.n_queries());
    assert!(m.completion.is_empty());
    assert!(
        !m.windows.is_empty(),
        "windowed summaries must have retired"
    );

    // The streamed run's transient peak above steady state must be a
    // small fraction of what materializing the trace would pin live for
    // the whole run.
    assert!(
        peak_over_warm < materialized_bytes / 8,
        "streaming peak grew {peak_over_warm} B over warm state — \
         not meaningfully below the {materialized_bytes} B materialized footprint"
    );
    // And steady state is flat: the second steady-state window may not
    // allocate meaningfully more than the first (both should be ~0; the
    // slack absorbs retired-window summaries and allocator jitter).
    const SLACK: u64 = 256 << 10;
    assert!(
        late_growth <= early_growth + SLACK,
        "late-window live growth {late_growth} B exceeds early-window \
         {early_growth} B + {SLACK} B — steady state is leaking per-query memory"
    );
    assert!(
        total_growth < 1 << 20,
        "live bytes grew {total_growth} B across 4096 steady-state queries"
    );
}
