//! Resilience behavior of the cluster layer under injected faults:
//! conservation of every offered query and lookup across the
//! served/degraded/shed/lost split, byte-identity of the zero-fault
//! paths to the historical merge, bit-identity of full-coverage
//! answers under timing-only faults, determinism of faulty runs, and
//! streamed-vs-materialized equivalence with faults and shedding
//! active. Mirrors `cluster_behavior.rs` one hazard over.

use dlrm::ModelConfig;
use pifs_core::engine::cluster::{ClusterConfig, ClusterMetrics, ShardPolicy, SlsCluster};
use pifs_core::system::{ShedPolicy, SystemConfig};
use proptest::prelude::*;
use simkit::{FaultSchedule, FaultSpec};
use tracegen::{ArrivalProcess, Distribution, QueryStreamSpec, TraceSpec};

fn small_model() -> ModelConfig {
    ModelConfig {
        emb_num: 4096,
        ..ModelConfig::rmc1()
    }
}

/// Same workload recipe as `cluster_behavior.rs` / the streaming
/// differential suite (trace seed 5, arrival seed 77).
fn spec_for(model: &ModelConfig, n: u32, qps: f64) -> QueryStreamSpec {
    QueryStreamSpec {
        trace: TraceSpec {
            distribution: Distribution::MetaLike {
                reuse_frac: 0.35,
                s: 1.05,
            },
            n_tables: model.n_tables,
            rows_per_table: model.emb_num,
            batch_size: 16,
            n_batches: n.div_ceil(16),
            bag_size: model.bag_size,
            seed: 5,
        },
        arrival: ArrivalProcess::Poisson { qps },
        arrival_seed: 77,
    }
}

/// A faulted 3-node cluster config over the small model.
fn faulted_cfg(fault: &str, shed: ShedPolicy, replicas: u32, fault_seed: u64) -> ClusterConfig {
    let mut node = SystemConfig::pifs_rec(small_model());
    node.serving.shed = shed;
    let spec = FaultSpec::parse(fault).expect("fault spec");
    let mut cfg = ClusterConfig::new(3, ShardPolicy::RowHash, node);
    cfg.hot_rows_per_table = replicas;
    cfg.faults = FaultSchedule::generate(spec, fault_seed, 3, 10_000_000);
    cfg.partial_timeout_ns = Some(100_000);
    cfg
}

fn run_materialized(cfg: &ClusterConfig, spec: &QueryStreamSpec) -> ClusterMetrics {
    let trace = spec.trace.generate();
    let arrivals = spec
        .arrival
        .times(spec.n_queries() as usize, spec.arrival_seed);
    SlsCluster::new(cfg.clone()).run_open_loop(&trace, &arrivals)
}

fn run_streamed(cfg: &ClusterConfig, spec: &QueryStreamSpec) -> ClusterMetrics {
    SlsCluster::new(cfg.clone()).run_open_loop_streamed(&mut spec.stream())
}

fn assert_conserved(m: &ClusterMetrics, ctx: &str) {
    assert_eq!(
        m.fully_served + m.degraded + m.shed + m.lost,
        m.queries,
        "{ctx}: every offered query is served, degraded, shed, or lost"
    );
    assert!(
        m.served_lookups <= m.total_lookups,
        "{ctx}: served lookups cannot exceed offered"
    );
    assert!(
        (0.0..=1.0).contains(&m.availability()),
        "{ctx}: availability in [0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&m.mean_coverage),
        "{ctx}: coverage in [0,1]"
    );
    // Per node, offered = served + shed (the node-level split).
    for (s, pm) in m.per_node.iter().enumerate() {
        assert_eq!(
            pm.completion.len() as u64,
            pm.queries + pm.shed,
            "{ctx}: node {s} completion plane covers served + shed"
        );
    }
    // The answered queries are exactly the recorded latencies.
    assert_eq!(
        m.latency.count(),
        m.fully_served + m.degraded,
        "{ctx}: one latency sample per answered query"
    );
}

const FAULTS: [&str; 4] = ["none", "failstop:16000", "slow:16000:4", "link:16000:8"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation holds for every fault family × shed policy ×
    /// replication mix, and the whole faulty pipeline is a pure
    /// function of its seeds (two fresh clusters agree to the bit).
    #[test]
    fn prop_offered_queries_and_lookups_are_conserved(
        fault_idx in 0usize..FAULTS.len(),
        shed_idx in 0usize..3,
        replicas_idx in 0usize..2,
        fault_seed in 0u64..64,
    ) {
        let shed = [
            ShedPolicy::Deadline,
            ShedPolicy::QueueDepth { max_pending: 2 },
            ShedPolicy::QueueDepth { max_pending: 16 },
        ][shed_idx];
        let replicas = [0u32, 32][replicas_idx];
        let cfg = faulted_cfg(FAULTS[fault_idx], shed, replicas, fault_seed);
        let spec = spec_for(&small_model(), 48, 2_000_000.0);
        let m = run_materialized(&cfg, &spec);
        prop_assert_eq!(m.queries, 48);
        assert_conserved(&m, FAULTS[fault_idx]);
        let again = run_materialized(&cfg, &spec);
        prop_assert_eq!(m.checksum.to_bits(), again.checksum.to_bits());
        prop_assert_eq!(&m.latency, &again.latency);
        prop_assert_eq!(
            (m.fully_served, m.degraded, m.shed, m.lost, m.timeouts, m.hedges, m.failovers),
            (again.fully_served, again.degraded, again.shed, again.lost,
             again.timeouts, again.hedges, again.failovers)
        );
    }
}

#[test]
fn explicit_empty_schedule_is_byte_identical_to_the_default() {
    // FaultSpec::None through the generator must be indistinguishable
    // from the allocation-free `FaultSchedule::none` default — the
    // zero-fault overhead bar.
    let spec = spec_for(&small_model(), 64, 2_000_000.0);
    let mut cfg = faulted_cfg("none", ShedPolicy::None, 0, 7);
    cfg.partial_timeout_ns = None;
    let defaulted = ClusterConfig::new(3, ShardPolicy::RowHash, cfg.node.clone());
    let a = run_materialized(&cfg, &spec);
    let b = run_materialized(&defaulted, &spec);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.agg_bytes, b.agg_bytes);
    assert_eq!(a.checksum.to_bits(), b.checksum.to_bits());
    for (x, y) in a.query_checksums.iter().zip(&b.query_checksums) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(
        a.fully_served, a.queries,
        "fault-free runs serve everything"
    );
    assert_eq!(a.mean_coverage, 1.0);
    assert_eq!(a.availability(), 1.0);
}

#[test]
fn timing_only_faults_cannot_move_a_checksum_bit() {
    // Slow-downs and link degradation stretch completions but lose no
    // coverage (with the partial timeout off), so every per-query
    // checksum must be bit-identical to the fault-free run — the
    // degraded-merge exactness invariant.
    let spec = spec_for(&small_model(), 64, 4_000_000.0);
    let clean = run_materialized(
        &ClusterConfig::new(
            3,
            ShardPolicy::RowHash,
            SystemConfig::pifs_rec(small_model()),
        ),
        &spec,
    );
    for fault in ["slow:32000:8", "link:32000:8"] {
        let mut cfg = faulted_cfg(fault, ShedPolicy::None, 0, 11);
        cfg.partial_timeout_ns = None;
        let m = run_materialized(&cfg, &spec);
        assert_eq!(m.fully_served, m.queries, "{fault}: full coverage");
        assert_eq!(
            m.checksum.to_bits(),
            clean.checksum.to_bits(),
            "{fault}: total checksum"
        );
        for (q, (x, y)) in m
            .query_checksums
            .iter()
            .zip(&clean.query_checksums)
            .enumerate()
        {
            assert_eq!(x.to_bits(), y.to_bits(), "{fault}: query {q}");
        }
        assert!(
            m.latency.mean_ns() >= clean.latency.mean_ns(),
            "{fault}: stretching cannot speed serving up"
        );
    }
}

#[test]
fn failstop_loses_coverage_and_replication_buys_it_back() {
    let spec = spec_for(&small_model(), 96, 4_000_000.0);
    let bare = run_materialized(
        &faulted_cfg("failstop:64000", ShedPolicy::None, 0, 3),
        &spec,
    );
    let replicated = run_materialized(
        &faulted_cfg("failstop:64000", ShedPolicy::None, 64, 3),
        &spec,
    );
    assert_conserved(&bare, "bare");
    assert_conserved(&replicated, "replicated");
    assert!(
        bare.mean_coverage < 1.0,
        "deaths must cost coverage (got {})",
        bare.mean_coverage
    );
    assert!(
        replicated.mean_coverage > bare.mean_coverage,
        "replication must recover coverage ({} vs {})",
        replicated.mean_coverage,
        bare.mean_coverage
    );
    assert!(replicated.failovers > 0, "replicas must absorb failovers");
    assert_eq!(
        bare.failovers, 0,
        "nothing to fail over to without replicas"
    );
}

#[test]
fn streamed_cluster_matches_materialized_under_faults_and_shedding() {
    // The streaming differential bar, extended to the hazard paths:
    // same fault schedule, same shedder, byte-identical metrics.
    let spec = spec_for(&small_model(), 64, 8_000_000.0);
    for (fault, shed) in [
        ("failstop:32000", ShedPolicy::None),
        ("slow:16000:4", ShedPolicy::QueueDepth { max_pending: 2 }),
        ("link:16000:8", ShedPolicy::Deadline),
    ] {
        let cfg = faulted_cfg(fault, shed, 32, 5);
        let a = run_materialized(&cfg, &spec);
        let b = run_streamed(&cfg, &spec);
        let ctx = format!("{fault}/{shed:?}");
        assert_eq!(a.queries, b.queries, "{ctx}: queries");
        assert_eq!(a.latency, b.latency, "{ctx}: latency hist");
        assert_eq!(a.makespan_ns, b.makespan_ns, "{ctx}: makespan");
        assert_eq!(a.agg_bytes, b.agg_bytes, "{ctx}: agg bytes");
        assert_eq!(
            a.checksum.to_bits(),
            b.checksum.to_bits(),
            "{ctx}: checksum"
        );
        assert_eq!(
            (a.fully_served, a.degraded, a.shed, a.lost),
            (b.fully_served, b.degraded, b.shed, b.lost),
            "{ctx}: outcome split"
        );
        assert_eq!(
            (a.timeouts, a.hedges, a.failovers),
            (b.timeouts, b.hedges, b.failovers),
            "{ctx}: hazard counters"
        );
        assert_eq!(a.served_lookups, b.served_lookups, "{ctx}: served lookups");
        for (q, (x, y)) in a.query_checksums.iter().zip(&b.query_checksums).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: query {q}");
        }
        assert_conserved(&a, &ctx);
    }
}

#[test]
fn deadline_shedder_keeps_the_tail_under_overload() {
    // Push the cluster past its knee: the shedding run must answer
    // fewer queries but with a bounded queueing tail, and every shed
    // query must still be accounted for.
    let spec = spec_for(&small_model(), 96, 100_000_000.0);
    let open = run_materialized(&faulted_cfg("none", ShedPolicy::None, 0, 1), &spec);
    let mut shedding_cfg = faulted_cfg("none", ShedPolicy::Deadline, 0, 1);
    shedding_cfg.node.serving.sla_ns = 2_000;
    let shedding = run_materialized(&shedding_cfg, &spec);
    assert_conserved(&open, "open");
    assert_conserved(&shedding, "shedding");
    assert!(shedding.shed > 0, "overload must trip the deadline shedder");
    assert!(
        shedding.availability() < 1.0,
        "shed queries count against availability"
    );
    assert!(
        shedding.latency.percentile(0.99) <= open.latency.percentile(0.99),
        "shedding must not worsen the tail ({} vs {})",
        shedding.latency.percentile(0.99),
        open.latency.percentile(0.99)
    );
}
