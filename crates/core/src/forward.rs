//! Multi-layer instruction forwarding across fabric switches (§IV-C).
//!
//! In a scaled-out fabric, a row accumulation may need rows homed on
//! devices behind several switches. The local switch's scheduler splits
//! the cluster into per-switch *sub-clusters*, replacing
//! `SumCandidateCount` with each remote's `Sub-SumCandidateCount`.
//! Remote switches with a process core (CNV = 1) accumulate their rows
//! locally and return one partial vector; CNV = 0 switches stream raw
//! rows back. The local forward controller merges partials and releases
//! the final result to the host only when every sub-cluster reported.

use simkit::hash::FastMap;

use simkit::SimTime;

use crate::acr::ClusterId;

/// Outcome of a sub-result arriving at the forward controller.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardOutcome {
    /// More sub-clusters outstanding; keep waiting.
    Waiting,
    /// All sub-clusters arrived: the merged vector and the time the last
    /// one landed.
    Complete(Vec<f32>, SimTime),
}

#[derive(Debug, Clone)]
struct PendingCluster {
    expected_subs: u32,
    received_subs: u32,
    acc: Vec<f32>,
    last_arrival: SimTime,
}

/// The forward controller of a local switch.
///
/// # Examples
///
/// ```
/// use pifs_core::{ClusterId, ForwardController, ForwardOutcome};
/// use simkit::SimTime;
///
/// let mut fc = ForwardController::new();
/// fc.open(ClusterId(1), 2, 4);
/// let o = fc.on_sub_result(ClusterId(1), &[1.0, 0.0, 0.0, 0.0], SimTime::from_ns(10));
/// assert_eq!(o, ForwardOutcome::Waiting);
/// let o = fc.on_sub_result(ClusterId(1), &[0.5, 0.0, 0.0, 0.0], SimTime::from_ns(20));
/// assert!(matches!(o, ForwardOutcome::Complete(_, _)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ForwardController {
    pending: FastMap<ClusterId, PendingCluster>,
    merged: u64,
}

impl ForwardController {
    /// Creates an idle controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a cluster expecting `expected_subs` sub-results of `dim`
    /// elements each.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is already open or `expected_subs` is zero.
    pub fn open(&mut self, id: ClusterId, expected_subs: u32, dim: u32) {
        assert!(expected_subs > 0, "need at least one sub-cluster");
        let prev = self.pending.insert(
            id,
            PendingCluster {
                expected_subs,
                received_subs: 0,
                acc: vec![0.0; dim as usize],
                last_arrival: SimTime::ZERO,
            },
        );
        assert!(prev.is_none(), "cluster {id:?} already open");
    }

    /// Registers one sub-result (a partial accumulation from a remote
    /// switch, or the local switch's own share).
    ///
    /// # Panics
    ///
    /// Panics if the cluster is unknown, over-delivers, or the width
    /// mismatches.
    pub fn on_sub_result(
        &mut self,
        id: ClusterId,
        partial: &[f32],
        arrival: SimTime,
    ) -> ForwardOutcome {
        let p = self
            .pending
            .get_mut(&id)
            .unwrap_or_else(|| panic!("sub-result for unknown cluster {id:?}"));
        assert_eq!(p.acc.len(), partial.len(), "partial width mismatch");
        assert!(
            p.received_subs < p.expected_subs,
            "cluster {id:?} over-delivered"
        );
        for (a, &v) in p.acc.iter_mut().zip(partial) {
            *a += v;
        }
        p.received_subs += 1;
        p.last_arrival = p.last_arrival.max(arrival);
        if p.received_subs == p.expected_subs {
            let done = self.pending.remove(&id).expect("present");
            self.merged += 1;
            ForwardOutcome::Complete(done.acc, done.last_arrival)
        } else {
            ForwardOutcome::Waiting
        }
    }

    /// Discards a cluster whose transfer failed ("discard the result if
    /// errors occurred during data transfer").
    pub fn discard(&mut self, id: ClusterId) -> bool {
        self.pending.remove(&id).is_some()
    }

    /// Clusters awaiting sub-results.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Clusters fully merged so far.
    pub fn merged(&self) -> u64 {
        self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_partials_and_reports_last_arrival() {
        let mut fc = ForwardController::new();
        fc.open(ClusterId(1), 3, 2);
        fc.on_sub_result(ClusterId(1), &[1.0, 2.0], SimTime::from_ns(30));
        fc.on_sub_result(ClusterId(1), &[1.0, 2.0], SimTime::from_ns(10));
        match fc.on_sub_result(ClusterId(1), &[1.0, 2.0], SimTime::from_ns(20)) {
            ForwardOutcome::Complete(acc, at) => {
                assert_eq!(acc, vec![3.0, 6.0]);
                assert_eq!(at, SimTime::from_ns(30)); // slowest sub decides
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(fc.outstanding(), 0);
        assert_eq!(fc.merged(), 1);
    }

    #[test]
    fn clusters_are_independent() {
        let mut fc = ForwardController::new();
        fc.open(ClusterId(1), 1, 1);
        fc.open(ClusterId(2), 2, 1);
        assert!(matches!(
            fc.on_sub_result(ClusterId(1), &[5.0], SimTime::ZERO),
            ForwardOutcome::Complete(_, _)
        ));
        assert_eq!(
            fc.on_sub_result(ClusterId(2), &[1.0], SimTime::ZERO),
            ForwardOutcome::Waiting
        );
        assert_eq!(fc.outstanding(), 1);
    }

    #[test]
    fn discard_drops_a_failed_cluster() {
        let mut fc = ForwardController::new();
        fc.open(ClusterId(9), 2, 1);
        assert!(fc.discard(ClusterId(9)));
        assert!(!fc.discard(ClusterId(9)));
        assert_eq!(fc.outstanding(), 0);
    }

    #[test]
    fn completed_cluster_id_can_be_reopened() {
        let mut fc = ForwardController::new();
        fc.open(ClusterId(1), 1, 1);
        fc.on_sub_result(ClusterId(1), &[1.0], SimTime::ZERO);
        // Wire sumtags are reused across batches; re-opening is legal.
        fc.open(ClusterId(1), 1, 1);
        match fc.on_sub_result(ClusterId(1), &[2.0], SimTime::ZERO) {
            ForwardOutcome::Complete(acc, _) => assert_eq!(acc, vec![2.0]),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unknown cluster")]
    fn unknown_cluster_panics() {
        let mut fc = ForwardController::new();
        let _ = fc.on_sub_result(ClusterId(404), &[0.0], SimTime::ZERO);
    }
}
