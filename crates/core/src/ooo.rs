//! The out-of-order accumulation engine (§IV-A5).
//!
//! Rows for different accumulation clusters arrive interleaved from many
//! devices. An in-order accumulate unit must drain its current cluster's
//! pipeline before switching (a stall); the OoO engine instead parks the
//! current partial sum in a *swap register* during the first half of the
//! clock cycle and processes the newcomer in the second half. When the
//! swap registers are all occupied, the intermediate result spills to the
//! on-switch SRAM, costing two extra cycles.

use simkit::hash::FastSet;

use simkit::{SimDuration, SimTime};

use crate::acr::ClusterId;

// Engine state: `current` is the cluster loaded in the datapath, `parked`
// are incomplete partials held in swap registers, `completed` marks
// clusters whose registers were already released.

/// Timing model of the accumulate unit.
#[derive(Debug, Clone)]
pub struct AccumEngine {
    ooo: bool,
    /// Cycles (≈ ns at the 1 GHz synthesis clock of §VI-D) to fold one
    /// row vector.
    row_ns: u64,
    /// Swap registers available for parked partial sums.
    swap_regs: usize,
    busy_until: SimTime,
    current: Option<ClusterId>,
    parked: FastSet<ClusterId>,
    completed: FastSet<ClusterId>,
    /// In-order stalls (pipeline drains on cluster switches).
    pub stalls: u64,
    /// Spills to SRAM when swap registers ran out.
    pub sram_spills: u64,
    rows_processed: u64,
}

impl AccumEngine {
    /// Creates an engine. `dim` is the vector width in f32 elements: the
    /// process core's 64-lane FP32 adder (a 256 B/cycle datapath at the
    /// 1 GHz synthesis clock, sized so the PC keeps up with the
    /// aggregate downstream-port bandwidth it is meant to exploit) folds
    /// `ceil(dim/64)` chunks per row.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `swap_regs` is zero.
    pub fn new(ooo: bool, dim: u32, swap_regs: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(swap_regs > 0, "need at least one swap register");
        AccumEngine {
            ooo,
            row_ns: (dim as u64).div_ceil(64).max(1),
            swap_regs,
            busy_until: SimTime::ZERO,
            current: None,
            parked: FastSet::default(),
            completed: FastSet::default(),
            stalls: 0,
            sram_spills: 0,
            rows_processed: 0,
        }
    }

    /// Processes one row for `cluster` arriving at `arrival`; returns
    /// when its accumulation completes in the unit.
    pub fn process_row(&mut self, arrival: SimTime, cluster: ClusterId) -> SimTime {
        let mut start = arrival.max(self.busy_until);
        if self.current != Some(cluster) {
            if self.ooo {
                // Half-cycle swap; only spilling to SRAM costs extra.
                // A completed current cluster released its register.
                if let Some(cur) = self.current {
                    if !self.completed.remove(&cur) {
                        self.parked.insert(cur);
                    }
                }
                self.parked.remove(&cluster);
                if self.parked.len() > self.swap_regs {
                    self.sram_spills += 1;
                    start += SimDuration::from_ns(2); // two SRAM cycles
                }
            } else if self.current.is_some() {
                // In-order: drain the pipeline before switching clusters.
                self.stalls += 1;
                start += SimDuration::from_ns(self.row_ns);
            }
            self.current = Some(cluster);
        }
        self.busy_until = start + SimDuration::from_ns(self.row_ns);
        self.rows_processed += 1;
        self.busy_until
    }

    /// Marks `cluster` complete, freeing its swap register. The pipeline
    /// still holds the cluster's state until the next row displaces it,
    /// so an in-order engine pays a drain when the *next* cluster
    /// arrives — matching the hardware, where completion does not flush
    /// the datapath.
    pub fn complete_cluster(&mut self, cluster: ClusterId) {
        if !self.parked.remove(&cluster) && self.current == Some(cluster) {
            self.completed.insert(cluster);
        }
    }

    /// Rows folded so far.
    pub fn rows_processed(&self) -> u64 {
        self.rows_processed
    }

    /// Whether the engine runs out of order.
    pub fn is_ooo(&self) -> bool {
        self.ooo
    }

    /// Time the unit frees up.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn same_cluster_streams_without_stalls() {
        let mut e = AccumEngine::new(false, 256, 4);
        let a = e.process_row(t(0), ClusterId(1));
        let b = e.process_row(t(0), ClusterId(1));
        assert_eq!(b.since(a).as_ns(), 4); // 256 elements / 64 lanes
        assert_eq!(e.stalls, 0);
    }

    #[test]
    fn in_order_pays_a_drain_on_cluster_switch() {
        let mut e = AccumEngine::new(false, 256, 4);
        e.process_row(t(0), ClusterId(1));
        let before = e.busy_until();
        let done = e.process_row(t(0), ClusterId(2));
        // drain (4 ns) + fold (4 ns).
        assert_eq!(done.since(before).as_ns(), 8);
        assert_eq!(e.stalls, 1);
    }

    #[test]
    fn ooo_switches_for_free_with_swap_registers() {
        let mut e = AccumEngine::new(true, 256, 4);
        e.process_row(t(0), ClusterId(1));
        let before = e.busy_until();
        let done = e.process_row(t(0), ClusterId(2));
        assert_eq!(done.since(before).as_ns(), 4); // no drain
        assert_eq!(e.stalls, 0);
        assert_eq!(e.sram_spills, 0);
    }

    #[test]
    fn exhausted_swap_registers_spill_to_sram() {
        let mut e = AccumEngine::new(true, 16, 2);
        // Touch 4 clusters round-robin: parked set outgrows 2 registers.
        for round in 0..3u64 {
            for c in 0..4u64 {
                e.process_row(t(round * 100), ClusterId(c));
            }
        }
        assert!(e.sram_spills > 0);
    }

    #[test]
    fn completing_a_cluster_frees_its_register() {
        let mut e = AccumEngine::new(true, 16, 1);
        e.process_row(t(0), ClusterId(1));
        e.complete_cluster(ClusterId(1));
        e.process_row(t(0), ClusterId(2));
        e.process_row(t(0), ClusterId(3));
        // Cluster 1 was completed, so only cluster 2 occupies the single
        // register when 3 arrives — exactly at capacity, no spill.
        assert_eq!(e.sram_spills, 0);
    }

    #[test]
    fn ooo_beats_in_order_on_interleaved_arrivals() {
        let interleaved: Vec<ClusterId> = (0..64).map(|i| ClusterId(i % 8)).collect();
        let run = |ooo: bool| {
            let mut e = AccumEngine::new(ooo, 64, 8);
            let mut last = SimTime::ZERO;
            for &c in &interleaved {
                last = e.process_row(SimTime::ZERO, c);
            }
            last
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn idle_arrival_starts_immediately() {
        let mut e = AccumEngine::new(true, 16, 4);
        let done = e.process_row(t(1000), ClusterId(1));
        assert_eq!(done.as_ns(), 1001);
    }
}
