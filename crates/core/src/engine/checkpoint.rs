//! Checkpointed warm-starts for streaming open-loop runs.
//!
//! A [`SimCheckpoint`] is a deep copy of the two stateful halves of a
//! streaming serving run at a query boundary: the [`SlsSystem`] (plant
//! timing state, page placement, hotness, metrics, scratch, and the
//! in-progress [`open_loop`](SlsSystem::open_loop_begin) session — RNG
//! cursors live inside the stream, batcher queue and histograms inside
//! the session) and the [`QueryStream`] cursor feeding it. Because
//! every piece of simulation state is plain `Clone` data — there is no
//! hidden global state, thread-local, or wall-clock input anywhere in
//! the engine — capture is a pure deep copy and resume is provably
//! byte-identical to never having stopped: the differential suite
//! (`tests/streaming_equivalence.rs`) checkpoints at *every* dispatch
//! epoch and compares full metrics against the straight-through run.
//!
//! The intended use is sweep warm-starts: points that share a workload
//! prefix (for example a duration axis over one diurnal trace) run the
//! prefix once, checkpoint, and each longer point resumes from the
//! deepest captured prefix instead of replaying from zero.

#![deny(missing_docs)]

use tracegen::QueryStream;

use crate::system::SlsSystem;

/// A resumable snapshot of a streaming open-loop run: the system (with
/// its active session) plus the query-stream cursor, captured together
/// at a query boundary.
#[derive(Clone)]
pub struct SimCheckpoint {
    system: SlsSystem,
    stream: QueryStream,
}

impl SimCheckpoint {
    /// Captures the pair as-is. Typically called between
    /// [`SlsSystem::open_loop_push`] calls — i.e. after [`advance`]ing
    /// some number of queries — but any consistent (system, stream)
    /// moment works, including before `open_loop_begin`.
    pub fn capture(system: &SlsSystem, stream: &QueryStream) -> SimCheckpoint {
        SimCheckpoint {
            system: system.clone(),
            stream: stream.clone(),
        }
    }

    /// Queries the captured stream has emitted — the checkpoint's
    /// position on the workload's query axis.
    pub fn position(&self) -> u64 {
        self.stream.position()
    }

    /// A fresh resumable copy: the checkpoint itself stays intact, so
    /// several sweep points can warm-start from the same prefix.
    pub fn resume(&self) -> (SlsSystem, QueryStream) {
        (self.system.clone(), self.stream.clone())
    }

    /// Consumes the checkpoint into its parts (the last resume, without
    /// the extra copy).
    pub fn into_parts(self) -> (SlsSystem, QueryStream) {
        (self.system, self.stream)
    }
}

/// Pushes up to `n` queries from `stream` into `system`'s active
/// open-loop session; returns how many were pushed (fewer only when
/// the stream ran dry). The session keeps running — follow with more
/// [`advance`] calls, a [`SimCheckpoint::capture`], or
/// [`SlsSystem::open_loop_finish`].
///
/// # Panics
///
/// Panics if no session is active.
pub fn advance(system: &mut SlsSystem, stream: &mut QueryStream, n: u64) -> u64 {
    let mut pushed = 0;
    while pushed < n {
        let Some((_, at)) = stream.next_query() else {
            break;
        };
        system.open_loop_push(at, &*stream);
        pushed += 1;
    }
    pushed
}
