//! Deterministic adaptive serving controllers.
//!
//! PR 5's batcher is static fill-or-max-wait and PR 9's shedder only
//! ever *drops* load; this module closes ROADMAP item 3 with policies
//! that *retune* the serving knobs at runtime. A
//! [`ServingController`] rides inside every open-loop session and, at
//! batch boundaries, may resize the batcher's `batch_size`/`max_wait_ns`
//! (load-aware policy) and stretch or shrink the page-management epoch
//! period (hotness-drift policy). Which levers are live is the
//! [`ControllerPolicy`] — the `serving.controller` knob.
//!
//! # Determinism (rule 7)
//!
//! Controllers read **only sim-time-visible state**: the dispatch
//! backlog (batch close → service start delay), the closed batch's
//! fill, a tick-local latency histogram of retired queries, and the
//! [`GlobalHotness`] top-k sets — every one a deterministic function of
//! the workload and the configuration, never of wall-clock time, thread
//! interleaving, or host load. Decisions are pure integer threshold
//! rules on that state, so a run's knob trajectory — and therefore its
//! entire output — is byte-identical at any runner thread count. The
//! fixed baseline ([`ControllerPolicy::Fixed`]) takes no decisions at
//! all and is byte-identical to the pre-controller build.
//!
//! Two structural guarantees keep the rest of the engine honest under
//! adaptation:
//!
//! * `max_wait_ns` only ever moves **at or below** its configured base,
//!   so the windowed-latency retirement bound (computed from the base
//!   `max_wait_ns` at session start) stays conservative — see
//!   [`LatencyWindows`](super::serving::LatencyWindows).
//! * `batch_size` is bounded by [`BATCH_GROWTH_CAP`] × base, so the
//!   session's pending-bag store stays bounded.

#![deny(missing_docs)]

use pagemgmt::{GlobalHotness, PageId};
use simkit::{LatencyHist, SimDuration};

use super::serving::ServingConfig;

/// Batches per controller tick: load decisions fire every this many
/// dispatched batches, on the tick's aggregate signals.
pub const TICK_BATCHES: u32 = 4;

/// Ceiling on adaptive batch growth, as a multiple of the configured
/// base `batch_size` (bounds the pending-bag store).
pub const BATCH_GROWTH_CAP: u32 = 4;

/// Floor on adaptive max-wait shrink, as a divisor of the configured
/// base `max_wait_ns`.
pub const WAIT_SHRINK_FLOOR: u64 = 8;

/// Ceiling on the adaptive page-management epoch period, in batches.
pub const EPOCH_PERIOD_CAP: u32 = 16;

/// Pages per host compared between epochs for the churn signal.
pub const CHURN_TOP_K: usize = 32;

/// Which knobs the serving controller may move at runtime
/// (`serving.controller` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControllerPolicy {
    /// The static baseline: knobs never move, a page-management epoch
    /// runs at every batch boundary — byte-identical to a build without
    /// the controller.
    #[default]
    Fixed,
    /// Load-aware batch sizing: grows `batch_size` (toward
    /// [`BATCH_GROWTH_CAP`] × base) while the engine is backlogged and
    /// batches close full, shrinks it back when the backlog clears, and
    /// halves `max_wait_ns` (toward base / [`WAIT_SHRINK_FLOOR`]) while
    /// the tick p99 violates the SLA.
    LoadAware,
    /// Hotness-drift-driven epoch adaptation: lengthens the
    /// page-management epoch period (toward [`EPOCH_PERIOD_CAP`]
    /// batches) while the [`GlobalHotness`] top-k sets are stable, and
    /// snaps it back toward every-batch when they churn.
    EpochAdaptive,
    /// Both levers at once.
    Adaptive,
}

impl ControllerPolicy {
    /// Parses the knob spelling `fixed | load | epoch | adaptive`.
    /// Errors say why the spec was rejected.
    pub fn parse(spec: &str) -> Result<ControllerPolicy, String> {
        match spec.to_ascii_lowercase().as_str() {
            "fixed" => Ok(ControllerPolicy::Fixed),
            "load" => Ok(ControllerPolicy::LoadAware),
            "epoch" => Ok(ControllerPolicy::EpochAdaptive),
            "adaptive" => Ok(ControllerPolicy::Adaptive),
            other => Err(format!(
                "unknown serving controller {other:?} (fixed|load|epoch|adaptive)"
            )),
        }
    }

    /// A short stable label for curve keys.
    pub fn label(&self) -> &'static str {
        match self {
            ControllerPolicy::Fixed => "fixed",
            ControllerPolicy::LoadAware => "load",
            ControllerPolicy::EpochAdaptive => "epoch",
            ControllerPolicy::Adaptive => "adaptive",
        }
    }
}

/// The per-session controller state: effective knobs plus the tick- and
/// epoch-local signals they are steered by. `Clone` travels with the
/// session — checkpoints resume the knob trajectory byte-identically.
#[derive(Debug, Clone)]
pub struct ServingController {
    policy: ControllerPolicy,
    /// The configured knobs the adaptive ranges anchor to.
    base_batch: u32,
    base_wait_ns: u64,
    sla_ns: u64,
    /// Effective knobs (== base under [`ControllerPolicy::Fixed`]).
    batch_size: u32,
    max_wait_ns: u64,
    /// Latencies of queries retired since the last load tick.
    tick_hist: LatencyHist,
    batches_in_tick: u32,
    /// Largest batch-close → service-start delay seen this tick: the
    /// open-loop queue-depth signal (work formed but not yet served).
    backlog_max_ns: u64,
    /// Largest batch fill seen this tick.
    fill_max: u32,
    /// Page-management epoch cadence, in batches (1 = every batch).
    epoch_period: u32,
    batches_since_epoch: u32,
    /// The union of per-host hottest-[`CHURN_TOP_K`] sets at the last
    /// epoch, sorted — the churn baseline.
    prev_hot: Vec<PageId>,
    /// Epochs actually run (cadence introspection for harnesses).
    epochs_run: u64,
}

impl ServingController {
    /// A controller for one open-loop session under `cfg`.
    pub fn new(cfg: &ServingConfig) -> ServingController {
        ServingController {
            policy: cfg.controller,
            base_batch: cfg.batch_size,
            base_wait_ns: cfg.max_wait_ns,
            sla_ns: cfg.sla_ns,
            batch_size: cfg.batch_size,
            max_wait_ns: cfg.max_wait_ns,
            tick_hist: LatencyHist::default(),
            batches_in_tick: 0,
            backlog_max_ns: 0,
            fill_max: 0,
            epoch_period: 1,
            batches_since_epoch: 0,
            prev_hot: Vec::new(),
            epochs_run: 0,
        }
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> ControllerPolicy {
        self.policy
    }

    /// The effective batch size.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// The effective max-wait, ns.
    pub fn max_wait_ns(&self) -> u64 {
        self.max_wait_ns
    }

    /// The current page-management epoch period, in batches.
    pub fn epoch_period(&self) -> u32 {
        self.epoch_period
    }

    /// Page-management epochs this controller has admitted.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Whether the load lever (batch sizing) is live.
    pub fn load_active(&self) -> bool {
        matches!(
            self.policy,
            ControllerPolicy::LoadAware | ControllerPolicy::Adaptive
        )
    }

    /// Whether the epoch lever (page-management cadence) is live.
    pub fn epoch_active(&self) -> bool {
        matches!(
            self.policy,
            ControllerPolicy::EpochAdaptive | ControllerPolicy::Adaptive
        )
    }

    /// Feeds one retired query's latency into the tick histogram.
    /// No-op unless the load lever is live.
    pub fn record_latency(&mut self, latency: SimDuration) {
        if self.load_active() {
            self.tick_hist.record(latency);
        }
    }

    /// Observes one dispatched batch (its fill and its close→start
    /// backlog) and, every [`TICK_BATCHES`] batches, takes the load
    /// decision. Returns the new `(batch_size, max_wait_ns)` when the
    /// tick moved a knob, `None` otherwise (including always under
    /// policies without the load lever).
    pub fn on_batch(&mut self, fill: u32, backlog_ns: u64) -> Option<(u32, u64)> {
        if !self.load_active() {
            return None;
        }
        self.batches_in_tick += 1;
        self.backlog_max_ns = self.backlog_max_ns.max(backlog_ns);
        self.fill_max = self.fill_max.max(fill);
        if self.batches_in_tick < TICK_BATCHES {
            return None;
        }
        let p99 = self.tick_hist.percentile(0.99);
        let sampled = self.tick_hist.count() > 0;
        // Backlogged by more than one base max-wait: the hosts are
        // behind the arrival stream, not merely batching.
        let overloaded = self.backlog_max_ns > self.base_wait_ns;
        let filled = self.fill_max >= self.batch_size;
        let before = (self.batch_size, self.max_wait_ns);
        if overloaded && filled {
            // Bigger batches amortize the per-batch epoch and dispatch
            // overheads exactly when queueing (not batching delay)
            // dominates latency.
            self.batch_size = self
                .batch_size
                .saturating_mul(2)
                .min(self.base_batch.saturating_mul(BATCH_GROWTH_CAP));
        } else if !overloaded && self.batch_size > self.base_batch {
            self.batch_size = (self.batch_size / 2).max(self.base_batch);
        }
        if sampled && p99 > self.sla_ns {
            // The tail is blowing the SLA: stop holding part-full
            // batches open.
            self.max_wait_ns = (self.max_wait_ns / 2).max(self.base_wait_ns / WAIT_SHRINK_FLOOR);
        } else if sampled
            && p99.saturating_mul(2) < self.sla_ns
            && self.max_wait_ns < self.base_wait_ns
        {
            self.max_wait_ns = self.max_wait_ns.saturating_mul(2).min(self.base_wait_ns);
        }
        self.tick_hist = LatencyHist::default();
        self.batches_in_tick = 0;
        self.backlog_max_ns = 0;
        self.fill_max = 0;
        let after = (self.batch_size, self.max_wait_ns);
        (after != before).then_some(after)
    }

    /// Whether a page-management epoch is due at this batch boundary.
    /// Policies without the epoch lever run one at every boundary (the
    /// historical cadence). With the lever live, an epoch runs every
    /// [`Self::epoch_period`] batches, and each run re-aims the period
    /// from [`GlobalHotness`] churn: a mostly-fresh top-k set halves it
    /// (drift demands fast migration), a mostly-stable one doubles it
    /// (idle epochs are pure overhead).
    pub fn epoch_due(&mut self, hotness: &GlobalHotness) -> bool {
        if !self.epoch_active() {
            self.epochs_run += 1;
            return true;
        }
        self.batches_since_epoch += 1;
        if self.batches_since_epoch < self.epoch_period {
            return false;
        }
        self.batches_since_epoch = 0;
        self.epochs_run += 1;
        let cur = hottest_union(hotness, CHURN_TOP_K);
        let fresh = cur.len() - sorted_intersection(&self.prev_hot, &cur);
        if fresh * 2 > cur.len() {
            self.epoch_period = (self.epoch_period / 2).max(1);
        } else if fresh * 8 < cur.len().max(1) {
            self.epoch_period = (self.epoch_period * 2).min(EPOCH_PERIOD_CAP);
        }
        self.prev_hot = cur;
        true
    }
}

/// The union of every host's hottest-`k` pages, sorted ascending
/// (deterministic: [`pagemgmt::HotnessTracker::hottest`] total-orders
/// ties by page id).
fn hottest_union(hotness: &GlobalHotness, k: usize) -> Vec<PageId> {
    let mut all: Vec<PageId> = (0..hotness.n_hosts())
        .flat_map(|h| hotness.host(h).hottest(k))
        .collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// `|a ∩ b|` for sorted, deduplicated slices (two-pointer walk).
fn sorted_intersection(a: &[PageId], b: &[PageId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: ControllerPolicy) -> ServingConfig {
        ServingConfig {
            batch_size: 32,
            max_wait_ns: 50_000,
            sla_ns: 25_000,
            controller: policy,
            ..ServingConfig::default()
        }
    }

    #[test]
    fn policy_parse_covers_spellings_and_reports_why_it_rejects() {
        assert_eq!(
            ControllerPolicy::parse("fixed"),
            Ok(ControllerPolicy::Fixed)
        );
        assert_eq!(
            ControllerPolicy::parse("Load"),
            Ok(ControllerPolicy::LoadAware)
        );
        assert_eq!(
            ControllerPolicy::parse("epoch"),
            Ok(ControllerPolicy::EpochAdaptive)
        );
        assert_eq!(
            ControllerPolicy::parse("adaptive"),
            Ok(ControllerPolicy::Adaptive)
        );
        assert!(ControllerPolicy::parse("pid")
            .unwrap_err()
            .contains("unknown serving controller"));
        for p in [
            ControllerPolicy::Fixed,
            ControllerPolicy::LoadAware,
            ControllerPolicy::EpochAdaptive,
            ControllerPolicy::Adaptive,
        ] {
            assert_eq!(ControllerPolicy::parse(p.label()), Ok(p));
        }
    }

    #[test]
    fn fixed_never_moves_a_knob_and_always_admits_epochs() {
        let mut c = ServingController::new(&cfg(ControllerPolicy::Fixed));
        let hotness = GlobalHotness::new(1);
        for i in 0..64 {
            c.record_latency(SimDuration::from_ns(1_000_000));
            assert_eq!(c.on_batch(32, 10_000_000), None);
            assert!(c.epoch_due(&hotness), "epoch at every boundary");
            assert_eq!(c.epochs_run(), i + 1);
        }
        assert_eq!(c.batch_size(), 32);
        assert_eq!(c.max_wait_ns(), 50_000);
        assert_eq!(c.epoch_period(), 1);
    }

    #[test]
    fn load_policy_grows_batches_under_backlog_and_recovers() {
        let mut c = ServingController::new(&cfg(ControllerPolicy::LoadAware));
        // Four full batches with a large backlog and an SLA-violating
        // tail: batch_size doubles, max_wait halves.
        for _ in 0..TICK_BATCHES {
            c.record_latency(SimDuration::from_ns(400_000));
            let _ = c.on_batch(c.batch_size(), 500_000);
        }
        assert_eq!(c.batch_size(), 64);
        assert_eq!(c.max_wait_ns(), 25_000);
        // Sustained overload caps at BATCH_GROWTH_CAP × base and the
        // wait floor.
        for _ in 0..8 * TICK_BATCHES {
            c.record_latency(SimDuration::from_ns(400_000));
            let _ = c.on_batch(c.batch_size(), 500_000);
        }
        assert_eq!(c.batch_size(), 32 * BATCH_GROWTH_CAP);
        assert_eq!(c.max_wait_ns(), 50_000 / WAIT_SHRINK_FLOOR);
        // Load clears (no backlog, quick tail): both knobs walk back to
        // base and no further.
        for _ in 0..8 * TICK_BATCHES {
            c.record_latency(SimDuration::from_ns(1_000));
            let _ = c.on_batch(4, 0);
        }
        assert_eq!(c.batch_size(), 32);
        assert_eq!(c.max_wait_ns(), 50_000);
    }

    #[test]
    fn load_ticks_fire_every_tick_batches() {
        let mut c = ServingController::new(&cfg(ControllerPolicy::LoadAware));
        for i in 1..TICK_BATCHES {
            c.record_latency(SimDuration::from_ns(400_000));
            assert_eq!(c.on_batch(32, 500_000), None, "batch {i}: mid-tick");
        }
        c.record_latency(SimDuration::from_ns(400_000));
        assert_eq!(c.on_batch(32, 500_000), Some((64, 25_000)));
    }

    #[test]
    fn epoch_policy_lengthens_on_stability_and_snaps_back_on_churn() {
        let mut c = ServingController::new(&cfg(ControllerPolicy::EpochAdaptive));
        let mut hotness = GlobalHotness::new(1);
        for p in 0..CHURN_TOP_K as u64 {
            for _ in 0..4 {
                hotness.host_mut(0).record(PageId(p));
            }
        }
        // A stable hot set doubles the period every epoch, up to the cap.
        let mut admitted = 0;
        for _ in 0..200 {
            if c.epoch_due(&hotness) {
                admitted += 1;
            }
        }
        assert_eq!(c.epoch_period(), EPOCH_PERIOD_CAP);
        assert!(admitted < 40, "long periods admit few epochs: {admitted}");
        // The hot set churns wholesale: the period collapses back.
        for p in 0..CHURN_TOP_K as u64 {
            for _ in 0..64 {
                hotness.host_mut(0).record(PageId(1_000 + p));
            }
        }
        let before = c.epochs_run();
        while c.epochs_run() == before {
            let _ = c.epoch_due(&hotness);
        }
        assert!(
            c.epoch_period() < EPOCH_PERIOD_CAP,
            "churn must shorten the period"
        );
    }

    #[test]
    fn controller_decisions_are_reproducible() {
        let run = || {
            let mut c = ServingController::new(&cfg(ControllerPolicy::Adaptive));
            let hotness = GlobalHotness::new(2);
            let mut trail = Vec::new();
            for i in 0..64u64 {
                c.record_latency(SimDuration::from_ns(i * 7_919));
                let knobs = c.on_batch((i % 33) as u32, i * 13_337);
                let due = c.epoch_due(&hotness);
                trail.push((
                    knobs,
                    due,
                    c.batch_size(),
                    c.max_wait_ns(),
                    c.epoch_period(),
                ));
            }
            trail
        };
        assert_eq!(run(), run());
    }
}
